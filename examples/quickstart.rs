//! Quickstart: diagnose data stalls for one training job, then fix them.
//!
//! This walks through the paper's core loop in a few dozen lines:
//!
//! 1. describe a training job (model, dataset, server, loader),
//! 2. profile it with DS-Analyzer to find out whether it is GPU-, CPU- or
//!    I/O-bound and how much of the epoch is data-stall time,
//! 3. ask the what-if model how much cache would remove the fetch stalls,
//! 4. switch the loader to CoorDL and measure the speedup.
//!
//! Run with `cargo run --release --example quickstart`.

use datastalls::analyzer::{DifferentialReport, ProfiledRates, WhatIfAnalysis};
use datastalls::prelude::*;

fn main() {
    // The paper's setting from Figure 1: ResNet18 on 8 V100s with 24 CPU
    // cores and 35 % of the dataset cached.  We scale the dataset down so the
    // example runs in a second; every reported quantity is a ratio, so the
    // shape of the result is unchanged.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let model = ModelKind::ResNet18;
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let baseline = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));

    println!("== Job ==");
    println!(
        "{} on {} ({} GPUs, {} cores, cache {:.0}% of {:.0} GiB)",
        model.name(),
        server.name,
        server.num_gpus,
        server.cpu_cores,
        100.0 * server.dram_cache_bytes as f64 / dataset.total_bytes() as f64,
        dataset.total_gib(),
    );

    // --- Step 1: differential profiling (DS-Analyzer §3.2) ---------------
    let report = DifferentialReport::run(&server, &baseline, 3);
    println!("\n== DS-Analyzer differential report ==");
    println!(
        "epoch time, ingestion-only : {:8.2} s",
        report.ingestion_epoch_secs
    );
    println!(
        "epoch time, fully cached   : {:8.2} s",
        report.cached_epoch_secs
    );
    println!(
        "epoch time, 35% cache      : {:8.2} s",
        report.actual_epoch_secs
    );
    println!(
        "prep stalls: {:.0}% of epoch, fetch stalls: {:.0}% of epoch",
        report.prep_stall_fraction() * 100.0,
        report.fetch_stall_fraction() * 100.0
    );

    // --- Step 2: what-if analysis (§3.4) ----------------------------------
    let rates = ProfiledRates::measure(&server, &baseline);
    let whatif = WhatIfAnalysis::new(rates);
    println!("\n== What-if analysis ==");
    println!(
        "component rates (samples/s): G = {:.0}, P = {:.0}, S = {:.0}",
        rates.gpu_rate, rates.prep_rate, rates.storage_rate
    );
    println!(
        "bottleneck at 35% cache     : {:?}",
        whatif.bottleneck(0.35)
    );
    println!(
        "cache fraction to mask fetch stalls: {:.0}%",
        whatif.recommended_cache_fraction() * 100.0
    );
    println!(
        "CPU cores per GPU to mask prep stalls: {:.1}",
        whatif.recommended_cores_per_gpu(server.cpu_cores, server.num_gpus)
    );

    // --- Step 3: switch the loader to CoorDL and measure ------------------
    // The observer streams per-epoch telemetry while the simulation runs.
    let dali_run = Experiment::on(&server)
        .job(baseline.clone())
        .scenario(Scenario::SingleServer)
        .epochs(3)
        .observer(|update| {
            println!(
                "  [dali epoch {}] {:6.2} s, {:5.0} samples/s",
                update.epoch,
                update.units[0].epoch_seconds(),
                update.units[0].samples_per_sec()
            );
        })
        .run();
    let coordl_job = baseline.with_loader(LoaderConfig::coordl_best(model));
    let coordl_run = Experiment::on(&server).job(coordl_job).epochs(3).run();

    let dali = dali_run.steady_state();
    let coordl = coordl_run.steady_state();
    println!("\n== DALI-shuffle vs CoorDL (steady-state epoch) ==");
    println!(
        "DALI  : {:8.2} s/epoch, {:6.0} samples/s, {:5.1}% fetch stall, miss ratio {:.2}",
        dali.epoch_seconds(),
        dali.samples_per_sec(),
        dali.fetch_stall_fraction() * 100.0,
        dali.miss_ratio()
    );
    println!(
        "CoorDL: {:8.2} s/epoch, {:6.0} samples/s, {:5.1}% fetch stall, miss ratio {:.2}",
        coordl.epoch_seconds(),
        coordl.samples_per_sec(),
        coordl.fetch_stall_fraction() * 100.0,
        coordl.miss_ratio()
    );
    println!("speedup: {:.2}x", coordl_run.speedup_over(&dali_run));
}
