//! DS-Analyzer what-if analysis: sizing hardware before buying it (§3.4, App. C).
//!
//! DS-Analyzer profiles a job once — the GPU ingestion rate `G`, the prep
//! rate `P`, the storage rate `S` and the DRAM rate `C` — and then answers
//! questions like:
//!
//! * how much DRAM cache does this model need before more DRAM stops helping?
//! * how many CPU cores per GPU are needed to mask prep stalls?
//! * would a 2× faster GPU actually train faster, or just stall harder?
//! * would replacing the SATA SSD with NVMe move the bottleneck?
//!
//! The example prints the predicted speed-vs-cache curve (Figure 16) for
//! AlexNet and then cross-checks a few points against the full simulator,
//! reproducing the paper's "predictions within 4 % of empirical" claim
//! (Table 5).
//!
//! Run with `cargo run --release --example whatif_analysis`.

use datastalls::analyzer::{Bottleneck, ProfiledRates, WhatIfAnalysis};
use datastalls::prelude::*;

fn main() {
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let model = ModelKind::AlexNet;
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));

    let rates = ProfiledRates::measure(&server, &job);
    let whatif = WhatIfAnalysis::new(rates);

    println!(
        "== Profiled rates for {} on {} ==",
        model.name(),
        server.name
    );
    println!("GPU ingestion rate G : {:9.0} samples/s", rates.gpu_rate);
    println!("prep rate          P : {:9.0} samples/s", rates.prep_rate);
    println!(
        "storage rate       S : {:9.0} samples/s",
        rates.storage_rate
    );
    println!("DRAM rate          C : {:9.0} samples/s", rates.cache_rate);

    println!("\n== Predicted training speed vs cache size (Figure 16) ==");
    println!(
        "{:>8}  {:>12}  {:>10}",
        "cache %", "samples/s", "bottleneck"
    );
    for (x, speed) in whatif.speed_curve(11) {
        println!(
            "{:>7.0}%  {:>12.0}  {:>10}",
            x * 100.0,
            speed,
            match whatif.bottleneck(x) {
                Bottleneck::Io => "I/O",
                Bottleneck::Cpu => "CPU",
                Bottleneck::Gpu => "GPU",
            }
        );
    }
    println!(
        "recommended cache: {:.0}% of the dataset (more DRAM buys nothing beyond this)",
        whatif.recommended_cache_fraction() * 100.0
    );
    println!(
        "cores per GPU to mask prep stalls: {:.1}",
        whatif.recommended_cores_per_gpu(server.cpu_cores, server.num_gpus)
    );

    // Hardware what-ifs.
    println!("\n== Hardware what-ifs at 35% cache ==");
    let faster_gpu = whatif.with_faster_gpu(2.0);
    let nvme = whatif.with_faster_storage(6.0);
    println!(
        "today          : {:8.0} samples/s ({:?}-bound)",
        whatif.predicted_speed(0.35),
        whatif.bottleneck(0.35)
    );
    println!(
        "2x faster GPU  : {:8.0} samples/s ({:?}-bound) — faster compute alone does not help",
        faster_gpu.predicted_speed(0.35),
        faster_gpu.bottleneck(0.35)
    );
    println!(
        "NVMe storage   : {:8.0} samples/s ({:?}-bound)",
        nvme.predicted_speed(0.35),
        nvme.bottleneck(0.35)
    );

    // Cross-check predictions against the simulator (Table 5's methodology).
    // The what-if model assumes an efficient cache — "a cache of size x items
    // has at least x hits per epoch" (Appendix C) — so the empirical side of
    // the comparison runs with CoorDL's MinIO cache, like the paper's tool.
    // A larger (less scaled-down) dataset is used here so the pipeline's
    // ramp-up/drain overhead does not distort the comparison; all cache sizes
    // simulate as one parallel sweep.
    println!("\n== Prediction vs simulation (Table 5 methodology) ==");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>7}",
        "cache %", "predicted", "simulated", "error"
    );
    let big = DatasetSpec::imagenet_1k().scaled(16);
    let srv = ServerConfig::config_ssd_v100().with_cache_fraction(big.total_bytes(), 0.35);
    let minio_job = JobSpec::new(model, big, 8, LoaderConfig::coordl_best(model));
    let curve = whatif.validate_speed_curve(
        &srv,
        &minio_job,
        &[0.25, 0.35, 0.50],
        3,
        &SweepRunner::new(),
    );
    for point in curve {
        println!(
            "{:>7.0}%  {:>12.0}  {:>12.0}  {:>6.1}%",
            point.cache_fraction * 100.0,
            point.predicted,
            point.empirical,
            point.relative_error() * 100.0
        );
    }
}
