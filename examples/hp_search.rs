//! Hyper-parameter search with and without coordinated prep (§4.3, §5.3).
//!
//! The paper's motivating observation: eight concurrent HP-search jobs on one
//! server each fetch and pre-process the *same* dataset independently, so the
//! server reads up to 7× the dataset per epoch off storage and every job gets
//! only 3 of the 24 CPU cores for pre-processing.  CoorDL's coordinated prep
//! fetches and preps the dataset exactly once per epoch and shares the
//! prepared minibatches through a staging area.
//!
//! This example runs the comparison twice — once at the simulator level (the
//! paper's throughput numbers) and once with the *functional* multi-threaded
//! coordinated loader, verifying the exactly-once invariant on real bytes.
//!
//! Run with `cargo run --release --example hp_search`.

use datastalls::coordl::{Mode, Session, SessionConfig};
use datastalls::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn simulated_comparison() {
    let dataset = DatasetSpec::openimages_extended().scaled(64);
    let model = ModelKind::ResNet18;
    // Config-SSD-V100 can cache 65 % of OpenImages-Extended (§5.1).
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let num_jobs = 8;

    let jobs = |loader: LoaderConfig| -> Vec<JobSpec> {
        (0..num_jobs)
            .map(|j| JobSpec::new(model, dataset.clone(), 1, loader.clone()).with_seed(j as u64))
            .collect()
    };

    let run = |loader: LoaderConfig| {
        Experiment::on(&server)
            .jobs(jobs(loader))
            .scenario(Scenario::HpSearch { jobs: num_jobs })
            .epochs(3)
            .run()
    };
    let dali = run(LoaderConfig::dali_best(model));
    let coordl = run(LoaderConfig::coordl_best(model));

    println!(
        "== Simulated: 8 concurrent {} HP-search jobs ==",
        model.name()
    );
    println!(
        "per-job throughput  DALI: {:7.0} samples/s   CoorDL: {:7.0} samples/s  ({:.2}x)",
        dali.steady_per_job_samples_per_sec(),
        coordl.steady_per_job_samples_per_sec(),
        coordl.speedup_over(&dali)
    );
    // Epoch 1 is the first post-warm-up epoch.
    println!(
        "read amplification  DALI: {:.2}x of dataset   CoorDL: {:.2}x of dataset",
        dali.read_amplification(dataset.total_bytes(), 1),
        coordl.read_amplification(dataset.total_bytes(), 1)
    );
}

fn functional_comparison() {
    // A small functional dataset: bytes really flow through worker threads.
    let spec = DatasetSpec::new("func-hp", 4096, 4096, 0.2, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 7));
    let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 4, 99);
    let num_jobs = 4;

    let session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            batch_size: 64,
            staging_window: 16,
            seed: 11,
            cache_capacity_bytes: 16 << 20,
            take_timeout: Duration::from_secs(5),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: num_jobs })
    .pipeline(pipeline)
    .build()
    .expect("valid coordinated-prep configuration");

    println!(
        "\n== Functional: {} jobs sharing one fetch+prep sweep ==",
        num_jobs
    );
    for epoch in 0..2u64 {
        let run = session.epoch(epoch);
        let handles: Vec<_> = (0..num_jobs)
            .map(|job| {
                let stream = run.stream(job);
                std::thread::spawn(move || {
                    let mut seen: HashMap<u64, u64> = HashMap::new();
                    let mut batches = 0usize;
                    for batch in stream {
                        let batch = batch.expect("epoch should complete");
                        for sample in &batch.samples {
                            *seen.entry(sample.item).or_default() += 1;
                        }
                        batches += 1;
                    }
                    (seen, batches)
                })
            })
            .collect();
        for (job, handle) in handles.into_iter().enumerate() {
            let (seen, batches) = handle.join().expect("consumer thread");
            let exactly_once = seen.values().all(|&n| n == 1);
            println!(
                "epoch {epoch} job {job}: {} items in {} batches, exactly-once = {}",
                seen.len(),
                batches,
                exactly_once
            );
            assert!(
                exactly_once,
                "each job must see every item exactly once per epoch"
            );
            assert_eq!(seen.len() as u64, store.len());
        }
    }
    let report = session.report();
    println!(
        "samples prepared once for all jobs: {} prepared vs {} delivered ({}x reuse)",
        report.samples_prepared,
        report.samples_delivered,
        report.samples_delivered / report.samples_prepared.max(1)
    );
    println!(
        "staging peak: {} bytes over {} epochs (window {})",
        report
            .epochs
            .iter()
            .map(|e| e.staging_peak_bytes)
            .max()
            .unwrap_or(0),
        report.epochs.len(),
        session.config().staging_window
    );
}

fn main() {
    simulated_comparison();
    functional_comparison();
}
