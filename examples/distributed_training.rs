//! Multi-server distributed training with partitioned caching (§4.2, §5.2).
//!
//! In distributed data-parallel training each server processes a random,
//! disjoint shard of the dataset that changes every epoch.  With uncoordinated
//! per-server caches, an item a server needs is often cached *on the other
//! server* — so both servers keep hitting storage even though the aggregate
//! DRAM could hold the whole dataset.  CoorDL partitions the dataset across
//! the servers' MinIO caches and serves local misses from the remote cache
//! over commodity Ethernet, which is faster than a local SATA SSD and orders
//! of magnitude faster than a hard drive.
//!
//! Run with `cargo run --release --example distributed_training`.

use datastalls::coordl::{Mode, Session, SessionConfig};
use datastalls::prelude::*;
use std::sync::Arc;

fn simulated_comparison() {
    // The paper's headline distributed result: AlexNet on OpenImages across
    // two Config-HDD-1080Ti servers, each able to cache 65 % of the dataset.
    let dataset = DatasetSpec::openimages_extended().scaled(64);
    let model = ModelKind::AlexNet;
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);

    println!(
        "== Simulated: {} across 2 servers ({}) ==",
        model.name(),
        server.name
    );
    for (label, loader) in [
        ("DALI-shuffle", LoaderConfig::dali_best(model)),
        ("CoorDL      ", LoaderConfig::coordl_best(model)),
    ] {
        let job = JobSpec::new(model, dataset.clone(), server.num_gpus, loader);
        let run = Experiment::on(&server)
            .job(job)
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(3)
            .run();
        let per_server_disk = run.disk_bytes_per_server(2);
        println!(
            "{label}: {:8.1} s/epoch, {:7.0} samples/s, disk I/O per server {:.1} GiB, network {:.2} Gbps",
            run.steady_epoch_seconds(),
            run.steady_samples_per_sec(),
            per_server_disk.iter().sum::<u64>() as f64
                / per_server_disk.len() as f64
                / (1u64 << 30) as f64,
            run.avg_network_gbps(2),
        );
    }

    let distributed = |job: JobSpec| {
        Experiment::on(&server)
            .job(job)
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(3)
            .run()
    };
    let dali = distributed(JobSpec::new(
        model,
        dataset.clone(),
        server.num_gpus,
        LoaderConfig::dali_best(model),
    ));
    let coordl = distributed(JobSpec::new(
        model,
        dataset,
        server.num_gpus,
        LoaderConfig::coordl_best(model),
    ));
    println!(
        "speedup: {:.1}x (paper reports up to 15x on hard drives)",
        coordl.speedup_over(&dali)
    );
}

fn functional_partitioned_cache() {
    // The same mechanism on real bytes: two "servers", each with a MinIO
    // cache holding 60 % of the dataset.  After the first epoch every fetch
    // is served from DRAM — local or remote — and storage is never touched.
    let spec = DatasetSpec::new("func-dist", 2048, 8192, 0.2, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 3));
    let session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            batch_size: 64,
            seed: 42,
            cache_capacity_bytes: spec.total_bytes() * 6 / 10, // per node
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes: 2 })
    .build()
    .expect("valid partitioned session");

    println!("\n== Functional: 2-server partitioned MinIO cache ==");
    let mut prev = datastalls::coordl::PartitionStats::default();
    for epoch in 0..3u64 {
        {
            let run = session.epoch(epoch);
            for node in 0..2usize {
                // Each node preps its random half of the items this epoch.
                for batch in run.stream(node) {
                    assert!(!batch.expect("partitioned epochs do not fail").is_empty());
                }
            }
        }
        let agg = session
            .partitioned_cluster()
            .expect("partitioned session")
            .aggregate_stats();
        let (local, remote, storage) = (
            agg.local_hits - prev.local_hits,
            agg.remote_hits - prev.remote_hits,
            agg.storage_reads - prev.storage_reads,
        );
        prev = agg;
        println!(
            "epoch {epoch}: {local:5} local-cache hits, {remote:5} remote-cache hits, \
             {storage:5} storage reads"
        );
        if epoch > 0 {
            assert_eq!(
                storage, 0,
                "after warm-up the aggregate cache covers the dataset: no storage reads"
            );
        }
    }
    let report = session.report();
    println!(
        "runtime report: hit ratio {:.1}%, {} bytes from peers, JSON bytes {}",
        report.hit_ratio() * 100.0,
        report.bytes_from_remote,
        report.to_json().len()
    );
}

fn main() {
    simulated_comparison();
    functional_partitioned_cache();
}
