//! Training to accuracy through CoorDL (Figure 10 in miniature).
//!
//! The paper's accuracy claim is deliberately modest: CoorDL changes *how
//! fast epochs complete*, never *what the model sees*.  Sampling, shuffling
//! and per-epoch random augmentation are untouched, so the accuracy-vs-epoch
//! curve is identical to the baseline loader's and the accuracy-vs-wall-clock
//! curve simply shifts left by the epoch-time speedup.
//!
//! This example demonstrates exactly that with real moving parts:
//!
//! 1. a small synthetic classification task is trained with an MLP twice —
//!    once pulling minibatches from the plain loader, once from a coordinated
//!    job group — and the two accuracy trajectories are compared epoch by
//!    epoch;
//! 2. the wall-clock axis for the full-scale setting (ResNet50 on ImageNet-1k
//!    across two HDD servers) comes from the pipeline simulator, showing the
//!    paper's ~4× reduction in time-to-accuracy.
//!
//! Run with `cargo run --release --example train_to_accuracy`.

use datastalls::coordl::{Mode, Session, SessionConfig};
use datastalls::dnn::{train_through_coordinated_group, train_through_loader, TrainConfig};
use datastalls::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn identity_pipeline() -> ExecutablePipeline {
    // The labelled-vector items are already decoded floats; byte-level
    // augmentation would corrupt them, so the loaders run an empty pipeline.
    // What matters here is the fetch/cache/staging machinery.
    ExecutablePipeline::new(
        PrepPipeline {
            name: "identity".into(),
            transforms: vec![],
        },
        1,
        0,
    )
}

fn accuracy_equivalence() {
    let store = Arc::new(LabeledVectorStore::new(480, 8, 3, 2024));
    let config = TrainConfig {
        hidden: 32,
        epochs: 5,
        seed: 7,
    };

    // Both sessions share one config — the coordinated run differs only in
    // its mode, which is the point: coordination must not change training.
    let session_config = SessionConfig {
        batch_size: 32,
        num_workers: 2,
        prefetch_depth: 4,
        seed: 13,
        cache_capacity_bytes: 8 << 20,
        staging_window: 8,
        take_timeout: Duration::from_secs(5),
        fetch_threads: 1,
        fetch_shards: 0,
    };
    let single = Session::builder(
        Arc::clone(&store) as Arc<dyn DataSource>,
        session_config.clone(),
    )
    .pipeline(identity_pipeline())
    .build()
    .expect("valid loader config");
    let baseline = train_through_loader(&single, &store, &config);

    let coordinated_session =
        Session::builder(Arc::clone(&store) as Arc<dyn DataSource>, session_config)
            .mode(Mode::Coordinated { jobs: 2 })
            .pipeline(identity_pipeline())
            .build()
            .expect("valid coordinated config");
    let coordinated = train_through_coordinated_group(&coordinated_session, &store, &config);

    println!("== Accuracy vs epoch: plain loader vs coordinated prep (job 0) ==");
    println!(
        "{:>5}  {:>14}  {:>14}",
        "epoch", "plain loader", "coordinated"
    );
    for (b, c) in baseline.iter().zip(&coordinated[0]) {
        println!(
            "{:>5}  {:>13.1}%  {:>13.1}%",
            b.epoch,
            b.accuracy * 100.0,
            c.accuracy * 100.0
        );
        assert!(
            (b.accuracy - c.accuracy).abs() < 1e-9,
            "coordination must not change the training trajectory"
        );
    }
}

fn time_to_accuracy() {
    // Figure 10's setting: ResNet50 / ImageNet-1k across two
    // Config-HDD-1080Ti servers, each caching 50 % of the dataset.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let model = ModelKind::ResNet50;
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.5);

    let distributed = |job: JobSpec| {
        Experiment::on(&server)
            .job(job)
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(3)
            .run()
    };
    let dali = distributed(JobSpec::new(
        model,
        dataset.clone(),
        server.num_gpus,
        LoaderConfig::dali_best(model),
    ));
    let coordl = distributed(JobSpec::new(
        model,
        dataset,
        server.num_gpus,
        LoaderConfig::coordl_best(model),
    ));

    // The accuracy-vs-epoch trajectory is shared; only seconds-per-epoch
    // differ.  Convert a nominal 90-epoch run to wall-clock for both loaders.
    let epochs_to_target = 90.0;
    let dali_hours = dali.steady_epoch_seconds() * epochs_to_target / 3600.0;
    let coordl_hours = coordl.steady_epoch_seconds() * epochs_to_target / 3600.0;
    println!("\n== Time to target accuracy (Figure 10's setting, scaled dataset) ==");
    println!("DALI  : {dali_hours:7.2} simulated hours to {epochs_to_target} epochs");
    println!("CoorDL: {coordl_hours:7.2} simulated hours to {epochs_to_target} epochs");
    println!(
        "time-to-accuracy improvement: {:.1}x (paper reports 4x: 2 days -> 12 hours)",
        dali_hours / coordl_hours
    );
}

fn main() {
    accuracy_equivalence();
    time_to_accuracy();
}
