//! Integration tests for partitioned caching (§4.2) — the functional
//! partitioned `Session` and the distributed simulator, cross-checked
//! against each other.

use datastalls::coordl::{
    CacheTier, DirectBackend, FetchOrigin, LoaderStats, MinIoByteCache, Mode,
    PartitionedCacheCluster, Session, SessionConfig,
};
use datastalls::dataset::EpochSampler;
use datastalls::prelude::*;
use std::sync::Arc;

fn cluster(
    items: u64,
    item_bytes: u64,
    servers: usize,
    per_server_fraction: f64,
) -> (Arc<dyn DataSource>, Session) {
    let spec = DatasetSpec::new("part-test", items, item_bytes, 0.0, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 5));
    let per_server = (spec.total_bytes() as f64 * per_server_fraction) as u64;
    let session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            seed: 99,
            cache_capacity_bytes: per_server,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes: servers })
    .build()
    .expect("valid partitioned session");
    (store, session)
}

/// Run one epoch: each server fetches its random shard, returning
/// (local hits, remote hits, storage reads).  Drives the session's cluster
/// item by item so origins can be classified exactly.
fn run_epoch(
    store: &Arc<dyn DataSource>,
    session: &Session,
    epoch: u64,
    servers: usize,
) -> (u64, u64, u64) {
    let cluster = session.partitioned_cluster().expect("partitioned mode");
    let sampler = EpochSampler::new(store.len(), 99);
    let (mut local, mut remote, mut storage) = (0, 0, 0);
    for server in 0..servers {
        for item in sampler.distributed_shard(epoch, server, servers) {
            match cluster.fetch(server, item).expect("cluster fetch").1 {
                FetchOrigin::LocalCache => local += 1,
                FetchOrigin::RemoteCache(_) => remote += 1,
                FetchOrigin::Storage => storage += 1,
            }
        }
    }
    (local, remote, storage)
}

#[test]
fn aggregate_cache_covering_the_dataset_eliminates_storage_io_after_warmup() {
    // §4.2: "the entire dataset is fetched exactly once from disk in the
    // duration of distributed training".
    let servers = 2;
    let (store, cluster) = cluster(2000, 4096, servers, 0.55);
    let (_, _, warm_storage) = run_epoch(&store, &cluster, 0, servers);
    assert_eq!(
        warm_storage,
        store.len(),
        "cold caches: everything comes from storage once"
    );
    for epoch in 1..4u64 {
        let (local, remote, storage) = run_epoch(&store, &cluster, epoch, servers);
        assert_eq!(
            storage, 0,
            "epoch {epoch}: no storage reads once DRAM covers the dataset"
        );
        assert_eq!(local + remote, store.len());
        assert!(
            remote > 0,
            "random sharding forces some remote-cache traffic"
        );
    }
}

#[test]
fn undersized_aggregate_cache_still_prefers_remote_dram_over_storage() {
    let servers = 2;
    // 30 % per server -> 60 % aggregate: 40 % of fetches must still hit disk.
    let (store, cluster) = cluster(2000, 4096, servers, 0.30);
    run_epoch(&store, &cluster, 0, servers);
    let (local, remote, storage) = run_epoch(&store, &cluster, 1, servers);
    let total = (local + remote + storage) as f64;
    let dram_fraction = (local + remote) as f64 / total;
    assert!(
        (dram_fraction - 0.60).abs() < 0.05,
        "≈60% of fetches should be served from some server's DRAM, got {dram_fraction:.2}"
    );
    assert!(storage > 0);
}

#[test]
fn directory_routes_every_item_to_exactly_one_owner() {
    let servers = 4;
    let (store, session) = cluster(1200, 1024, servers, 0.30);
    run_epoch(&store, &session, 0, servers);
    let cluster = session.partitioned_cluster().unwrap();
    assert_eq!(
        cluster.directory_len() as u64,
        store.len(),
        "after warm-up every item has exactly one registered owner"
    );
    // Ownership is balanced: each server holds roughly a quarter.
    let mut held = vec![0u64; servers];
    for (server, slot) in held.iter_mut().enumerate().take(servers) {
        *slot = cluster.stats(server).storage_reads;
    }
    let expect = store.len() / servers as u64;
    for (server, reads) in held.iter().enumerate() {
        assert!(
            (*reads as f64 - expect as f64).abs() / (expect as f64) < 0.25,
            "server {server} populated {reads} items, expected ≈{expect}"
        );
    }
}

#[test]
fn remote_traffic_is_accounted_symmetrically() {
    let servers = 2;
    let (store, session) = cluster(1000, 2048, servers, 0.55);
    run_epoch(&store, &session, 0, servers);
    run_epoch(&store, &session, 1, servers);
    let cluster = session.partitioned_cluster().unwrap();
    let a = cluster.stats(0);
    let b = cluster.stats(1);
    assert_eq!(
        a.remote_bytes_in + b.remote_bytes_in,
        a.remote_bytes_out + b.remote_bytes_out,
        "bytes received by all servers equal bytes served by all servers"
    );
    assert_eq!(
        session.stats().bytes_from_storage(),
        (0..store.len()).map(|i| store.item_bytes(i)).sum::<u64>(),
        "storage is read exactly one dataset's worth in total"
    );
}

#[test]
fn session_streams_match_the_manual_cluster_drive() {
    // Mode::Partitioned as a first-class loader: streaming each node's shard
    // through Session::epoch preps every shard item exactly once and leaves
    // the same cache state a manual fetch drive would.
    let servers = 2;
    let (store, session) = cluster(600, 512, servers, 0.65);
    for epoch in 0..2u64 {
        let run = session.epoch(epoch);
        let mut delivered = 0u64;
        for node in 0..servers {
            for batch in run.stream(node) {
                delivered += batch.expect("partitioned epochs do not fail").len() as u64;
            }
        }
        assert_eq!(delivered, store.len(), "epoch {epoch} covers the dataset");
    }
    let report = session.report();
    assert_eq!(report.mode, "partitioned");
    assert_eq!(
        report.epochs[1].bytes_from_storage, 0,
        "aggregate covers it"
    );
    assert!(report.bytes_from_remote > 0);
}

#[test]
fn simulator_agrees_partitioned_caching_removes_disk_io() {
    // The same claim at the simulator level (Figure 18's steady state): with
    // 65 % per-server cache and two servers, CoorDL's steady-state disk I/O
    // is zero while DALI keeps reading from storage.
    let dataset = DatasetSpec::openimages_extended().scaled(128);
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::ResNet50;
    let dali = Experiment::on(&server)
        .job(JobSpec::new(
            model,
            dataset.clone(),
            8,
            LoaderConfig::dali_best(model),
        ))
        .scenario(Scenario::Distributed { servers: 2 })
        .epochs(3)
        .run();
    let coordl = Experiment::on(&server)
        .job(JobSpec::new(
            model,
            dataset,
            8,
            LoaderConfig::coordl_best(model),
        ))
        .scenario(Scenario::Distributed { servers: 2 })
        .epochs(3)
        .run();
    let dali_disk: u64 = dali.disk_bytes_per_server(2).iter().sum();
    let coordl_disk: u64 = coordl.disk_bytes_per_server(2).iter().sum();
    assert!(dali_disk > 0, "uncoordinated caches keep hitting storage");
    assert_eq!(
        coordl_disk, 0,
        "partitioned caching serves every miss from remote DRAM"
    );
    assert!(
        coordl.speedup_over(&dali) > 2.0,
        "on hard drives the win is large"
    );
    assert!(
        coordl.avg_network_gbps(2) > 0.0 && coordl.avg_network_gbps(2) < 40.0,
        "CoorDL uses a fraction of the 40 Gbps link"
    );
}

#[test]
fn remote_tier_sits_between_the_local_chain_and_storage() {
    // The CoorDL lookup order: a node's own chain first, then the peer view,
    // then the durable store — and a remote hit never *promotes* (copies)
    // the bytes into the fetcher's chain, so each item stays cached exactly
    // once cluster-wide with ownership where the directory says it is.
    let items = 40u64;
    let spec = DatasetSpec::new("remote-order", items, 128, 0.0, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 5));
    let tiers: Vec<Arc<dyn CacheTier>> = (0..2)
        .map(|_| Arc::new(MinIoByteCache::new(spec.total_bytes())) as Arc<dyn CacheTier>)
        .collect();
    let cluster = Arc::new(PartitionedCacheCluster::with_stack(
        Arc::new(DirectBackend::new(Arc::clone(&store))),
        tiers,
        Arc::new(LoaderStats::default()),
    ));
    // Warm up with a fixed split: even items populate server 0, odd server 1.
    for item in 0..items {
        let (_, origin) = cluster.fetch((item % 2) as usize, item).unwrap();
        assert_eq!(origin, FetchOrigin::Storage, "cold fetch reads storage");
    }
    let odd = 7u64; // registered to server 1 by the warm-up

    // The peer view from server 0 contains exactly what the peers hold.
    let remote = cluster.remote_tier(0);
    assert!(
        remote.contains(odd),
        "peer-owned item is in the remote view"
    );
    assert!(
        !remote.contains(6),
        "an item server 0 owns itself is not 'remote' from its perspective"
    );
    assert_eq!(
        remote.used_bytes(),
        cluster.tier(1).used_bytes(),
        "with two servers, server 0's peer view is exactly server 1's chain"
    );
    assert!(remote.lookup(odd).is_some());
    assert_eq!(remote.hits(), 1);

    // Fetch order: the owner serves it locally; everyone else remotely —
    // and repeating the remote fetch changes nothing, because the bytes are
    // never admitted into the fetcher's chain.
    assert_eq!(cluster.fetch(1, odd).unwrap().1, FetchOrigin::LocalCache);
    for _ in 0..2 {
        assert_eq!(
            cluster.fetch(0, odd).unwrap().1,
            FetchOrigin::RemoteCache(1)
        );
        assert!(
            !cluster.tier(0).contains(odd),
            "remote hits must not duplicate bytes into the fetcher's tier"
        );
    }
    // The probe half agrees: remote from 0, not remote from its owner.
    assert_eq!(
        cluster.remote_fetch(0, odd).unwrap().map(|(_, p)| p),
        Some(1)
    );
    assert!(cluster.remote_fetch(1, odd).unwrap().is_none());
}

#[test]
fn node_streams_are_bit_identical_for_any_worker_count() {
    type StreamSample = (u64, usize, u64, u64, Vec<u8>);
    // The partitioned loader's determinism contract: the per-node shard
    // streams (items, augmentation seeds and prepared bytes, in minibatch
    // order) do not depend on how many prep workers each node runs.
    let servers = 2;
    let collect = |workers: usize| {
        let spec = DatasetSpec::new("det", 300, 512, 0.2, 4.0);
        let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 5));
        let session = Session::builder(
            store,
            SessionConfig {
                seed: 99,
                num_workers: workers,
                cache_capacity_bytes: spec.total_bytes() * 65 / 100,
                ..SessionConfig::default()
            },
        )
        .mode(Mode::Partitioned { nodes: servers })
        .build()
        .unwrap();
        let mut streams: Vec<Vec<StreamSample>> = Vec::new();
        for epoch in 0..2u64 {
            let run = session.epoch(epoch);
            for node in 0..servers {
                let mut stream = Vec::new();
                for batch in run.stream(node) {
                    let mb = batch.unwrap();
                    for s in &mb.samples {
                        stream.push((
                            mb.epoch,
                            mb.index,
                            s.item,
                            s.augmentation_seed,
                            s.data.to_vec(),
                        ));
                    }
                }
                streams.push(stream);
            }
        }
        streams
    };
    let one = collect(1);
    for workers in [2usize, 8] {
        assert_eq!(
            one,
            collect(workers),
            "{workers} prep workers changed a node's delivered stream"
        );
    }
}

#[test]
fn more_servers_increase_throughput_when_io_is_not_the_bottleneck() {
    // Figure 18: with partitioned caching, going from 2 to 4 servers scales
    // throughput because the job is no longer I/O bound.  A smaller per-GPU
    // batch keeps enough iterations per epoch on the scaled-down dataset for
    // the pipelined stages to reach steady state.
    let dataset = DatasetSpec::openimages_extended().scaled(32);
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::ResNet50;
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model)).with_batch(128);
    let distributed = |servers: usize| {
        Experiment::on(&server)
            .job(job.clone())
            .scenario(Scenario::Distributed { servers })
            .epochs(3)
            .run()
    };
    let two = distributed(2);
    let four = distributed(4);
    let scaling = four.steady_samples_per_sec() / two.steady_samples_per_sec();
    assert!(
        scaling > 1.6,
        "4 servers should be close to 2x the throughput of 2, got {scaling:.2}x"
    );
}
