//! Integration test for the persistent SSD tier (ISSUE 8): a tenant is
//! killed mid-run, the `Server` process "restarts" (a new instance over the
//! same VFS root), and the warmed SSD tier must (a) repopulate itself from
//! the on-disk spill manifest and (b) serve byte-identical content — the
//! aggregate stream digest of the restarted run matches an uninterrupted
//! run on a fresh hierarchy.

use datastalls::cache::PolicyKind;
use datastalls::coordl::{
    ByteTierSpec, Server, ServerConfig, SessionConfig, TenantHandle, TenantSpec,
};
use datastalls::dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use std::sync::Arc;
use vfs::{MemVfs, Vfs};

const ITEMS: u64 = 96;
const AVG_ITEM_BYTES: u64 = 1024;
const EPOCHS: u64 = 3;
const SEED: u64 = 0xD15C;

fn dataset() -> Arc<dyn DataSource> {
    let spec = DatasetSpec::new("restart-warmup", ITEMS, AVG_ITEM_BYTES, 0.2, 2.0);
    Arc::new(SyntheticItemStore::new(spec, 7))
}

/// DRAM too small for the working set, SSD big enough for all of it, spilled
/// to `ssd/` on the given VFS so a restarted server can warm from it.
fn tiers(fs: &Arc<dyn Vfs>) -> Vec<ByteTierSpec> {
    let total = ITEMS * AVG_ITEM_BYTES;
    vec![
        ByteTierSpec::dram(PolicyKind::MinIo, total / 4),
        ByteTierSpec::sata_ssd(PolicyKind::MinIo, total * 2).persistent(Arc::clone(fs), "ssd"),
    ]
}

fn server_over(fs: &Arc<dyn Vfs>) -> Server {
    Server::new(ServerConfig {
        tiers: tiers(fs),
        shards: 2,
    })
    .expect("valid server config")
}

fn submit(server: &Server) -> TenantHandle {
    server
        .submit(TenantSpec {
            name: "trainer".to_string(),
            dataset: dataset(),
            quota_bytes: ITEMS * AVG_ITEM_BYTES,
            session: SessionConfig {
                batch_size: 8,
                num_workers: 1,
                seed: SEED,
                ..SessionConfig::default()
            },
            profile: None,
        })
        .expect("valid tenant spec")
}

/// FNV-1a over everything the consumer receives, exactly like the bench
/// presets hash their streams.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Stream `epochs` full epochs into the digest; returns delivered samples.
fn stream_epochs(tenant: &TenantHandle, epochs: u64, digest: &mut Fnv) -> u64 {
    let mut samples = 0u64;
    for epoch in 0..epochs {
        let run = tenant.session().epoch(epoch);
        for batch in run.stream(0) {
            let mb = batch.expect("restart-warmup epochs do not fail");
            digest.u64(mb.epoch);
            digest.u64(mb.index as u64);
            for s in &mb.samples {
                digest.u64(s.item);
                digest.u64(s.augmentation_seed);
                digest.bytes(&s.data);
            }
            samples += mb.samples.len() as u64;
        }
    }
    samples
}

#[test]
fn restarted_server_warms_its_ssd_tier_and_replays_an_identical_stream() {
    // Uninterrupted reference run on its own fresh hierarchy.
    let reference_fs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let reference_server = server_over(&reference_fs);
    let reference_tenant = submit(&reference_server);
    let mut reference_digest = Fnv::new();
    let reference_samples = stream_epochs(&reference_tenant, EPOCHS, &mut reference_digest);
    assert!(reference_samples > 0);

    // Interrupted run over a VFS root that survives the "process".
    let fs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let server = server_over(&fs);
    let tenant = submit(&server);
    // One full epoch fills DRAM and spills the overflow to the SSD files...
    let mut partial = Fnv::new();
    stream_epochs(&tenant, 1, &mut partial);
    // ...then the tenant dies mid-epoch: a few batches into epoch 1 the
    // handle is leaked (no departure cleanup) and the server is dropped.
    {
        let run = tenant.session().epoch(1);
        for batch in run.stream(0).take(3) {
            batch.expect("pre-crash batches succeed");
        }
    }
    assert!(
        fs.exists("ssd/MANIFEST"),
        "the persistent tier keeps its manifest on the VFS"
    );
    std::mem::forget(tenant);
    drop(server);

    // "Restart": a new Server over the same VFS root. The SSD tier must
    // repopulate from the manifest before any tenant arrives.
    let server = server_over(&fs);
    let warmed = server.resident_items();
    assert!(warmed > 0, "SSD tier repopulated from the on-disk manifest");
    assert_eq!(
        server.dram_used_bytes(),
        0,
        "warm-up restores the SSD level, not DRAM"
    );

    // Tenant ids restart from zero, so resubmitting the same workload lands
    // in its old key window: the warmed entries are *its* items.
    let tenant = submit(&server);
    let mut restart_digest = Fnv::new();
    let restart_samples = stream_epochs(&tenant, EPOCHS, &mut restart_digest);

    assert_eq!(restart_samples, reference_samples);
    assert_eq!(
        restart_digest.0, reference_digest.0,
        "the warmed tier serves byte-identical content: the restarted run's \
         stream digest must match the uninterrupted run"
    );
    // The warm start did real work: the restarted run re-read less from
    // storage than one full dataset (a cold run reads every byte once).
    let cold_bytes: u64 = reference_tenant.session().stats().bytes_from_storage();
    let warm_bytes = tenant.session().stats().bytes_from_storage();
    assert!(
        warm_bytes < cold_bytes,
        "warmed SSD tier absorbed fetches: {warm_bytes} storage bytes after \
         restart vs {cold_bytes} cold"
    );

    // A clean departure retires the persisted copies: the next restart
    // starts cold again.
    tenant.depart();
    drop(server);
    let server = server_over(&fs);
    assert_eq!(
        server.resident_items(),
        0,
        "departure removed the spilled entries from the manifest"
    );
}
