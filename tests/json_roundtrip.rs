//! Property-style round-trip tests for `pipeline::json` — the hand-rolled
//! emitter/parser every report in the workspace (simulator `SimReport`,
//! sweep `SweepReport`, runtime `LoaderReport`, the CI gates) goes through.
//!
//! The invariant: anything [`write_string`]/[`write_f64`] emit must parse
//! back to the same value — for strings stuffed with quotes, backslashes,
//! control characters and multi-byte UTF-8, and for every finite `f64` bit
//! pattern (non-finite values map to `null` by design, JSON having no
//! `NaN`/`Infinity`).

use datastalls::pipeline::json::{escape, parse, write_f64, write_string, Value};
use proptest::prelude::*;

/// Deterministically build a nasty string from a seed: a mix of ASCII,
/// quotes, backslashes, control characters and multi-byte code points.
fn nasty_string(seed: u64, len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}', 'é',
        'ß', '中', '🦀', '\u{2028}', '/', ':', '{', '}', '[', ']', ',',
    ];
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            POOL[(state % POOL.len() as u64) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Escaped strings survive the emit → parse round trip byte-for-byte,
    /// both as object values and as object keys.
    #[test]
    fn string_escaping_round_trips(seed in 0u64..u64::MAX, len in 0usize..64) {
        let original = nasty_string(seed, len);
        let mut doc = String::from("{\"label\":");
        write_string(&mut doc, &original);
        doc.push('}');
        let parsed = parse(&doc).expect("write_string must emit valid JSON");
        prop_assert_eq!(parsed.get("label").and_then(Value::as_str), Some(original.as_str()));

        // As a key: keys use the same escaping path.
        let mut keyed = String::from("{");
        write_string(&mut keyed, &original);
        keyed.push_str(":1}");
        let parsed = parse(&keyed).expect("escaped keys must parse");
        prop_assert_eq!(parsed.get(&original).and_then(Value::as_f64), Some(1.0));
    }

    /// `escape` agrees with `write_string` minus the surrounding quotes.
    #[test]
    fn escape_is_write_string_without_quotes(seed in 0u64..u64::MAX, len in 0usize..48) {
        let original = nasty_string(seed, len);
        let mut quoted = String::new();
        write_string(&mut quoted, &original);
        prop_assert_eq!(quoted, format!("\"{}\"", escape(&original)));
    }

    /// Every finite f64 round-trips exactly (Rust's shortest formatting is
    /// lossless); every non-finite bit pattern becomes `null`.
    #[test]
    fn f64_bit_patterns_round_trip_or_become_null(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        let mut doc = String::from("{\"x\":");
        write_f64(&mut doc, v);
        doc.push('}');
        let parsed = parse(&doc).expect("write_f64 must emit valid JSON");
        let x = parsed.get("x").expect("key present");
        if v.is_finite() {
            let back = x.as_f64().expect("finite values stay numbers");
            // Compare by bits so -0.0 and 0.0 stay distinguishable... except
            // JSON "-0" parses to -0.0, which f64 round-trips exactly.
            prop_assert_eq!(back.to_bits(), v.to_bits());
        } else {
            prop_assert_eq!(x, &Value::Null);
        }
    }

    /// Mixed documents built from the emit helpers parse to the same shape:
    /// arrays of escaped strings and numbers, arbitrarily nested one level.
    #[test]
    fn composed_documents_round_trip(
        seed in 0u64..u64::MAX,
        n in 1usize..8,
        scale in 0.0f64..1e12,
    ) {
        let mut doc = String::from("{\"items\":[");
        let mut originals = Vec::new();
        for i in 0..n {
            if i > 0 {
                doc.push(',');
            }
            let s = nasty_string(seed.wrapping_add(i as u64), 12);
            doc.push_str("{\"name\":");
            write_string(&mut doc, &s);
            doc.push_str(",\"value\":");
            write_f64(&mut doc, scale * (i as f64 + 0.5));
            doc.push('}');
            originals.push(s);
        }
        doc.push_str("]}");
        let parsed = parse(&doc).expect("composed document must parse");
        let items = parsed.get("items").and_then(Value::as_array).expect("array");
        prop_assert_eq!(items.len(), n);
        for (i, item) in items.iter().enumerate() {
            prop_assert_eq!(
                item.get("name").and_then(Value::as_str),
                Some(originals[i].as_str())
            );
            let v = item.get("value").and_then(Value::as_f64).expect("number");
            prop_assert!((v - scale * (i as f64 + 0.5)).abs() <= f64::EPSILON * v.abs());
        }
    }
}
