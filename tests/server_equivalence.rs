//! A one-tenant `coordl::Server` is the standalone `Session`, bit for bit.
//!
//! The server's `TenantView` replaces the session's private `TieredByteCache`
//! with a window onto the shared hierarchy.  For a lone tenant whose quota is
//! the DRAM capacity, the quota's admission-floor arithmetic is exactly
//! MinIO's internal `used + size <= capacity` check, so nothing about the
//! delivered stream *or the counters* may change — that equivalence is what
//! makes the multi-tenant path a strict generalisation rather than a fork.
//!
//! At `shards > 1` the hierarchy splits capacity across locks, which may
//! legitimately shift *which* items stay resident; the delivered stream is a
//! function of the workload alone and must still be identical.

use datastalls::coordl::{
    LoaderStats, Mode, Server, ServerConfig, Session, SessionConfig, TenantHandle, TenantSpec,
};
use datastalls::dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use prep::PreparedSample;
use std::sync::Arc;

const SEED: u64 = 29;
const STORE_SEED: u64 = 13;
const ITEMS: u64 = 200;

fn store() -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("srv-eq", ITEMS, 512, 0.25, 4.0),
        STORE_SEED,
    ))
}

fn config(cache: u64, workers: usize) -> SessionConfig {
    SessionConfig {
        batch_size: 16,
        num_workers: workers,
        prefetch_depth: 4,
        seed: SEED,
        cache_capacity_bytes: cache,
        ..SessionConfig::default()
    }
}

fn standalone(cache: u64, workers: usize) -> Session {
    Session::builder(store(), config(cache, workers))
        .mode(Mode::Single)
        .build()
        .expect("standalone session")
}

fn tenant(cache: u64, shards: usize, workers: usize) -> (Server, TenantHandle) {
    let server = Server::new(ServerConfig::minio(cache, shards)).expect("server");
    let handle = server
        .submit(TenantSpec {
            name: "lone".to_string(),
            dataset: store(),
            // Quota == DRAM capacity: the admission floor reduces to
            // MinIO's own capacity check.
            quota_bytes: cache,
            session: config(0, workers),
            profile: None,
        })
        .expect("tenant");
    (server, handle)
}

fn drain(session: &Session, epochs: u64) -> Vec<Vec<PreparedSample>> {
    (0..epochs)
        .map(|epoch| {
            session
                .epoch(epoch)
                .stream(0)
                .flat_map(|mb| mb.expect("epoch completes").samples.clone())
                .collect()
        })
        .collect()
}

fn stats_tuple(stats: &LoaderStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.bytes_from_storage(),
        stats.bytes_from_cache(),
        stats.bytes_from_remote(),
        stats.samples_prepared(),
        stats.samples_delivered(),
    )
}

#[test]
fn one_tenant_server_is_bitwise_identical_to_a_standalone_session() {
    // Half the dataset fits: the quota floor must refuse exactly the same
    // admissions MinIO refuses, epoch after epoch.
    let total: u64 = {
        let s = store();
        (0..s.len()).map(|i| s.item_bytes(i)).sum()
    };
    let cache = total / 2;
    for workers in [1usize, 2] {
        let alone = standalone(cache, workers);
        let (_server, handle) = tenant(cache, 1, workers);
        assert_eq!(
            drain(&alone, 3),
            drain(handle.session(), 3),
            "workers={workers}: delivered streams must be bit-identical"
        );
        assert_eq!(
            stats_tuple(alone.stats()),
            stats_tuple(handle.session().stats()),
            "workers={workers}: every LoaderStats counter must match"
        );
        let alone_tier = alone.cache_tier().expect("single-mode tier");
        let tenant_tier = handle.session().cache_tier().expect("single-mode tier");
        assert_eq!(alone_tier.used_bytes(), tenant_tier.used_bytes());
        assert_eq!(alone_tier.resident_items(), tenant_tier.resident_items());
        assert_eq!(alone_tier.hits(), tenant_tier.hits());
        assert_eq!(alone_tier.misses(), tenant_tier.misses());
        assert_eq!(
            alone_tier.policy_name(),
            tenant_tier.policy_name(),
            "a one-tenant server reports the same cache_policy"
        );
    }
}

#[test]
fn one_tenant_report_matches_except_for_the_tenant_block() {
    let cache = 40 * 1024;
    let alone = standalone(cache, 1);
    let (_server, handle) = tenant(cache, 1, 1);
    drain(&alone, 2);
    drain(handle.session(), 2);
    let alone_report = alone.report();
    let tenant_report = handle.report();
    assert!(alone_report.tenant.is_none());
    assert!(tenant_report.tenant.is_some());
    // Byte and sample counters are deterministic; the *_seconds fields are
    // real wall clock and legitimately differ between runs.
    let counters = |r: &datastalls::coordl::LoaderReport| -> Vec<(u64, u64, u64, u64, u64, u64)> {
        r.epochs
            .iter()
            .map(|e| {
                (
                    e.bytes_from_storage,
                    e.bytes_from_cache,
                    e.cache_hits,
                    e.cache_misses,
                    e.samples_prepared,
                    e.samples_delivered,
                )
            })
            .collect()
    };
    assert_eq!(
        counters(&alone_report),
        counters(&tenant_report),
        "per-epoch trajectories match"
    );
    assert_eq!(alone_report.cache_policy, tenant_report.cache_policy);
}

#[test]
fn sharding_the_hierarchy_never_changes_the_delivered_stream() {
    // With shards > 1 the capacity is split per lock, so residency (and
    // the stats) may shift — but the stream is workload-determined.
    let total: u64 = {
        let s = store();
        (0..s.len()).map(|i| s.item_bytes(i)).sum()
    };
    let cache = total / 2;
    let alone = standalone(cache, 1);
    let expected = drain(&alone, 3);
    for shards in [2usize, 4] {
        let (_server, handle) = tenant(cache, shards, 1);
        assert_eq!(
            expected,
            drain(handle.session(), 3),
            "shards={shards}: delivered stream must not depend on lock sharding"
        );
    }
}
