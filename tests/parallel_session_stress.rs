//! Stress tests for the prefetching executor's bounded queues, the staging
//! area, and session teardown: shutdown mid-epoch while workers are blocked
//! on full queues must drain cleanly (no deadlock), a panicking worker must
//! fail only its own session with a descriptive [`CoordlError`], and
//! repeated sessions must not leak worker threads.

use datastalls::coordl::{
    CoordlError, FetchBackend, Mode, PublishOutcome, Session, SessionConfig, StagingArea,
};
use datastalls::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn store(items: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("stress", items, 512, 0.2, 4.0),
        7,
    ))
}

fn pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, 9)
}

/// Run `f` on its own thread and panic if it does not finish in `limit` —
/// turns a would-be deadlock into a clear test failure instead of a hang.
fn with_deadline<F: FnOnce() + Send + 'static>(limit: Duration, what: &str, f: F) {
    let handle = std::thread::spawn(f);
    let start = Instant::now();
    while !handle.is_finished() {
        assert!(
            start.elapsed() < limit,
            "{what} did not finish within {limit:?} — deadlock?"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.join().expect("deadline-guarded body");
}

#[test]
fn dropping_a_single_mode_stream_with_saturated_queues_drains_cleanly() {
    with_deadline(Duration::from_secs(60), "single-mode shutdown loop", || {
        for round in 0..15 {
            let session = Session::builder(
                store(400),
                SessionConfig {
                    batch_size: 4,
                    cache_capacity_bytes: 32 << 20,
                    ..SessionConfig::default()
                },
            )
            .workers(4)
            .prefetch_depth(1) // smallest window: maximum backpressure
            .pipeline(pipeline())
            .build()
            .expect("valid session");
            let run = session.epoch(0);
            let mut stream = run.stream(0);
            // Consume a prefix (round-dependent, including zero batches) so
            // workers are parked at every possible stage when we bail out.
            for _ in 0..(round % 4) {
                let _ = stream.next();
            }
            drop(stream);
            drop(run);
        }
    });
}

#[test]
fn dropping_a_coordinated_run_with_a_full_staging_window_drains_cleanly() {
    with_deadline(Duration::from_secs(60), "coordinated shutdown loop", || {
        for _ in 0..10 {
            let session = Session::builder(
                store(600),
                SessionConfig {
                    batch_size: 8,
                    staging_window: 1, // producers block almost immediately
                    cache_capacity_bytes: 32 << 20,
                    take_timeout: Duration::from_secs(5),
                    ..SessionConfig::default()
                },
            )
            .mode(Mode::Coordinated { jobs: 2 })
            .workers(4)
            .prefetch_depth(1)
            .pipeline(pipeline())
            .build()
            .expect("valid session");
            let run = session.epoch(0);
            let mut stream = run.stream(0);
            let first = stream.next().expect("epoch has batches");
            assert!(first.is_ok());
            // Job 1 never consumes: the window stays full and every prep
            // worker ends up blocked inside StagingArea::publish.  Dropping
            // the run must still shut down and join everything.
            drop(run);
            // The surviving stream observes the typed shutdown.
            for outcome in stream {
                match outcome {
                    Ok(_) => continue,
                    Err(CoordlError::Shutdown) => break,
                    Err(other) => panic!("expected Shutdown, got {other}"),
                }
            }
        }
    });
}

#[test]
fn staging_shutdown_wakes_a_crowd_of_blocked_producers_with_typed_outcomes() {
    let area = Arc::new(StagingArea::new(1, 1));
    assert_eq!(
        area.publish(datastalls::coordl::Minibatch {
            epoch: 0,
            index: 0,
            samples: vec![],
        }),
        PublishOutcome::Published
    );
    // Eight producers all blocked on the full window.
    let producers: Vec<_> = (1..9)
        .map(|index| {
            let area = Arc::clone(&area);
            std::thread::spawn(move || {
                area.publish(datastalls::coordl::Minibatch {
                    epoch: 0,
                    index,
                    samples: vec![],
                })
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(area.stats().published, 1, "window holds them all back");
    area.shutdown();
    for p in producers {
        let outcome = p.join().expect("producer thread");
        assert_eq!(outcome, PublishOutcome::Shutdown, "typed, not dropped");
        assert!(!outcome.is_live());
    }
}

/// A fetch backend that panics on one item — the injectable fault used to
/// prove a panicking worker fails only its session.
struct PanickingBackend {
    source: Arc<dyn DataSource>,
    panic_at: u64,
}

impl FetchBackend for PanickingBackend {
    fn num_items(&self) -> u64 {
        self.source.len()
    }

    fn item_bytes(&self, item: u64) -> u64 {
        self.source.item_bytes(item)
    }

    fn read(&self, item: u64) -> Result<Vec<u8>, CoordlError> {
        assert!(
            item != self.panic_at,
            "injected backend fault reading item {item}"
        );
        Ok(self.source.read(item))
    }

    fn name(&self) -> &'static str {
        "panicking"
    }
}

#[test]
fn panicking_worker_fails_only_its_session_with_a_descriptive_error() {
    let source = store(120);
    let faulty = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 10,
            cache_capacity_bytes: 32 << 20,
            ..SessionConfig::default()
        },
    )
    .workers(3)
    .fetch_backend(Arc::new(PanickingBackend {
        source: Arc::clone(&source),
        panic_at: 60,
    }))
    .pipeline(pipeline())
    .build()
    .expect("valid session");

    with_deadline(Duration::from_secs(30), "faulty session drain", move || {
        let run = faulty.epoch(0);
        let outcomes: Vec<_> = run.stream(0).collect();
        let err = outcomes
            .last()
            .expect("the failure surfaces as a final item")
            .as_ref()
            .expect_err("the epoch cannot complete");
        match err {
            CoordlError::WorkerPanicked { stage, detail } => {
                assert_eq!(*stage, "fetch");
                assert!(
                    detail.contains("injected backend fault"),
                    "panic payload is carried through: {detail}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        assert!(
            err.to_string().contains("panicked"),
            "descriptive Display: {err}"
        );
        // Everything before the fault was delivered intact.
        for b in &outcomes[..outcomes.len() - 1] {
            assert!(b.is_ok());
        }
    });

    // A healthy session in the same process is completely unaffected.
    let healthy = Session::builder(
        store(120),
        SessionConfig {
            batch_size: 10,
            cache_capacity_bytes: 32 << 20,
            ..SessionConfig::default()
        },
    )
    .workers(3)
    .pipeline(pipeline())
    .build()
    .expect("valid session");
    let delivered: usize = healthy
        .epoch(0)
        .stream(0)
        .map(|b| b.expect("healthy epoch completes").len())
        .sum();
    assert_eq!(delivered, 120);
}

#[test]
fn panicking_worker_surfaces_as_a_typed_error_in_coordinated_mode() {
    let source = store(100);
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 10,
            cache_capacity_bytes: 32 << 20,
            take_timeout: Duration::from_millis(500), // fast failure detection
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: 2 })
    .workers(2)
    .fetch_backend(Arc::new(PanickingBackend {
        source: Arc::clone(&source),
        panic_at: 50,
    }))
    .pipeline(pipeline())
    .build()
    .expect("valid session");

    with_deadline(
        Duration::from_secs(30),
        "coordinated fault drain",
        move || {
            let run = session.epoch(0);
            let mut saw_panic_error = false;
            for outcome in run.stream(0) {
                match outcome {
                    Ok(_) => continue,
                    Err(CoordlError::WorkerPanicked { detail, .. }) => {
                        assert!(detail.contains("injected backend fault"));
                        saw_panic_error = true;
                        break;
                    }
                    Err(other) => panic!("expected WorkerPanicked, got {other}"),
                }
            }
            assert!(saw_panic_error, "the panic reaches the consumer, typed");
        },
    );
}

/// Threads of this process, from /proc (Linux-only, like CI and the dev
/// container).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn repeated_sessions_join_all_worker_threads_and_leak_none() {
    let Some(_) = thread_count() else {
        eprintln!("skipping: /proc/self/status not available on this platform");
        return;
    };
    let run_batch = |rounds: usize| {
        for round in 0..rounds {
            // Mix the modes and tear some epochs down mid-stream: every
            // worker must be joined either way.
            let session = Session::builder(
                store(160),
                SessionConfig {
                    batch_size: 8,
                    cache_capacity_bytes: 32 << 20,
                    staging_window: 4,
                    take_timeout: Duration::from_secs(5),
                    ..SessionConfig::default()
                },
            )
            .mode(if round % 2 == 0 {
                Mode::Single
            } else {
                Mode::Coordinated { jobs: 2 }
            })
            .workers(3)
            .prefetch_depth(2)
            .pipeline(pipeline())
            .build()
            .expect("valid session");
            let run = session.epoch(0);
            if round % 3 == 0 {
                // Abandon mid-epoch: take one batch, then tear down.
                let mut stream = run.stream(0);
                let _ = stream.next();
                drop(stream);
            } else {
                // Drain every job to completion.
                let handles: Vec<_> = (0..session.num_jobs())
                    .map(|j| {
                        let stream = run.stream(j);
                        std::thread::spawn(move || {
                            for b in stream {
                                b.expect("epoch completes");
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("consumer");
                }
            }
            drop(run);
            drop(session);
        }
    };

    // Settle, then measure a baseline that already includes the test
    // harness's own threads.
    run_batch(3);
    let baseline = thread_count().expect("read above");

    run_batch(36);

    // Every session above spawned >= 4 threads, so a teardown leak is 100+
    // threads — far beyond this slack, which only absorbs sibling tests
    // running concurrently in this binary.  Poll: the last joins (and the
    // siblings) can trail by scheduler ticks.
    let slack = 24;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = thread_count().expect("read above");
        if now <= baseline + slack {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread count grew from {baseline} to {now}: session teardown \
             leaked worker threads"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn saturated_pipelines_still_deliver_exact_streams_under_churn() {
    // Tiny queues + many workers + concurrent coordinated consumers: the
    // adversarial shape for the reorder/staging machinery.  Everything must
    // still arrive exactly once, in order.
    let counter = Arc::new(AtomicU64::new(0));
    with_deadline(Duration::from_secs(60), "churn loop", {
        let counter = Arc::clone(&counter);
        move || {
            for _ in 0..4 {
                let session = Session::builder(
                    store(300),
                    SessionConfig {
                        batch_size: 4,
                        staging_window: 2,
                        cache_capacity_bytes: 32 << 20,
                        take_timeout: Duration::from_secs(10),
                        ..SessionConfig::default()
                    },
                )
                .mode(Mode::Coordinated { jobs: 3 })
                .workers(6)
                .prefetch_depth(1)
                .pipeline(pipeline())
                .build()
                .expect("valid session");
                let run = session.epoch(0);
                let handles: Vec<_> = (0..3)
                    .map(|j| {
                        let stream = run.stream(j);
                        std::thread::spawn(move || {
                            let mut indices = Vec::new();
                            for b in stream {
                                indices.push(b.expect("epoch completes").index);
                            }
                            indices
                        })
                    })
                    .collect();
                for h in handles {
                    let indices = h.join().expect("consumer");
                    assert_eq!(indices, (0..75).collect::<Vec<_>>(), "in order");
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 12, "4 rounds x 3 jobs");
}
