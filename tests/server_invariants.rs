//! Property-based invariants of the multi-tenant `coordl::Server`.
//!
//! The server's contract is capacity- and namespace-safety under *any*
//! submit/run/depart interleaving, not just the churn schedules the bench
//! preset replays:
//!
//! * the per-tenant resident-byte counters always sum to the hierarchy's
//!   occupancy, which never exceeds capacity;
//! * a tenant's DRAM bytes never exceed the highest effective (fair-share)
//!   quota it was granted — the server never *admits* past the quota in
//!   force, though never-evict tiers keep bytes a shrunk share no longer
//!   covers;
//! * departure reclaims every byte, leaks nothing into later tenants'
//!   key windows, and leaves survivors' residency untouched.

use datastalls::coordl::{Server, ServerConfig, SessionConfig, TenantHandle, TenantSpec};
use datastalls::dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use datastalls::pipeline::churn_schedule;
use proptest::prelude::*;
use std::sync::Arc;

fn submit(server: &Server, j: usize, items: u64, quota: u64) -> TenantHandle {
    let spec = DatasetSpec::new("inv", items, 256, 0.2, 2.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 5 + j as u64));
    server
        .submit(TenantSpec {
            name: format!("tenant-{j}"),
            dataset: store,
            quota_bytes: quota,
            session: SessionConfig {
                batch_size: 8,
                num_workers: 1,
                seed: 100 + j as u64,
                ..SessionConfig::default()
            },
            profile: None,
        })
        .expect("valid tenant spec")
}

fn run_epoch(handle: &TenantHandle, epoch: u64) {
    for mb in handle.session().epoch(epoch).stream(0) {
        mb.expect("tenant epochs do not fail");
    }
}

fn dataset_bytes(items: u64) -> u64 {
    DatasetSpec::new("inv", items, 256, 0.2, 2.0).total_bytes()
}

/// One admitted tenant plus the bookkeeping the invariants are checked
/// against: its next local epoch and the highest effective quota it has
/// been granted so far.
struct Live {
    handle: TenantHandle,
    next_epoch: u64,
    quota_ceiling: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under an arbitrary interleaving of submits, epochs and departures,
    /// occupancy accounting stays exact, capacity is never exceeded, no
    /// tenant's DRAM bytes pass the highest quota it was granted, and the
    /// final departures reclaim every byte.
    #[test]
    fn arbitrary_churn_preserves_capacity_and_quota_invariants(
        ops_seed in 0u64..u64::MAX,
        num_ops in 4usize..32,
        items in 12u64..48,
        cap_frac in 0.3f64..1.5,
        quota_frac in 0.2f64..1.2,
        shards in 1usize..5,
    ) {
        let per_tenant = dataset_bytes(items);
        let capacity = ((per_tenant as f64) * cap_frac) as u64 + 1;
        let quota = ((per_tenant as f64) * quota_frac) as u64;
        let server = Server::new(ServerConfig::minio(capacity, shards)).unwrap();
        let mut op_rng = TestRng::new(ops_seed);
        let mut live: Vec<Live> = Vec::new();
        let mut submitted = 0usize;
        for _ in 0..num_ops {
            let op = op_rng.next_u64();
            match op % 3 {
                0 => {
                    live.push(Live {
                        handle: submit(&server, submitted, items, quota),
                        next_epoch: 0,
                        quota_ceiling: 0,
                    });
                    submitted += 1;
                }
                1 if !live.is_empty() => {
                    let idx = (op as usize >> 8) % live.len();
                    let t = &mut live[idx];
                    // Shares only move on submit/depart, so the quota in
                    // force for this epoch is what the handle reports now.
                    t.quota_ceiling = t.quota_ceiling.max(t.handle.effective_quota_bytes());
                    run_epoch(&t.handle, t.next_epoch);
                    t.next_epoch += 1;
                    prop_assert!(
                        t.handle.dram_resident_bytes() <= t.quota_ceiling,
                        "tenant admitted past every quota it was granted"
                    );
                }
                2 if !live.is_empty() => {
                    let idx = (op as usize >> 8) % live.len();
                    live.swap_remove(idx).handle.depart();
                }
                _ => {}
            }
            let sum: u64 = live.iter().map(|t| t.handle.resident_bytes()).sum();
            prop_assert_eq!(sum, server.used_bytes(), "per-tenant counters must sum to occupancy");
            prop_assert!(server.used_bytes() <= server.capacity_bytes());
            prop_assert!(server.dram_used_bytes() <= server.dram_capacity_bytes());
        }
        for t in live.drain(..) {
            t.handle.depart();
        }
        prop_assert_eq!(server.used_bytes(), 0, "departures must reclaim every byte");
        prop_assert_eq!(server.resident_items(), 0);
    }

    /// Departing a tenant leaves every survivor's residency untouched and
    /// leaks nothing into a later tenant's key window: the newcomer sees
    /// all of its items absent even though the departed tenant cached the
    /// same item ids.
    #[test]
    fn departure_leaks_no_keys_across_tenants(
        tenants in 3usize..6,
        items in 12u64..48,
        victim_pick in 0usize..32,
        shards in 1usize..4,
    ) {
        // Capacity for everyone: residency differences can only come from
        // leaks, not admission pressure.
        let per_tenant = dataset_bytes(items);
        let capacity = per_tenant * (tenants as u64 + 1);
        let server = Server::new(ServerConfig::minio(capacity, shards)).unwrap();
        let mut live: Vec<Live> = (0..tenants)
            .map(|j| Live {
                handle: submit(&server, j, items, per_tenant),
                next_epoch: 0,
                quota_ceiling: 0,
            })
            .collect();
        for t in &mut live {
            run_epoch(&t.handle, 0);
            t.next_epoch = 1;
        }
        let victim = victim_pick % tenants;
        let survivors: Vec<u64> = live
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != victim)
            .map(|(_, t)| t.handle.resident_bytes())
            .collect();
        live.remove(victim).handle.depart();
        let after: Vec<u64> = live.iter().map(|t| t.handle.resident_bytes()).collect();
        prop_assert_eq!(&survivors, &after, "survivors' residency must be untouched");
        prop_assert_eq!(server.used_bytes(), after.iter().sum::<u64>());
        // A newcomer gets a fresh key window: every one of its items must
        // be absent despite the departed tenant having cached ids 0..items.
        let fresh = submit(&server, tenants, items, per_tenant);
        let tier = fresh.session().cache_tier().expect("single-mode tier");
        for item in 0..items {
            prop_assert!(!tier.contains(item), "item {} leaked into a fresh tenant", item);
        }
        prop_assert_eq!(fresh.resident_bytes(), 0);
    }

    /// The bench preset's churn contract at property scale: any churn
    /// schedule with at least three tenants runs to completion with quotas
    /// enforced throughout and the hierarchy empty afterwards.
    #[test]
    fn churn_schedules_run_with_quotas_enforced(
        tenants in 3usize..6,
        epochs in 2u64..5,
        seed in 0u64..(1u64 << 32),
        dram_percent in 30u64..90,
        shards in 1usize..4,
    ) {
        let items = 24u64;
        let per_tenant = dataset_bytes(items);
        // Oversubscribed on purpose: every tenant asks for a full dataset's
        // worth, so fair-share scaling binds whenever several are active.
        let capacity = per_tenant * tenants as u64 * dram_percent / 100;
        let server = Server::new(ServerConfig::minio(capacity, shards)).unwrap();
        let schedule = churn_schedule(tenants, epochs, seed);
        let mut live: Vec<Option<Live>> = (0..tenants).map(|_| None).collect();
        for epoch in 0..epochs {
            for (j, t) in schedule.iter().enumerate() {
                if t.departure == epoch {
                    if let Some(gone) = live[j].take() {
                        gone.handle.depart();
                    }
                }
            }
            for (j, t) in schedule.iter().enumerate() {
                if t.arrival == epoch {
                    live[j] = Some(Live {
                        handle: submit(&server, j, items, per_tenant),
                        next_epoch: 0,
                        quota_ceiling: 0,
                    });
                }
            }
            for slot in live.iter_mut().flatten() {
                let t = slot;
                t.quota_ceiling = t.quota_ceiling.max(t.handle.effective_quota_bytes());
                run_epoch(&t.handle, t.next_epoch);
                t.next_epoch += 1;
                prop_assert!(t.handle.dram_resident_bytes() <= t.quota_ceiling);
            }
            prop_assert!(server.dram_used_bytes() <= server.dram_capacity_bytes());
        }
        live.clear();
        prop_assert_eq!(server.used_bytes(), 0);
    }
}
