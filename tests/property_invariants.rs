//! Property-based tests over the core invariants the system relies on.
//!
//! These cut across crates: the cache policies, the epoch samplers, the
//! what-if algebra and the simulator's accounting must hold for *any*
//! dataset size, cache size and batch size — not just the paper's
//! configurations — because the benches sweep those axes freely.

use datastalls::analyzer::{ProfiledRates, WhatIfAnalysis};
use datastalls::cache::{build_cache, PolicyKind};
use datastalls::dataset::{minibatches, DatasetSpec, EpochSampler};
use datastalls::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MinIO's defining property: in every epoch after warm-up, misses equal
    /// the number of items that do not fit in the cache — for any dataset
    /// size, item size and cache fraction.
    #[test]
    fn minio_misses_are_exactly_capacity_misses(
        items in 16u64..2_000,
        item_bytes in 64u64..4_096,
        cache_frac in 0.05f64..0.95,
        seed in 0u64..u64::MAX,
    ) {
        let spec = DatasetSpec::new("prop", items, item_bytes, 0.0, 4.0);
        let mut cache = build_cache(PolicyKind::MinIo, spec.cache_bytes_for_fraction(cache_frac));
        let sampler = EpochSampler::new(items, seed);
        // Warm-up epoch.
        for item in sampler.permutation(0) {
            cache.access(item, spec.item_size(item));
        }
        let resident = cache.len() as u64;
        // Steady-state epoch.
        cache.reset_stats();
        for item in sampler.permutation(1) {
            cache.access(item, spec.item_size(item));
        }
        prop_assert_eq!(cache.stats().hits, resident);
        prop_assert_eq!(cache.stats().misses, items - resident);
        prop_assert_eq!(cache.stats().evictions, 0);
    }

    /// No page-cache stand-in can beat MinIO's steady-state hit count under
    /// the exactly-once-per-epoch access pattern (§4.1's argument).
    #[test]
    fn no_policy_beats_minio_at_steady_state(
        items in 32u64..1_000,
        cache_frac in 0.1f64..0.9,
        policy in prop_oneof![Just(PolicyKind::Lru), Just(PolicyKind::Fifo), Just(PolicyKind::Clock)],
        seed in 0u64..u64::MAX,
    ) {
        let spec = DatasetSpec::new("prop", items, 1_000, 0.0, 4.0);
        let capacity = spec.cache_bytes_for_fraction(cache_frac);
        let run = |kind: PolicyKind| {
            let mut cache = build_cache(kind, capacity);
            let sampler = EpochSampler::new(items, seed);
            for epoch in 0..3u64 {
                cache.reset_stats();
                for item in sampler.permutation(epoch) {
                    cache.access(item, spec.item_size(item));
                }
            }
            cache.stats().hits
        };
        prop_assert!(run(policy) <= run(PolicyKind::MinIo));
    }

    /// Every epoch permutation visits each item exactly once, and distributed
    /// shards partition the permutation without overlap or loss.
    #[test]
    fn samplers_cover_the_dataset_exactly_once(
        items in 1u64..3_000,
        num_shards in 1usize..6,
        epoch in 0u64..50,
        seed in 0u64..u64::MAX,
    ) {
        let sampler = EpochSampler::new(items, seed);
        let perm = sampler.permutation(epoch);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..items).collect::<Vec<_>>());

        let mut from_shards: Vec<u64> = (0..num_shards)
            .flat_map(|s| sampler.distributed_shard(epoch, s, num_shards))
            .collect();
        from_shards.sort_unstable();
        prop_assert_eq!(from_shards, (0..items).collect::<Vec<_>>());
    }

    /// Minibatch assembly never drops or duplicates samples and respects the
    /// batch size except possibly in the final batch.
    #[test]
    fn minibatch_assembly_is_lossless(
        items in 1u64..2_000,
        batch in 1usize..512,
        seed in 0u64..u64::MAX,
    ) {
        let sampler = EpochSampler::new(items, seed);
        let order = sampler.permutation(0);
        let batches = minibatches(&order, batch);
        let flattened: Vec<u64> = batches.iter().flatten().copied().collect();
        prop_assert_eq!(flattened, order);
        for (i, b) in batches.iter().enumerate() {
            if i + 1 < batches.len() {
                prop_assert_eq!(b.len(), batch);
            } else {
                prop_assert!(b.len() <= batch && !b.is_empty());
            }
        }
    }

    /// The what-if fetch-rate model is monotone in cache size, bracketed by
    /// the storage and DRAM rates, and the predicted speed never exceeds the
    /// GPU ingestion rate.
    #[test]
    fn whatif_algebra_is_well_behaved(
        gpu in 100.0f64..50_000.0,
        prep in 100.0f64..50_000.0,
        storage in 10.0f64..10_000.0,
        cache_mult in 2.0f64..100.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let rates = ProfiledRates {
            gpu_rate: gpu,
            prep_rate: prep,
            storage_rate: storage,
            cache_rate: storage * cache_mult,
            avg_item_bytes: 100_000,
        };
        let w = WhatIfAnalysis::new(rates);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(w.fetch_rate(lo) <= w.fetch_rate(hi) + 1e-9);
        prop_assert!(w.fetch_rate(0.0) >= storage - 1e-6);
        prop_assert!(w.fetch_rate(1.0) <= storage * cache_mult + 1e-6);
        prop_assert!(w.predicted_speed(hi) <= gpu.min(prep) + 1e-9);
        let rec = w.recommended_cache_fraction();
        prop_assert!((0.0..=1.0).contains(&rec));
    }

    /// Dataset specs: per-item sizes are deterministic, stay within the
    /// declared spread, and average out to the declared mean.
    #[test]
    fn dataset_item_sizes_respect_their_spec(
        items in 100u64..5_000,
        avg in 512u64..200_000,
        spread in 0.0f64..0.9,
    ) {
        let spec = DatasetSpec::new("prop", items, avg, spread, 5.0);
        let mut total = 0u128;
        for i in 0..items {
            let s = spec.item_size(i);
            prop_assert_eq!(s, spec.item_size(i));
            let lo = (avg as f64 * (1.0 - spread)).floor() as u64;
            let hi = (avg as f64 * (1.0 + spread)).ceil() as u64;
            prop_assert!(s >= lo.max(1) && s <= hi.max(1));
            total += s as u128;
        }
        let mean = total as f64 / items as f64;
        prop_assert!((mean - avg as f64).abs() / (avg as f64) < 0.10);
    }
}

proptest! {
    // The simulator is heavier, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulator conservation law: every byte consumed in an epoch comes from
    /// exactly one of cache, disk or remote, and a bigger cache never makes
    /// the steady-state epoch slower.
    #[test]
    fn simulation_accounting_is_conserved_and_monotone_in_cache(
        frac_small in 0.10f64..0.45,
        frac_delta in 0.10f64..0.50,
        model in prop_oneof![
            Just(ModelKind::ResNet18),
            Just(ModelKind::ResNet50),
            Just(ModelKind::AlexNet),
        ],
    ) {
        let dataset = DatasetSpec::imagenet_1k().scaled(256);
        let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
        let run_at = |frac: f64| {
            let server = ServerConfig::config_ssd_v100()
                .with_cache_fraction(dataset.total_bytes(), frac);
            Experiment::on(&server)
                .job(job.clone())
                .epochs(3)
                .run()
                .into_run_result()
        };
        let small = run_at(frac_small);
        let big = run_at((frac_small + frac_delta).min(0.95));

        for run in [&small, &big] {
            for epoch in &run.epochs {
                let accounted = epoch.bytes_from_cache + epoch.bytes_from_disk + epoch.bytes_from_remote;
                // Every fetched byte is attributed to exactly one source and
                // epochs deliver the whole (scaled) dataset's worth of items.
                prop_assert!(accounted > 0);
                prop_assert_eq!(epoch.cache_hits + epoch.cache_misses, dataset.num_items);
            }
        }
        prop_assert!(
            big.steady_state().epoch_seconds() <= small.steady_state().epoch_seconds() * 1.02,
            "more cache must not slow training down"
        );
    }
}
