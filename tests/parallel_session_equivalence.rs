//! The parallel prefetching executor's determinism contract, pinned for
//! every session mode and cache tier: worker count and prefetch depth may
//! change *when* work happens, never *what* a job observes.
//!
//! For each mode (Single / Coordinated / Partitioned) and tier (MinIO and
//! LRU — the latter's eviction decisions are order-sensitive, so this also
//! pins the sequential-fetch guarantee), the delivered minibatch streams and
//! all five deterministic `LoaderStats` counters must be bit-identical
//! across `workers ∈ {1, 2, 8}` and `prefetch_depth ∈ {1, 4}`.  A property
//! section additionally drives arbitrary dataset/batch/worker/shard shapes
//! through the executor and checks the exactly-once sampler invariants.

use benchkit::{run_worker_sweep, WorkerSweepConfig};
use datastalls::cache::PolicyKind;
use datastalls::coordl::{Mode, Session, SessionConfig};
use datastalls::dataset::EpochSampler;
use datastalls::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 47;
const EPOCHS: u64 = 2;

/// Worker/depth grid every mode is swept over; (1, 1) is the reference.
const GRID: [(usize, usize); 6] = [(1, 1), (1, 4), (2, 1), (2, 4), (8, 1), (8, 4)];

fn store(items: u64, avg: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("par-equiv", items, avg, 0.25, 4.0),
        23,
    ))
}

fn pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, 3)
}

/// Everything a job can observe from a run: the prepared streams (one per
/// job, epochs concatenated), the five `LoaderStats` counters and the
/// cache hit/miss counts.
#[derive(Debug, PartialEq)]
struct Observed {
    streams: Vec<Vec<prep::PreparedSample>>,
    counters: (u64, u64, u64, u64, u64),
    cache_hits: u64,
    cache_misses: u64,
}

fn observe(session: &Session) -> ((u64, u64, u64, u64, u64), u64, u64) {
    let stats = session.stats();
    let counters = (
        stats.bytes_from_storage(),
        stats.bytes_from_cache(),
        stats.bytes_from_remote(),
        stats.samples_prepared(),
        stats.samples_delivered(),
    );
    let (hits, misses) = match session.cache_tier() {
        Some(tier) => (tier.hits(), tier.misses()),
        None => {
            let agg = session
                .partitioned_cluster()
                .expect("tierless sessions are partitioned")
                .aggregate_stats();
            (agg.local_hits + agg.remote_hits, agg.storage_reads)
        }
    };
    (counters, hits, misses)
}

fn run_session(mode: Mode, policy: PolicyKind, workers: usize, depth: usize) -> Observed {
    // A cache holding roughly half the dataset keeps the LRU points
    // interesting: evictions happen every epoch, so any fetch-order
    // divergence across worker counts would change the counters.
    let items = 180u64;
    let source = store(items, 512);
    let total_bytes: u64 = (0..items).map(|i| source.item_bytes(i)).sum();
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 16,
            seed: SEED,
            cache_capacity_bytes: total_bytes / 2,
            staging_window: 8,
            take_timeout: Duration::from_secs(20),
            ..SessionConfig::default()
        },
    )
    .mode(mode)
    .workers(workers)
    .prefetch_depth(depth)
    .cache_policy(policy)
    .pipeline(pipeline())
    .build()
    .expect("valid session");

    let jobs = session.num_jobs();
    let mut streams: Vec<Vec<prep::PreparedSample>> = vec![Vec::new(); jobs];
    for epoch in 0..EPOCHS {
        let run = session.epoch(epoch);
        match mode {
            Mode::Coordinated { .. } => {
                // HP-search jobs consume concurrently, as in production.
                let handles: Vec<_> = (0..jobs)
                    .map(|j| {
                        let stream = run.stream(j);
                        std::thread::spawn(move || {
                            stream
                                .flat_map(|b| b.expect("epoch completes").samples.clone())
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for (j, h) in handles.into_iter().enumerate() {
                    streams[j].extend(h.join().expect("consumer"));
                }
            }
            _ => {
                // Single job, or partitioned nodes drained in node order
                // (the deterministic drive `dstool validate` also uses).
                for (j, sink) in streams.iter_mut().enumerate() {
                    for b in run.stream(j) {
                        sink.extend(b.expect("epoch completes").samples.clone());
                    }
                }
            }
        }
    }
    let (counters, cache_hits, cache_misses) = observe(&session);
    Observed {
        streams,
        counters,
        cache_hits,
        cache_misses,
    }
}

fn assert_grid_invariant(mode: Mode, policy: PolicyKind) {
    let reference = run_session(mode, policy, GRID[0].0, GRID[0].1);
    assert!(
        reference.counters.4 > 0,
        "{mode:?}/{policy:?}: reference run delivered nothing"
    );
    for &(workers, depth) in &GRID[1..] {
        let observed = run_session(mode, policy, workers, depth);
        assert_eq!(
            observed, reference,
            "{mode:?}/{policy:?}: workers={workers} depth={depth} diverged from \
             the workers=1 depth=1 reference"
        );
    }
}

#[test]
fn single_mode_is_bit_identical_across_workers_and_depth() {
    assert_grid_invariant(Mode::Single, PolicyKind::MinIo);
    assert_grid_invariant(Mode::Single, PolicyKind::Lru);
}

#[test]
fn coordinated_mode_is_bit_identical_across_workers_and_depth() {
    assert_grid_invariant(Mode::Coordinated { jobs: 3 }, PolicyKind::MinIo);
    assert_grid_invariant(Mode::Coordinated { jobs: 3 }, PolicyKind::Lru);
}

#[test]
fn partitioned_mode_is_bit_identical_across_workers_and_depth() {
    assert_grid_invariant(Mode::Partitioned { nodes: 2 }, PolicyKind::MinIo);
    assert_grid_invariant(Mode::Partitioned { nodes: 2 }, PolicyKind::Lru);
}

#[test]
fn prep_heavy_preset_speeds_up_with_workers_where_cores_allow() {
    // The wall-clock half of the contract ("workers(4) beats workers(1)")
    // needs real cores; the bit-equality half holds everywhere and is
    // asserted unconditionally.
    let cfg = WorkerSweepConfig {
        worker_counts: vec![1, 4],
        items: 512,
        ..WorkerSweepConfig::default()
    };
    let report = run_worker_sweep(&cfg);
    report
        .bit_identical()
        .expect("workers(4) must deliver the workers(1) stream bit-for-bit");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = report.speedup(4).expect("both points measured");
    if cores >= 4 {
        assert!(
            speedup > 1.0,
            "workers(4) must beat workers(1) wall-clock on a {cores}-core host, \
             got {speedup:.2}x"
        );
    } else {
        eprintln!(
            "skipping the wall-clock speedup assertion: only {cores} core(s) \
             available (measured {speedup:.2}x); bit-equality verified"
        );
    }
}

/// Drive one epoch of `session` and return each job's delivered item ids.
fn drain_epoch_items(session: &Session, epoch: u64) -> Vec<Vec<u64>> {
    let jobs = session.num_jobs();
    let run = session.epoch(epoch);
    match session.mode() {
        Mode::Coordinated { .. } => {
            let handles: Vec<_> = (0..jobs)
                .map(|j| {
                    let stream = run.stream(j);
                    std::thread::spawn(move || {
                        stream
                            .flat_map(|b| b.expect("epoch completes").item_ids())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        }
        _ => (0..jobs)
            .map(|j| {
                run.stream(j)
                    .flat_map(|b| b.expect("epoch completes").item_ids())
                    .collect()
            })
            .collect(),
    }
}

proptest! {
    // Real threads per case: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery survives any executor shape: for arbitrary
    /// dataset sizes, batch sizes, worker counts, prefetch depths and
    /// coordinated job mixes, every job sees every item exactly once per
    /// epoch.
    #[test]
    fn every_job_sees_every_item_exactly_once_under_any_executor_shape(
        items in 1u64..220,
        batch in 1usize..40,
        workers in 1usize..6,
        depth in 1usize..6,
        jobs in 1usize..4,
        seed in 0u64..u64::MAX,
        mode_sel in 0usize..2,
    ) {
        let mode = match mode_sel {
            0 => Mode::Single,
            _ => Mode::Coordinated { jobs },
        };
        let source = store(items, 96);
        let session = Session::builder(
            source,
            SessionConfig {
                batch_size: batch,
                seed,
                cache_capacity_bytes: 16 << 20,
                staging_window: 8,
                take_timeout: Duration::from_secs(20),
                ..SessionConfig::default()
            },
        )
        .mode(mode)
        .workers(workers)
        .prefetch_depth(depth)
        .pipeline(pipeline())
        .build()
        .expect("valid session");
        for per_job in drain_epoch_items(&session, 0) {
            prop_assert_eq!(per_job.len() as u64, items, "coverage");
            let set: HashSet<_> = per_job.iter().collect();
            prop_assert_eq!(set.len() as u64, items, "exactly once");
        }
    }

    /// Partitioned shard invariant under the executor: for any node count
    /// and shard layout, the union of the node streams covers the dataset
    /// exactly once per epoch, and no node sees another node's items.
    #[test]
    fn partitioned_shards_cover_the_dataset_exactly_once(
        items in 1u64..220,
        batch in 1usize..40,
        workers in 1usize..6,
        depth in 1usize..6,
        nodes in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let source = store(items, 96);
        let session = Session::builder(
            source,
            SessionConfig {
                batch_size: batch,
                seed,
                cache_capacity_bytes: 16 << 20,
                ..SessionConfig::default()
            },
        )
        .mode(Mode::Partitioned { nodes })
        .workers(workers)
        .prefetch_depth(depth)
        .pipeline(pipeline())
        .build()
        .expect("valid session");
        let per_node = drain_epoch_items(&session, 1);
        let sampler = EpochSampler::new(items, seed);
        let mut union: Vec<u64> = Vec::new();
        for (node, delivered) in per_node.iter().enumerate() {
            // Each node delivers exactly its sampler shard, in order.
            prop_assert_eq!(
                delivered,
                &sampler.distributed_shard(1, node, nodes),
                "node {} stream", node
            );
            union.extend(delivered);
        }
        union.sort_unstable();
        prop_assert_eq!(union, (0..items).collect::<Vec<_>>());
    }
}
