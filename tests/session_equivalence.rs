//! Equivalence of the unified `Session` API with the legacy entry points.
//!
//! The legacy `DataLoader` and `CoordinatedJobGroup` survive as deprecated
//! shims over the session engines, so the streams and statistics they
//! produce must be *bit-identical* to what an equivalently configured
//! `Session` yields.  These tests pin that contract: item order, prepared
//! sample bytes, augmentation seeds and every `LoaderStats` counter.

#![allow(deprecated)]

use datastalls::coordl::{
    CoordinatedConfig, CoordinatedJobGroup, DataLoader, DataLoaderConfig, LoaderStats, Mode,
    Session, SessionConfig,
};
use datastalls::prelude::*;
use prep::PreparedSample;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 31;
const PREP_SEED: u64 = 8;

fn store(items: u64, avg: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("equiv", items, avg, 0.25, 4.0),
        17,
    ))
}

fn pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, PREP_SEED)
}

fn stats_tuple(stats: &LoaderStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.bytes_from_storage(),
        stats.bytes_from_cache(),
        stats.bytes_from_remote(),
        stats.samples_prepared(),
        stats.samples_delivered(),
    )
}

#[test]
fn single_mode_session_reproduces_the_data_loader_stream_and_stats() {
    // num_workers = 1 makes the cache admission order deterministic, so the
    // two runs must agree on *every* counter even with a cache smaller than
    // the dataset (partial residency).
    let source = store(300, 1024);
    let total_bytes: u64 = (0..source.len()).map(|i| source.item_bytes(i)).sum();
    let cache = total_bytes / 2;

    let loader = DataLoader::new(
        Arc::clone(&source),
        pipeline(),
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 1,
            prefetch_depth: 4,
            seed: SEED,
            cache_capacity_bytes: cache,
        },
    )
    .expect("legacy loader");
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 32,
            num_workers: 1,
            prefetch_depth: 4,
            seed: SEED,
            cache_capacity_bytes: cache,
            ..SessionConfig::default()
        },
    )
    .pipeline(pipeline())
    .build()
    .expect("session");

    for epoch in 0..2u64 {
        let legacy: Vec<PreparedSample> = loader
            .epoch(epoch)
            .flat_map(|mb| mb.samples.clone())
            .collect();
        let unified: Vec<PreparedSample> = session
            .epoch(epoch)
            .stream(0)
            .flat_map(|mb| mb.expect("epoch completes").samples.clone())
            .collect();
        assert_eq!(
            legacy, unified,
            "epoch {epoch}: prepared samples must be bit-identical"
        );
    }
    assert_eq!(
        stats_tuple(loader.stats()),
        stats_tuple(session.stats()),
        "every LoaderStats counter must match"
    );
    // The shims literally share the engine, so the cache state agrees too.
    let tier = session.cache_tier().expect("single mode tier");
    assert_eq!(loader.cache().used_bytes(), tier.used_bytes());
    assert_eq!(loader.cache().len(), tier.resident_items());
    assert_eq!(loader.cache().hits(), tier.hits());
    assert_eq!(loader.cache().misses(), tier.misses());
}

#[test]
fn single_mode_streams_match_with_many_workers_when_the_cache_fits() {
    // With the whole dataset cacheable, multi-worker runs are deterministic
    // in aggregate: identical streams and identical stats.
    let source = store(256, 512);
    let config = DataLoaderConfig {
        batch_size: 25,
        num_workers: 3,
        prefetch_depth: 4,
        seed: SEED,
        cache_capacity_bytes: 64 << 20,
    };
    let loader =
        DataLoader::new(Arc::clone(&source), pipeline(), config.clone()).expect("legacy loader");
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 25,
            num_workers: 3,
            prefetch_depth: 4,
            seed: SEED,
            cache_capacity_bytes: 64 << 20,
            ..SessionConfig::default()
        },
    )
    .pipeline(pipeline())
    .build()
    .expect("session");

    for epoch in 0..3u64 {
        let legacy: Vec<PreparedSample> = loader
            .epoch(epoch)
            .flat_map(|mb| mb.samples.clone())
            .collect();
        let unified: Vec<PreparedSample> = session
            .epoch(epoch)
            .stream(0)
            .flat_map(|mb| mb.expect("epoch completes").samples.clone())
            .collect();
        assert_eq!(legacy, unified, "epoch {epoch}");
    }
    assert_eq!(stats_tuple(loader.stats()), stats_tuple(session.stats()));
}

#[test]
fn coordinated_session_reproduces_the_job_group_streams_and_stats() {
    let source = store(240, 768);
    let jobs = 3;
    let group = CoordinatedJobGroup::new(
        Arc::clone(&source),
        pipeline(),
        CoordinatedConfig {
            num_jobs: jobs,
            batch_size: 16,
            staging_window: 8,
            seed: SEED,
            cache_capacity_bytes: 64 << 20,
            take_timeout: Duration::from_secs(10),
        },
    )
    .expect("legacy group");
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 16,
            staging_window: 8,
            seed: SEED,
            cache_capacity_bytes: 64 << 20,
            take_timeout: Duration::from_secs(10),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs })
    .pipeline(pipeline())
    .build()
    .expect("session");

    for epoch in 0..2u64 {
        // Legacy epoch: drain every job on its own thread.
        let legacy_session = group.run_epoch(epoch);
        let legacy_handles: Vec<_> = (0..jobs)
            .map(|j| {
                let consumer = legacy_session.consumer(j);
                std::thread::spawn(move || {
                    consumer
                        .flat_map(|b| b.expect("legacy epoch").samples.clone())
                        .collect::<Vec<PreparedSample>>()
                })
            })
            .collect();
        let legacy: Vec<Vec<PreparedSample>> = legacy_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        drop(legacy_session);

        // Unified epoch: same thing through Session.
        let run = session.epoch(epoch);
        let unified_handles: Vec<_> = (0..jobs)
            .map(|j| {
                let stream = run.stream(j);
                std::thread::spawn(move || {
                    stream
                        .flat_map(|b| b.expect("session epoch").samples.clone())
                        .collect::<Vec<PreparedSample>>()
                })
            })
            .collect();
        let unified: Vec<Vec<PreparedSample>> = unified_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();

        for j in 0..jobs {
            assert_eq!(
                legacy[j], unified[j],
                "epoch {epoch} job {j}: streams must be bit-identical"
            );
        }
    }
    assert_eq!(
        stats_tuple(group.stats()),
        stats_tuple(session.stats()),
        "every LoaderStats counter must match"
    );
    let tier = session.cache_tier().expect("coordinated tier");
    assert_eq!(group.cache().used_bytes(), tier.used_bytes());
    assert_eq!(group.cache().len(), tier.resident_items());
}

#[test]
fn session_batches_per_epoch_matches_the_legacy_accessors() {
    let source = store(101, 256);
    let loader = DataLoader::new(
        Arc::clone(&source),
        pipeline(),
        DataLoaderConfig {
            batch_size: 25,
            ..DataLoaderConfig::default()
        },
    )
    .unwrap();
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 25,
            ..SessionConfig::default()
        },
    )
    .build()
    .unwrap();
    assert_eq!(loader.batches_per_epoch(), session.batches_per_epoch());
    assert_eq!(session.batches_per_epoch(), 5); // ceil(101 / 25)
}
