//! Equivalence of the `TierChain`-backed session tiers with the dedicated
//! single-policy byte caches they replaced.
//!
//! Every `Session` now routes its cache tier(s) through a
//! `coordl::TieredByteCache` (a `dcache::TierChain` holding real payloads).
//! These tests pin the refactor's contract: a single-level chain produces
//! *bit-identical* streams and `LoaderStats` counters to the dedicated
//! `MinIoByteCache` / `PolicyByteCache` implementations, in every session
//! mode — and a chain whose extra tier has zero capacity degenerates to the
//! single-tier behaviour exactly.

use datastalls::coordl::{
    ByteTierSpec, LoaderStats, MinIoByteCache, Mode, PolicyByteCache, Session, SessionConfig,
};
use datastalls::prelude::*;
use prep::PreparedSample;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 31;
const PREP_SEED: u64 = 8;

fn store(items: u64, avg: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("equiv", items, avg, 0.25, 4.0),
        17,
    ))
}

fn pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, PREP_SEED)
}

fn stats_tuple(stats: &LoaderStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.bytes_from_storage(),
        stats.bytes_from_cache(),
        stats.bytes_from_remote(),
        stats.samples_prepared(),
        stats.samples_delivered(),
    )
}

fn config(batch: usize, cache: u64, workers: usize) -> SessionConfig {
    SessionConfig {
        batch_size: batch,
        num_workers: workers,
        prefetch_depth: 4,
        seed: SEED,
        cache_capacity_bytes: cache,
        take_timeout: Duration::from_secs(10),
        ..SessionConfig::default()
    }
}

/// Drain one single-mode session, returning its prepared samples per epoch.
fn drain_single(session: &Session, epochs: u64) -> Vec<Vec<PreparedSample>> {
    (0..epochs)
        .map(|epoch| {
            session
                .epoch(epoch)
                .stream(0)
                .flat_map(|mb| mb.expect("epoch completes").samples.clone())
                .collect()
        })
        .collect()
}

#[test]
fn chain_backed_minio_tier_matches_the_dedicated_minio_byte_cache() {
    // Partial residency (cache = half the dataset) with one worker: the
    // admission order is deterministic, so *every* counter must agree.
    let source = store(300, 1024);
    let total_bytes: u64 = (0..source.len()).map(|i| source.item_bytes(i)).sum();
    let cache = total_bytes / 2;

    let chain = Session::builder(Arc::clone(&source), config(32, cache, 1))
        .pipeline(pipeline())
        .build()
        .expect("chain session");
    let dedicated_tier = Arc::new(MinIoByteCache::new(cache));
    let dedicated = Session::builder(Arc::clone(&source), config(32, cache, 1))
        .pipeline(pipeline())
        .cache_tier(Arc::clone(&dedicated_tier) as Arc<dyn CacheTier>)
        .build()
        .expect("dedicated session");

    assert_eq!(
        drain_single(&chain, 2),
        drain_single(&dedicated, 2),
        "prepared samples must be bit-identical"
    );
    assert_eq!(
        stats_tuple(chain.stats()),
        stats_tuple(dedicated.stats()),
        "every LoaderStats counter must match"
    );
    let tier = chain.cache_tier().expect("single mode tier");
    assert_eq!(tier.used_bytes(), dedicated_tier.used_bytes());
    assert_eq!(tier.resident_items(), dedicated_tier.len());
    assert_eq!(tier.hits(), dedicated_tier.hits());
    assert_eq!(tier.misses(), dedicated_tier.misses());
    assert_eq!(tier.policy_name(), "MinIO");
}

#[test]
fn chain_backed_lru_tier_matches_the_policy_byte_cache_across_workers() {
    // The executor's sequential fetch order makes LRU decisions identical
    // for any worker count; pin chain == dedicated at workers 1 and 3.
    let source = store(256, 512);
    let total_bytes: u64 = (0..source.len()).map(|i| source.item_bytes(i)).sum();
    let cache = total_bytes * 2 / 5; // forces steady-state thrashing
    for workers in [1usize, 3] {
        let chain = Session::builder(Arc::clone(&source), config(25, cache, workers))
            .pipeline(pipeline())
            .cache_policy(PolicyKind::Lru)
            .build()
            .expect("chain session");
        let dedicated_tier = Arc::new(PolicyByteCache::new(PolicyKind::Lru, cache));
        let dedicated = Session::builder(Arc::clone(&source), config(25, cache, workers))
            .pipeline(pipeline())
            .cache_tier(Arc::clone(&dedicated_tier) as Arc<dyn CacheTier>)
            .build()
            .expect("dedicated session");

        assert_eq!(
            drain_single(&chain, 3),
            drain_single(&dedicated, 3),
            "workers={workers}"
        );
        assert_eq!(
            stats_tuple(chain.stats()),
            stats_tuple(dedicated.stats()),
            "workers={workers}"
        );
        let tier = chain.cache_tier().expect("single mode tier");
        assert_eq!(tier.hits(), CacheTier::hits(dedicated_tier.as_ref()));
        assert_eq!(tier.misses(), CacheTier::misses(dedicated_tier.as_ref()));
        assert_eq!(
            tier.used_bytes(),
            CacheTier::used_bytes(dedicated_tier.as_ref()),
            "workers={workers}"
        );
    }
}

#[test]
fn zero_capacity_ssd_tier_degenerates_to_the_single_tier_chain() {
    // A DRAM+SSD chain whose SSD holds nothing must be bit-identical to the
    // flat DRAM chain: every spill bypasses, every demotion falls through.
    let source = store(200, 700);
    let total_bytes: u64 = (0..source.len()).map(|i| source.item_bytes(i)).sum();
    let cache = total_bytes / 3;

    let flat = Session::builder(Arc::clone(&source), config(20, cache, 2))
        .pipeline(pipeline())
        .build()
        .expect("flat session");
    let degenerate = Session::builder(Arc::clone(&source), config(20, cache, 2))
        .pipeline(pipeline())
        .cache_tiers(vec![
            ByteTierSpec::dram(PolicyKind::MinIo, cache),
            ByteTierSpec::sata_ssd(PolicyKind::MinIo, 0),
        ])
        .build()
        .expect("degenerate session");

    assert_eq!(drain_single(&flat, 3), drain_single(&degenerate, 3));
    assert_eq!(stats_tuple(flat.stats()), stats_tuple(degenerate.stats()));
    assert_eq!(degenerate.stats().bytes_from_lower_tiers(), 0);
    let flat_report = flat.report();
    let tiered_report = degenerate.report();
    assert_eq!(flat_report.cache_hits, tiered_report.cache_hits);
    assert_eq!(flat_report.cache_misses, tiered_report.cache_misses);
    assert_eq!(tiered_report.lower_tier_hits, 0);
    assert_eq!(flat_report.cache_used_bytes, tiered_report.cache_used_bytes);
}

#[test]
fn coordinated_sessions_agree_between_chain_and_dedicated_tiers() {
    let source = store(240, 768);
    let jobs = 3;
    let run = |dedicated: bool| {
        let mut builder = Session::builder(
            Arc::clone(&source),
            SessionConfig {
                batch_size: 16,
                staging_window: 8,
                seed: SEED,
                cache_capacity_bytes: 64 << 20,
                take_timeout: Duration::from_secs(10),
                ..SessionConfig::default()
            },
        )
        .mode(Mode::Coordinated { jobs })
        .pipeline(pipeline());
        if dedicated {
            builder =
                builder.cache_tier(Arc::new(MinIoByteCache::new(64 << 20)) as Arc<dyn CacheTier>);
        }
        let session = builder.build().expect("session");
        let mut per_job: Vec<Vec<PreparedSample>> = Vec::new();
        for epoch in 0..2u64 {
            let run = session.epoch(epoch);
            let handles: Vec<_> = (0..jobs)
                .map(|j| {
                    let stream = run.stream(j);
                    std::thread::spawn(move || {
                        stream
                            .flat_map(|b| b.expect("epoch completes").samples.clone())
                            .collect::<Vec<PreparedSample>>()
                    })
                })
                .collect();
            for h in handles {
                per_job.push(h.join().unwrap());
            }
        }
        let stats = stats_tuple(session.stats());
        let tier = session.cache_tier().expect("coordinated tier");
        (
            per_job,
            stats,
            tier.hits(),
            tier.misses(),
            tier.used_bytes(),
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn partitioned_sessions_agree_between_chain_and_historical_stack() {
    // Partitioned nodes now carry one single-level chain each; their
    // counters must match what the MinIO-per-node stack produced.
    let items = 100u64;
    let spec = DatasetSpec::new("equiv", items, 100, 0.0, 4.0);
    let total = spec.total_bytes();
    let run = || {
        let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 9));
        let session = Session::builder(ds, config(10, total * 65 / 100, 2))
            .mode(Mode::Partitioned { nodes: 2 })
            .pipeline(pipeline())
            .build()
            .expect("partitioned session");
        for epoch in 0..3u64 {
            let run = session.epoch(epoch);
            for node in 0..2 {
                for mb in run.stream(node) {
                    let _ = mb.expect("epoch completes");
                }
            }
        }
        let agg = session.partitioned_cluster().unwrap().aggregate_stats();
        (stats_tuple(session.stats()), agg)
    };
    // The chain is deterministic: two identical runs agree on everything,
    // and the §4.2 invariant holds (aggregate capacity covers the dataset,
    // so storage is read exactly once).
    let (stats_a, agg_a) = run();
    let (stats_b, agg_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(agg_a, agg_b);
    assert_eq!(agg_a.storage_bytes, total, "dataset read from disk once");
    assert!(agg_a.remote_hits > 0, "peers served epoch-varying shards");
}
