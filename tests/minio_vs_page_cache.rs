//! Integration tests for the paper's caching claims (§3.3.1, §4.1, Table 6).
//!
//! These cross the `cache`, `storage`, `dataset` and `pipeline` crates: the
//! access pattern comes from the epoch sampler, flows through a storage node
//! with a given cache policy, and is measured the way the evaluation does.

use datastalls::cache::{build_cache, Cache, MinIoCache, PolicyKind};
use datastalls::dataset::{DatasetSpec, EpochSampler};
use datastalls::prelude::*;

/// Drive `epochs` epochs of the DNN access pattern (fresh random permutation
/// per epoch, every item exactly once) through a cache and return the misses
/// observed in the final epoch.
fn final_epoch_misses(
    policy: PolicyKind,
    spec: &DatasetSpec,
    cache_fraction: f64,
    epochs: u64,
) -> u64 {
    let mut cache = build_cache(policy, spec.cache_bytes_for_fraction(cache_fraction));
    let sampler = EpochSampler::new(spec.num_items, 7);
    let mut last = 0;
    for epoch in 0..epochs {
        cache.reset_stats();
        for item in sampler.permutation(epoch) {
            cache.access(item, spec.item_size(item));
        }
        last = cache.stats().misses;
    }
    last
}

#[test]
fn minio_reduces_misses_to_capacity_misses() {
    // §4.1: "Every epoch beyond the first gets exactly as many hits as the
    // number of items in the cache."
    let spec = DatasetSpec::new("cache-test", 20_000, 1000, 0.0, 6.0);
    for fraction in [0.25, 0.35, 0.5, 0.65] {
        let misses = final_epoch_misses(PolicyKind::MinIo, &spec, fraction, 3);
        let capacity_items = (spec.num_items as f64 * fraction).round() as u64;
        let ideal = spec.num_items - capacity_items;
        let deviation = (misses as f64 - ideal as f64).abs() / spec.num_items as f64;
        assert!(
            deviation < 0.01,
            "MinIO at {fraction}: {misses} misses, ideal {ideal}"
        );
    }
}

#[test]
fn page_cache_lru_thrashes_under_the_dnn_access_pattern() {
    // §3.3.1: with 35 % cached the page cache fetches ~85 % of the dataset
    // from storage instead of the ideal 65 % — roughly 20 % extra misses.
    let spec = DatasetSpec::new("cache-test", 20_000, 1000, 0.0, 6.0);
    let lru = final_epoch_misses(PolicyKind::Lru, &spec, 0.35, 3);
    let minio = final_epoch_misses(PolicyKind::MinIo, &spec, 0.35, 3);
    assert!(
        lru > minio,
        "LRU ({lru}) should miss more than MinIO ({minio}) under thrashing"
    );
    let extra = (lru - minio) as f64 / spec.num_items as f64;
    assert!(
        extra > 0.05 && extra < 0.40,
        "thrashing should cost a noticeable but bounded fraction of the dataset, got {extra:.2}"
    );
}

#[test]
fn every_page_cache_stand_in_is_worse_than_or_equal_to_minio() {
    let spec = DatasetSpec::new("cache-test", 10_000, 1000, 0.0, 6.0);
    let minio = final_epoch_misses(PolicyKind::MinIo, &spec, 0.5, 3);
    for policy in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock] {
        let other = final_epoch_misses(policy, &spec, 0.5, 3);
        assert!(
            other >= minio,
            "{policy:?} ({other} misses) should not beat MinIO ({minio} misses)"
        );
    }
}

#[test]
fn figure8_example_minio_two_capacity_misses_per_epoch() {
    // Figure 8: dataset {A,B,C,D}, cache of 2, warmed with D and B.  MinIO
    // incurs exactly 2 (capacity) misses per epoch; the page cache 2–4.
    let mut minio = MinIoCache::new(2);
    // Warm-up epoch: D and B get cached, C and A are capacity misses.
    for item in [3u64, 1, 2, 0] {
        minio.access(item, 1);
    }
    assert!(minio.contains(&3) && minio.contains(&1));
    for epoch_order in [[2u64, 1, 0, 3], [0, 3, 2, 1]] {
        minio.reset_stats();
        for item in epoch_order {
            minio.access(item, 1);
        }
        assert_eq!(
            minio.stats().misses,
            2,
            "exactly the two uncached items miss"
        );
        assert_eq!(minio.stats().hits, 2);
    }
}

#[test]
fn single_server_simulation_matches_table6_ordering() {
    // Table 6 (ShuffleNet on OpenImages, 65 % cache): cache-miss ratio and
    // disk I/O are ordered DALI-seq > DALI-shuffle > CoorDL, with CoorDL at
    // the capacity-miss floor of 35 %.
    let dataset = DatasetSpec::openimages_extended().scaled(128);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::ShuffleNetV2;
    let run = |loader: LoaderConfig| {
        let job = JobSpec::new(model, dataset.clone(), 8, loader);
        Experiment::on(&server)
            .job(job)
            .epochs(3)
            .run()
            .steady_state()
    };
    let seq = run(LoaderConfig::dali_seq(PrepBackend::DaliGpu));
    let shuffle = run(LoaderConfig::dali_shuffle(PrepBackend::DaliGpu));
    let coordl = run(LoaderConfig::coordl(PrepBackend::DaliGpu));

    assert!(seq.miss_ratio() >= shuffle.miss_ratio());
    assert!(shuffle.miss_ratio() > coordl.miss_ratio());
    assert!(
        (coordl.miss_ratio() - 0.35).abs() < 0.03,
        "CoorDL misses should sit at the 35% capacity floor, got {:.2}",
        coordl.miss_ratio()
    );
    assert!(seq.bytes_from_disk >= shuffle.bytes_from_disk);
    assert!(shuffle.bytes_from_disk > coordl.bytes_from_disk);
}

#[test]
fn minio_needs_no_bookkeeping_and_never_evicts() {
    // §4.1: items, once cached, are never replaced; eviction count stays zero.
    let mut cache = MinIoCache::new(1_000);
    for item in 0..10_000u64 {
        cache.access(item, 100);
    }
    assert_eq!(cache.stats().evictions, 0, "MinIO never evicts");
    assert_eq!(cache.len(), 10, "only the first 10 items fit");
    for item in 0..10u64 {
        assert!(cache.contains(&item), "early items stay resident forever");
    }
}

#[test]
fn dcache_minio_policy_pins_the_runtime_minio_byte_cache_behaviour() {
    // Satellite invariant: `dcache`'s MinIO policy (used by the simulator's
    // `storage::StorageNode`) and the runtime's `coordl::MinIoByteCache` are
    // two implementations of §4.1's one policy.  Driving both with the same
    // variable-size access trace must produce identical hit/miss counts,
    // identical residency (byte-for-byte AND item-for-item) and identical
    // steady-state arithmetic — this is what makes `dstool validate`'s
    // predicted-vs-empirical comparison meaningful.
    use datastalls::coordl::MinIoByteCache;
    use std::sync::Arc;

    let spec = DatasetSpec::new("parity", 500, 2048, 0.4, 4.0);
    let capacity = spec.cache_bytes_for_fraction(0.45);
    let mut policy = MinIoCache::new(capacity);
    let byte_cache = MinIoByteCache::new(capacity);
    let sampler = EpochSampler::new(spec.num_items, 123);

    for epoch in 0..3u64 {
        for item in sampler.permutation(epoch) {
            let size = spec.item_size(item);
            policy.access(item, size);
            if byte_cache.get(item).is_none() {
                byte_cache.insert(item, Arc::new(vec![0u8; size as usize]));
            }
        }
    }

    assert_eq!(policy.stats().hits, byte_cache.hits(), "hit counts");
    assert_eq!(policy.stats().misses, byte_cache.misses(), "miss counts");
    assert_eq!(policy.used_bytes(), byte_cache.used_bytes(), "residency");
    assert_eq!(policy.len(), byte_cache.len(), "resident item counts");
    for item in 0..spec.num_items {
        assert_eq!(
            policy.contains(&item),
            byte_cache.contains(item),
            "resident sets must be identical (item {item})"
        );
    }
    // Steady state: both sides deliver exactly `len()` hits per epoch.
    let resident = policy.len() as u64;
    policy.reset_stats();
    let hits_before = byte_cache.hits();
    for item in sampler.permutation(9) {
        let size = spec.item_size(item);
        policy.access(item, size);
        if byte_cache.get(item).is_none() {
            byte_cache.insert(item, Arc::new(vec![0u8; size as usize]));
        }
    }
    assert_eq!(policy.stats().hits, resident);
    assert_eq!(byte_cache.hits() - hits_before, resident);
}
