//! The sharded fetch pool's determinism contract (`fetch_threads > 1`),
//! pinned for every session mode: the pool may change *which thread*
//! executes a cache transaction, never *what* a consumer observes.
//!
//! Every compared point pins the same `fetch_shards` count, because the
//! shard count is part of the cache geometry: per-shard capacities and
//! eviction decisions depend on it, so only equal-shard sessions promise
//! equal counters.  Under that pin, for any `(fetch_threads, workers,
//! prefetch_depth, policy, mode)` shape the delivered stream, the five
//! deterministic `LoaderStats` counters and the cache hit/miss counts are
//! bit-identical to the serial (`fetch_threads = 1`) sweep.  A second
//! property crosses the pool with seeded [`FaultPlan`] schedules and checks
//! that the `partitioned_chaos` invariants — exactly-once shard delivery, a
//! directory that never routes to a dead owner, and a fault-independent
//! delivered stream — survive any pool width.
//!
//! Case counts honour `PROPTEST_CASES`, like the chaos suite.

use datastalls::cache::{shard_of_key, PolicyKind};
use datastalls::coordl::{FaultPlan, Mode, Session, SessionConfig};
use datastalls::dataset::EpochSampler;
use datastalls::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 61;
const EPOCHS: u64 = 2;
const CHAOS_EPOCHS: u64 = 3;

/// Shard count pinned on every compared point (including the serial
/// reference, which would otherwise default to the 1-shard legacy tier).
const SHARDS: usize = 8;

/// Proptest case count: `PROPTEST_CASES` if set, the default otherwise.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn store(items: u64, avg: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("fetch-equiv", items, avg, 0.25, 4.0),
        29,
    ))
}

fn pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, 3)
}

/// FNV-1a over the delivered stream, the same digest the bench presets use.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
}

fn digest_samples(digest: &mut Fnv, mb: &coordl::Minibatch) {
    digest.u64(mb.epoch);
    digest.u64(mb.index as u64);
    for s in &mb.samples {
        digest.u64(s.item);
        digest.u64(s.augmentation_seed);
        digest.bytes(&s.data);
    }
}

/// Everything a consumer can observe from a run: the per-job stream
/// digests (epochs concatenated), the five deterministic `LoaderStats`
/// counters and the cache hit/miss counts.
#[derive(Debug, PartialEq)]
struct Observed {
    stream_digests: Vec<u64>,
    counters: (u64, u64, u64, u64, u64),
    cache_hits: u64,
    cache_misses: u64,
}

#[allow(clippy::too_many_arguments)]
fn build_session(
    source: Arc<dyn DataSource>,
    mode: Mode,
    policy: PolicyKind,
    fetch_threads: usize,
    workers: usize,
    depth: usize,
    batch: usize,
    seed: u64,
    cache_capacity_bytes: u64,
) -> Session {
    Session::builder(
        source,
        SessionConfig {
            batch_size: batch,
            seed,
            cache_capacity_bytes,
            staging_window: 8,
            take_timeout: Duration::from_secs(20),
            ..SessionConfig::default()
        },
    )
    .mode(mode)
    .workers(workers)
    .prefetch_depth(depth)
    .fetch_threads(fetch_threads)
    .fetch_shards(SHARDS)
    .cache_policy(policy)
    .pipeline(pipeline())
    .build()
    .expect("valid fetch-pool session")
}

/// Drive every epoch and return what the consumers observed.  Coordinated
/// jobs consume concurrently (as in production); single and partitioned
/// streams are drained in job/node order, the deterministic drive
/// `dstool validate` also uses.
fn run_observed(session: &Session, epochs: u64) -> Observed {
    let jobs = session.num_jobs();
    let mut digests: Vec<Fnv> = (0..jobs).map(|_| Fnv::new()).collect();
    for epoch in 0..epochs {
        let run = session.epoch(epoch);
        match session.mode() {
            Mode::Coordinated { .. } => {
                let handles: Vec<_> = (0..jobs)
                    .map(|j| {
                        let stream = run.stream(j);
                        std::thread::spawn(move || {
                            stream
                                .map(|b| b.expect("epoch completes"))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for (j, h) in handles.into_iter().enumerate() {
                    for mb in h.join().expect("consumer") {
                        digest_samples(&mut digests[j], &mb);
                    }
                }
            }
            _ => {
                for (j, digest) in digests.iter_mut().enumerate() {
                    for b in run.stream(j) {
                        digest_samples(digest, &b.expect("epoch completes"));
                    }
                }
            }
        }
    }
    let stats = session.stats();
    let (cache_hits, cache_misses) = match session.cache_tier() {
        Some(tier) => (tier.hits(), tier.misses()),
        None => {
            let agg = session
                .partitioned_cluster()
                .expect("tierless sessions are partitioned")
                .aggregate_stats();
            (agg.local_hits + agg.remote_hits, agg.storage_reads)
        }
    };
    Observed {
        stream_digests: digests.into_iter().map(|d| d.0).collect(),
        counters: (
            stats.bytes_from_storage(),
            stats.bytes_from_cache(),
            stats.bytes_from_remote(),
            stats.samples_prepared(),
            stats.samples_delivered(),
        ),
        cache_hits,
        cache_misses,
    }
}

fn run_point(mode: Mode, policy: PolicyKind, fetch_threads: usize) -> Observed {
    // Half-dataset capacity keeps evictions live every epoch, so any
    // per-shard transaction reordering would show up in the counters.
    let items = 180u64;
    let source = store(items, 512);
    let total_bytes: u64 = (0..items).map(|i| source.item_bytes(i)).sum();
    let session = build_session(
        source,
        mode,
        policy,
        fetch_threads,
        2,
        4,
        16,
        SEED,
        total_bytes / 2,
    );
    run_observed(&session, EPOCHS)
}

fn assert_pool_invariant(mode: Mode, policy: PolicyKind) {
    let reference = run_point(mode, policy, 1);
    assert!(
        reference.counters.4 > 0,
        "{mode:?}/{policy:?}: reference run delivered nothing"
    );
    for fetch_threads in [2usize, 4] {
        let observed = run_point(mode, policy, fetch_threads);
        if matches!(mode, Mode::Partitioned { .. }) {
            // Partitioned nodes admit through the cluster directory, whose
            // peer-vs-storage routing is sensitive to cross-node fetch
            // interleaving; the stream and delivery totals are still exact.
            assert_eq!(
                observed.stream_digests, reference.stream_digests,
                "{mode:?}/{policy:?}: fetch_threads={fetch_threads} changed the stream"
            );
            assert_eq!(observed.counters.4, reference.counters.4, "delivery total");
        } else {
            assert_eq!(
                observed, reference,
                "{mode:?}/{policy:?}: fetch_threads={fetch_threads} diverged from \
                 the serial reference"
            );
        }
    }
}

#[test]
fn single_mode_is_bit_identical_across_fetch_thread_counts() {
    assert_pool_invariant(Mode::Single, PolicyKind::MinIo);
    assert_pool_invariant(Mode::Single, PolicyKind::Lru);
}

#[test]
fn coordinated_mode_is_bit_identical_across_fetch_thread_counts() {
    assert_pool_invariant(Mode::Coordinated { jobs: 3 }, PolicyKind::MinIo);
    assert_pool_invariant(Mode::Coordinated { jobs: 3 }, PolicyKind::Lru);
}

#[test]
fn partitioned_mode_streams_are_invariant_to_the_pool_width() {
    assert_pool_invariant(Mode::Partitioned { nodes: 2 }, PolicyKind::MinIo);
    assert_pool_invariant(Mode::Partitioned { nodes: 2 }, PolicyKind::Lru);
}

#[test]
fn every_pool_thread_owns_work_and_reports_its_own_seconds() {
    let fetch_threads = 4usize;
    let items = 200u64;
    let source = store(items, 256);
    let session = build_session(
        Arc::clone(&source),
        Mode::Single,
        PolicyKind::MinIo,
        fetch_threads,
        1,
        4,
        16,
        SEED,
        64 << 20,
    );
    let observed = run_observed(&session, EPOCHS);
    assert_eq!(observed.counters.4, EPOCHS * items);

    // With 200 items over 8 shards every pool slot owns a non-empty key
    // set (the store is deterministic, so this is a fixed fact, not a
    // probabilistic one), and the per-slot report rows must show it.
    let report = session.report();
    assert_eq!(report.fetch_thread_busy_seconds.len(), fetch_threads);
    assert_eq!(report.fetch_thread_stall_seconds.len(), fetch_threads);
    let mut owned = vec![0u64; fetch_threads];
    for item in 0..items {
        owned[shard_of_key(item, SHARDS) % fetch_threads] += 1;
    }
    for (slot, count) in owned.iter().enumerate() {
        assert!(*count > 0, "pool slot {slot} owns no keys");
        assert!(
            report.fetch_thread_busy_seconds[slot] > 0.0,
            "pool slot {slot} owns {count} keys but recorded no busy time"
        );
    }
    assert_eq!(
        owned.iter().sum::<u64>(),
        items,
        "ownership partitions keys"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Key ownership is a partition for any `(items, fetch_threads,
    /// fetch_shards)` shape: every key of an epoch permutation is owned by
    /// exactly one pool slot, every slot index is valid, and the union of
    /// the slots' key sets is the epoch plan — the exactly-once half of
    /// the pool contract, checked against the same `shard_of_key` routing
    /// the executor uses.
    #[test]
    fn shard_ownership_partitions_every_epoch_plan(
        items in 1u64..2048,
        fetch_threads in 1usize..=8,
        extra_shards in 0usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let shards = fetch_threads + extra_shards;
        let plan = EpochSampler::new(items, seed).permutation(0);
        let mut per_slot: Vec<HashSet<u64>> =
            (0..fetch_threads).map(|_| HashSet::new()).collect();
        for &item in &plan {
            let slot = shard_of_key(item, shards) % fetch_threads;
            prop_assert!(slot < fetch_threads);
            prop_assert!(
                per_slot[slot].insert(item),
                "slot {} saw item {} twice", slot, item
            );
            for (other, set) in per_slot.iter().enumerate() {
                if other != slot {
                    prop_assert!(
                        !set.contains(&item),
                        "item {} owned by both slot {} and slot {}",
                        item, slot, other
                    );
                }
            }
        }
        let union: u64 = per_slot.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(union, items, "the slots cover the plan exactly");
    }

    /// The full equivalence property: arbitrary executor shapes — batch
    /// size, prep workers, prefetch depth, pool width, job mix, policy —
    /// deliver the serial session's streams bit-for-bit with equal
    /// counters, under the pinned shard count.
    #[test]
    fn any_pool_shape_matches_the_serial_session_bit_for_bit(
        items in 1u64..200,
        batch in 1usize..32,
        workers in 1usize..5,
        depth in 1usize..5,
        fetch_threads in 2usize..=4,
        jobs in 1usize..4,
        seed in 0u64..u64::MAX,
        mode_sel in 0usize..2,
        policy in prop_oneof![Just(PolicyKind::MinIo), Just(PolicyKind::Lru)],
    ) {
        let mode = match mode_sel {
            0 => Mode::Single,
            _ => Mode::Coordinated { jobs },
        };
        let source = store(items, 96);
        let total_bytes: u64 = (0..items).map(|i| source.item_bytes(i)).sum();
        let observe = |f: usize| {
            let session = build_session(
                Arc::clone(&source),
                mode,
                policy,
                f,
                workers,
                depth,
                batch,
                seed,
                (total_bytes / 2).max(1),
            );
            run_observed(&session, EPOCHS)
        };
        let reference = observe(1);
        prop_assert_eq!(
            observe(fetch_threads), reference,
            "fetch_threads={} diverged under {:?}/{:?} workers={} depth={} batch={}",
            fetch_threads, mode, policy, workers, depth, batch
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Chaos cross: seeded fault schedules compose with the fetch pool.
    /// For any pool width, every node still delivers exactly its epoch
    /// shard, the directory never routes to a dead owner, the aggregate
    /// delivery count is exact, and the delivered stream is bit-identical
    /// to the serial session replaying the same schedule — faults fire on
    /// the fetch-count clock, which any pool width ticks the same number
    /// of times.
    #[test]
    fn fault_schedules_compose_with_the_fetch_pool(
        nodes in 2usize..=3,
        faults in 1usize..=3,
        fault_seed in 0u64..0x1_0000,
        stream_seed in 0u64..0x1_0000,
        fetch_threads in 2usize..=4,
        policy in prop_oneof![Just(PolicyKind::MinIo), Just(PolicyKind::Lru)],
    ) {
        let items = 64u64;
        let spec = DatasetSpec::new("fetch-chaos", items, 256, 0.2, 4.0);
        let build = |f: usize| {
            let store: Arc<dyn DataSource> =
                Arc::new(SyntheticItemStore::new(spec.clone(), 5));
            Session::builder(
                store,
                SessionConfig {
                    batch_size: 8,
                    seed: stream_seed,
                    cache_capacity_bytes: spec.total_bytes() * 65 / 100,
                    ..SessionConfig::default()
                },
            )
            .mode(Mode::Partitioned { nodes })
            .cache_policy(policy)
            .fetch_threads(f)
            .fetch_shards(SHARDS)
            .fault_plan(FaultPlan::seeded(
                nodes,
                CHAOS_EPOCHS,
                faults,
                fault_seed,
                items,
            ))
            .build()
            .expect("valid chaos pool session")
        };

        let session = build(fetch_threads);
        let sampler = EpochSampler::new(items, stream_seed);
        let cluster = session.partitioned_cluster().expect("partitioned mode");
        let mut node_digests: Vec<Fnv> = (0..nodes).map(|_| Fnv::new()).collect();
        for epoch in 0..CHAOS_EPOCHS {
            let run = session.epoch(epoch);
            for (node, digest) in node_digests.iter_mut().enumerate() {
                let mut delivered: Vec<u64> = Vec::new();
                for batch in run.stream(node) {
                    let mb = batch.expect("a fault never fails a consumer");
                    delivered.extend(mb.samples.iter().map(|s| s.item));
                    digest_samples(digest, &mb);
                }
                let mut shard = sampler.distributed_shard(epoch, node, nodes);
                delivered.sort_unstable();
                shard.sort_unstable();
                prop_assert_eq!(
                    delivered, shard,
                    "epoch {} node {}: stream must equal its shard exactly",
                    epoch, node
                );
            }
            for (item, owner) in cluster.directory_snapshot() {
                prop_assert!(
                    cluster.is_alive(owner),
                    "epoch {}: item {} registered to dead node {}",
                    epoch, item, owner
                );
            }
        }
        prop_assert_eq!(
            session.stats().samples_delivered(),
            CHAOS_EPOCHS * items,
            "aggregate delivery is exact across faults and pool threads"
        );

        // The serial replay of the identical schedule delivers the same
        // bytes: the pool changes cache routing races, never content.
        // `run_observed` digests node streams the same per-node way.
        let serial = build(1);
        let observed = run_observed(&serial, CHAOS_EPOCHS);
        prop_assert_eq!(
            node_digests.into_iter().map(|d| d.0).collect::<Vec<_>>(),
            observed.stream_digests,
            "pool width {} changed the delivered bytes under fault seed {}",
            fetch_threads, fault_seed
        );
    }
}
