//! End-to-end checks of the paper's headline claims, at the shape level:
//! who wins, by roughly what factor, and where the crossovers fall.
//!
//! Exact factors depend on the authors' testbed; these tests assert the
//! qualitative result plus generous quantitative brackets, so they stay
//! meaningful without over-fitting the simulator's calibration.

use datastalls::analyzer::{Bottleneck, DifferentialReport, ProfiledRates, WhatIfAnalysis};
use datastalls::prelude::*;

const EPOCHS: u64 = 3;

fn ssd_server(ds: &DatasetSpec, frac: f64) -> ServerConfig {
    ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), frac)
}

fn hdd_server(ds: &DatasetSpec, frac: f64) -> ServerConfig {
    ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), frac)
}

#[test]
fn many_models_have_fetch_stalls_with_a_35_percent_cache() {
    // Figure 2: with 35 % of the dataset cached on Config-SSD-V100, DNNs
    // spend 10–70 % of epoch time blocked on I/O.
    let dataset = DatasetSpec::openimages_extended().scaled(128);
    let server = ssd_server(&dataset, 0.35);
    let mut stalled_models = 0;
    for model in [
        ModelKind::ShuffleNetV2,
        ModelKind::AlexNet,
        ModelKind::ResNet18,
        ModelKind::MobileNetV2,
        ModelKind::ResNet50,
    ] {
        let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
        let stall = Experiment::on(&server)
            .job(job)
            .epochs(EPOCHS)
            .run()
            .steady_state()
            .fetch_stall_fraction();
        assert!(
            stall < 0.85,
            "{}: fetch stall {stall:.2} is implausibly high",
            model.name()
        );
        if stall > 0.10 {
            stalled_models += 1;
        }
    }
    assert!(
        stalled_models >= 4,
        "most models should show >10% fetch stalls, only {stalled_models} did"
    );
}

#[test]
fn computationally_light_models_have_prep_stalls_even_when_fully_cached() {
    // Figure 6: with the dataset in memory and 3 cores/GPU, light models
    // (ResNet18, AlexNet, ShuffleNet) spend a large share of the epoch on
    // prep stalls, while heavy models (ResNet50, VGG11) are mostly GPU bound.
    // ResNet50 and ResNet18 train on ImageNet-1k (Table 1).
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 1.1);
    let prep_stall = |model: ModelKind| {
        let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
        Experiment::on(&server)
            .job(job)
            .epochs(EPOCHS)
            .run()
            .steady_state()
            .prep_stall_fraction()
    };
    let light = prep_stall(ModelKind::ResNet18);
    let heavy = prep_stall(ModelKind::ResNet50);
    assert!(
        light > 0.25,
        "ResNet18 should show substantial prep stalls, got {light:.2}"
    );
    assert!(
        heavy < 0.20,
        "ResNet50 should be mostly GPU bound, got {heavy:.2}"
    );
    assert!(light > heavy);
}

#[test]
fn dnns_need_three_to_twentyfour_cores_per_gpu() {
    // Figure 4 / §3.3.2: ResNet50 needs only 3–4 cores per GPU; ResNet18
    // needs 12–24.  We ask DS-Analyzer's what-if model for the requirement.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 1.1);
    let cores_needed = |model: ModelKind| {
        let job = JobSpec::new(
            model,
            dataset.clone(),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        let rates = ProfiledRates::measure(&server, &job);
        WhatIfAnalysis::new(rates).recommended_cores_per_gpu(server.cpu_cores, 8)
    };
    let heavy = cores_needed(ModelKind::ResNet50);
    let light = cores_needed(ModelKind::ResNet18);
    assert!(
        (1.0..=6.0).contains(&heavy),
        "ResNet50 needs ~3-4 cores/GPU, got {heavy:.1}"
    );
    assert!(
        (8.0..=30.0).contains(&light),
        "ResNet18 needs 12-24 cores/GPU, got {light:.1}"
    );
}

#[test]
fn hp_search_without_coordination_amplifies_reads_roughly_sevenfold() {
    // §3.3.1: eight uncoordinated single-GPU jobs with a 35 % cache read ~7×
    // the dataset per epoch; coordinated prep brings that to ≤1×.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 0.35);
    let jobs = |loader: LoaderConfig| -> Vec<JobSpec> {
        (0..8)
            .map(|j| {
                JobSpec::new(ModelKind::ResNet18, dataset.clone(), 1, loader.clone())
                    .with_seed(j as u64)
            })
            .collect()
    };
    let hp = |loader: LoaderConfig| {
        Experiment::on(&server)
            .jobs(jobs(loader))
            .scenario(Scenario::HpSearch { jobs: 8 })
            .epochs(EPOCHS)
            .run()
    };
    let dali = hp(LoaderConfig::dali_best(ModelKind::ResNet18));
    let coordl = hp(LoaderConfig::coordl_best(ModelKind::ResNet18));
    let dali_amp = dali.read_amplification(dataset.total_bytes(), 1);
    let coordl_amp = coordl.read_amplification(dataset.total_bytes(), 1);
    assert!(
        dali_amp > 3.0 && dali_amp < 8.5,
        "uncoordinated HP search should amplify reads several-fold, got {dali_amp:.2}"
    );
    assert!(
        coordl_amp <= 1.0 + 1e-9,
        "coordinated prep reads at most one dataset per epoch, got {coordl_amp:.2}"
    );
    let speedup = coordl.speedup_over(&dali);
    assert!(
        speedup > 1.5 && speedup < 8.0,
        "HP-search speedup should be large but bounded (paper: up to 5.7x), got {speedup:.2}"
    );
}

#[test]
fn single_server_speedup_is_modest_and_never_a_slowdown() {
    // §5.1: MinIO alone buys up to ~2x on a single server.
    let dataset = DatasetSpec::openimages_extended().scaled(128);
    for (server, frac) in [
        (ssd_server(&dataset, 0.65), 0.65),
        (hdd_server(&dataset, 0.65), 0.65),
    ] {
        let _ = frac;
        for model in [ModelKind::ShuffleNetV2, ModelKind::ResNet50] {
            let dali = Experiment::on(&server)
                .job(JobSpec::new(
                    model,
                    dataset.clone(),
                    8,
                    LoaderConfig::dali_best(model),
                ))
                .epochs(EPOCHS)
                .run();
            let coordl = Experiment::on(&server)
                .job(JobSpec::new(
                    model,
                    dataset.clone(),
                    8,
                    LoaderConfig::coordl_best(model),
                ))
                .epochs(EPOCHS)
                .run();
            let speedup = coordl.speedup_over(&dali);
            assert!(
                (1.0..3.5).contains(&speedup),
                "{} on {}: single-server speedup {speedup:.2} outside the plausible band",
                model.name(),
                server.name
            );
        }
    }
}

#[test]
fn distributed_training_on_hard_drives_sees_the_largest_wins() {
    // §5.2: partitioned caching helps most where a cache miss is most
    // expensive — hard drives.  AlexNet across two HDD servers is the 15x
    // headline; on SSDs the win is much smaller.
    let dataset = DatasetSpec::openimages_extended().scaled(64);
    let model = ModelKind::AlexNet;
    let speedup = |server: &ServerConfig| {
        let dali = Experiment::on(server)
            .job(JobSpec::new(
                model,
                dataset.clone(),
                8,
                LoaderConfig::dali_best(model),
            ))
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(EPOCHS)
            .run();
        let coordl = Experiment::on(server)
            .job(JobSpec::new(
                model,
                dataset.clone(),
                8,
                LoaderConfig::coordl_best(model),
            ))
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(EPOCHS)
            .run();
        coordl.speedup_over(&dali)
    };
    let hdd = speedup(&hdd_server(&dataset, 0.65));
    let ssd = speedup(&ssd_server(&dataset, 0.65));
    assert!(
        hdd > 5.0,
        "HDD distributed speedup should be an order of magnitude, got {hdd:.1}"
    );
    assert!(
        ssd < hdd,
        "SSD speedup ({ssd:.1}) must be smaller than HDD ({hdd:.1})"
    );
    assert!(ssd >= 1.0, "CoorDL never slows distributed training down");
}

#[test]
fn gpu_bound_language_models_show_no_data_stalls() {
    // §1 limitation / §3.1: BERT-Large and GNMT are GPU bound in this
    // environment, so CoorDL has little to offer them.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 0.35);
    let job = JobSpec::new(
        ModelKind::BertLarge,
        dataset.clone(),
        8,
        LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
    );
    let report = DifferentialReport::run(&server, &job, EPOCHS);
    assert!(
        report.data_stall_fraction() < 0.10,
        "BERT-Large should be GPU bound, stalls = {:.2}",
        report.data_stall_fraction()
    );
}

#[test]
fn dsanalyzer_predictions_match_simulation_within_a_few_percent() {
    // Table 5 / §3.4: predictions within 4 % of empirical.  We allow 6 % to
    // absorb pipeline ramp-up effects on the scaled dataset.
    let dataset = DatasetSpec::imagenet_1k().scaled(16);
    let model = ModelKind::AlexNet;
    let probe_server = ssd_server(&dataset, 0.35);
    let probe_job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&probe_server, &probe_job));

    let minio_job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::coordl_best(model));
    for frac in [0.25, 0.35, 0.50] {
        let predicted = whatif.predicted_speed(frac);
        let empirical = Experiment::on(&ssd_server(&dataset, frac))
            .job(minio_job.clone())
            .epochs(EPOCHS)
            .run()
            .steady_samples_per_sec();
        let err = (predicted - empirical).abs() / empirical;
        assert!(
            err < 0.06,
            "prediction at {frac}: {predicted:.0} vs {empirical:.0} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn whatif_bottleneck_crossover_matches_figure16() {
    // Figure 16: AlexNet on Config-SSD-V100 flips from I/O bound to CPU bound
    // at a bit over half the dataset cached; more DRAM beyond that is wasted.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 0.35);
    let job = JobSpec::new(
        ModelKind::AlexNet,
        dataset,
        8,
        LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
    );
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&server, &job));
    assert_eq!(whatif.bottleneck(0.10), Bottleneck::Io);
    assert_ne!(whatif.bottleneck(1.00), Bottleneck::Io);
    let crossover = whatif.recommended_cache_fraction();
    assert!(
        (0.35..=0.80).contains(&crossover),
        "crossover should fall past a third of the dataset, got {crossover:.2}"
    );
    let at_crossover = whatif.predicted_speed(crossover);
    let at_full = whatif.predicted_speed(1.0);
    assert!(
        (at_full - at_crossover) / at_full < 0.02,
        "more DRAM beyond the crossover buys <2%"
    );
}

#[test]
fn faster_gpus_make_data_stalls_worse_not_better() {
    // Appendix B.3: as compute gets faster, stalls mask the benefit.
    let dataset = DatasetSpec::imagenet_1k().scaled(64);
    let server = ssd_server(&dataset, 0.35);
    let job = JobSpec::new(
        ModelKind::ResNet18,
        dataset,
        8,
        LoaderConfig::dali_best(ModelKind::ResNet18),
    );
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&server, &job));
    let now = whatif.predicted_speed(0.35);
    let with_2x_gpu = whatif.with_faster_gpu(2.0).predicted_speed(0.35);
    assert!(
        (with_2x_gpu - now).abs() / now < 0.01,
        "doubling GPU speed should not change a stall-bound job's throughput"
    );
}
