//! Equivalence of the unified `Experiment` API with the legacy `simulate_*`
//! entry points, plus behavioural tests for the new mixed-cluster scenario.
//!
//! One representative configuration per scenario, mirroring the paper's
//! headline figures: Figure 9a (single-server), Figure 9d (HP search) and
//! Figure 9b (distributed).  The legacy functions survive as deprecated
//! shims over `Experiment`, and these tests pin the contract that the new
//! path reproduces the legacy per-epoch metrics *bit-identically* — same
//! floats, same byte counts, same I/O timelines.

#![allow(deprecated)]

use datastalls::pipeline::{simulate_distributed, simulate_hp_search, simulate_single_server};
use datastalls::prelude::*;

const EPOCHS: u64 = 3;

/// Figure 9a shape: ResNet18 alone on Config-SSD-V100, OpenImages, 65 % cache.
#[test]
fn single_server_experiment_is_bit_identical_to_legacy() {
    let dataset = DatasetSpec::openimages_extended().scaled(256);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::ResNet18;
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model));

    let legacy = simulate_single_server(&server, &job, EPOCHS);
    let new = Experiment::on(&server)
        .job(job)
        .scenario(Scenario::SingleServer)
        .epochs(EPOCHS)
        .run();

    // `EpochMetrics` derives `PartialEq` over every field, including the f64
    // stall breakdown and the I/O timeline, so equality here is bitwise.
    assert_eq!(new.single().epochs, legacy.epochs);
    assert_eq!(
        new.disk_bytes_per_epoch,
        legacy
            .epochs
            .iter()
            .map(|e| e.bytes_from_disk)
            .collect::<Vec<_>>()
    );
}

/// Figure 9d shape: 8 single-GPU ResNet18 HP-search jobs, 35 % cache —
/// both the uncoordinated baseline and CoorDL's coordinated prep.
#[test]
fn hp_search_experiment_is_bit_identical_to_legacy() {
    let dataset = DatasetSpec::imagenet_1k().scaled(1000);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let model = ModelKind::ResNet18;
    for loader in [
        LoaderConfig::dali_best(model),
        LoaderConfig::coordl_best(model),
    ] {
        let jobs: Vec<JobSpec> = (0..8)
            .map(|j| {
                JobSpec::new(model, dataset.clone(), 1, loader.clone())
                    .with_seed(0xC0DE + j as u64)
                    .with_batch(64)
            })
            .collect();

        let legacy = simulate_hp_search(&server, &jobs, EPOCHS);
        let new = Experiment::on(&server)
            .jobs(jobs)
            .scenario(Scenario::HpSearch { jobs: 8 })
            .epochs(EPOCHS)
            .run();

        assert_eq!(new.num_units(), legacy.per_job.len());
        for (new_job, legacy_job) in new.per_job().iter().zip(&legacy.per_job) {
            assert_eq!(new_job.epochs, legacy_job.epochs);
        }
        assert_eq!(new.disk_bytes_per_epoch, legacy.disk_bytes_per_epoch);
    }
}

/// Figure 9b shape: AlexNet across two Config-HDD-1080Ti servers, 65 % cache
/// per server — both uncoordinated and with partitioned caching.
#[test]
fn distributed_experiment_is_bit_identical_to_legacy() {
    let dataset = DatasetSpec::openimages_extended().scaled(512);
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::AlexNet;
    for loader in [
        LoaderConfig::dali_best(model),
        LoaderConfig::coordl_best(model),
    ] {
        let job = JobSpec::new(model, dataset.clone(), 8, loader);

        let legacy = simulate_distributed(&server, &job, 2, EPOCHS);
        let new = Experiment::on(&server)
            .job(job)
            .scenario(Scenario::Distributed { servers: 2 })
            .epochs(EPOCHS)
            .run();

        assert_eq!(new.num_units(), legacy.per_server.len());
        for (new_srv, legacy_srv) in new.per_server().iter().zip(&legacy.per_server) {
            assert_eq!(new_srv.epochs, legacy_srv.epochs);
        }
        assert_eq!(new.remote_bytes_per_epoch, legacy.remote_bytes_per_epoch);
    }
}

/// The aggregate metrics of the unified report agree with the legacy result
/// types' derived metrics on the same runs.
#[test]
fn report_aggregates_match_legacy_aggregates() {
    let dataset = DatasetSpec::imagenet_1k().scaled(1000);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let model = ModelKind::AlexNet;
    let jobs: Vec<JobSpec> = (0..4)
        .map(|j| {
            JobSpec::new(model, dataset.clone(), 2, LoaderConfig::coordl_best(model))
                .with_seed(7 + j as u64)
                .with_batch(64)
        })
        .collect();

    let legacy = simulate_hp_search(&server, &jobs, EPOCHS);
    let new = Experiment::on(&server)
        .jobs(jobs)
        .scenario(Scenario::HpSearch { jobs: 4 })
        .epochs(EPOCHS)
        .run();

    assert_eq!(
        new.steady_per_job_samples_per_sec(),
        legacy.steady_per_job_samples_per_sec()
    );
    assert_eq!(new.steady_epoch_seconds(), legacy.steady_epoch_seconds());
    assert_eq!(new.total_disk_bytes(), legacy.total_disk_bytes());
    assert_eq!(
        new.read_amplification(dataset.total_bytes(), 1),
        legacy.read_amplification(dataset.total_bytes(), 1)
    );
}

/// Mixed cluster: two heterogeneous jobs (different models *and* datasets)
/// sharing one server contend for its cache, CPU and disk — each must be
/// slower than when it has the server to itself.
#[test]
fn mixed_cluster_jobs_contend_for_shared_resources() {
    let ds_images = DatasetSpec::imagenet_1k().scaled(1000);
    let ds_detect = DatasetSpec::openimages_extended().scaled(1000);
    // Cache holds only ~40 % of the combined working set, so sharing hurts.
    let cache = (ds_images.total_bytes() + ds_detect.total_bytes()) * 2 / 5;
    let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache);

    let job_a = JobSpec::new(
        ModelKind::ResNet18,
        ds_images,
        4,
        LoaderConfig::dali_best(ModelKind::ResNet18),
    )
    .with_batch(64);
    let job_b = JobSpec::new(
        ModelKind::SsdRes18,
        ds_detect,
        4,
        LoaderConfig::dali_best(ModelKind::SsdRes18),
    )
    .with_batch(64);

    let alone = |job: &JobSpec| {
        Experiment::on(&server)
            .job(job.clone())
            .epochs(EPOCHS)
            .run()
            .steady_state()
            .epoch_seconds()
    };
    let alone_a = alone(&job_a);
    let alone_b = alone(&job_b);

    let mixed = Experiment::on(&server)
        .jobs([job_a, job_b])
        .scenario(Scenario::MixedCluster)
        .epochs(EPOCHS)
        .run();
    assert_eq!(mixed.scenario, Scenario::MixedCluster);
    let mixed_a = mixed.per_job()[0].steady_state().epoch_seconds();
    let mixed_b = mixed.per_job()[1].steady_state().epoch_seconds();

    assert!(
        mixed_a > alone_a * 1.05,
        "job A should be slower sharing the server: {mixed_a:.2}s vs {alone_a:.2}s alone"
    );
    assert!(
        mixed_b > alone_b * 1.05,
        "job B should be slower sharing the server: {mixed_b:.2}s vs {alone_b:.2}s alone"
    );
}

/// The mixed cluster keeps heterogeneous datasets distinct in the shared
/// cache: total bytes delivered to each job equal its own dataset's size per
/// epoch, and the shared cache cannot hold both working sets.
#[test]
fn mixed_cluster_accounts_bytes_per_dataset() {
    let ds_a = DatasetSpec::imagenet_1k().scaled(2000);
    let ds_b = DatasetSpec::fma().scaled(400);
    let cache = (ds_a.total_bytes() + ds_b.total_bytes()) / 2;
    let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache);

    let report = Experiment::on(&server)
        .jobs([
            JobSpec::new(
                ModelKind::ResNet18,
                ds_a.clone(),
                4,
                LoaderConfig::coordl_best(ModelKind::ResNet18),
            )
            .with_batch(64),
            JobSpec::new(
                ModelKind::AudioM5,
                ds_b.clone(),
                4,
                LoaderConfig::coordl_best(ModelKind::AudioM5),
            ),
        ])
        .scenario(Scenario::MixedCluster)
        .epochs(2)
        .run();

    for (unit, ds) in report.per_job().iter().zip([&ds_a, &ds_b]) {
        for epoch in &unit.epochs {
            let delivered = epoch.bytes_from_cache + epoch.bytes_from_disk;
            let ratio = delivered as f64 / ds.total_bytes() as f64;
            assert!(
                (ratio - 1.0).abs() < 0.05,
                "each job sweeps its own dataset once per epoch, got {ratio:.3} for {}",
                ds.name
            );
        }
        // The shared cache is smaller than the combined working set, so
        // neither job can run fully cached after warm-up.
        assert!(unit.epochs[1].bytes_from_disk > 0);
    }
}
