//! Equivalence of the `CacheSpec` hierarchy with the pre-hierarchy cache
//! path, plus behavioural tests for the mixed-cluster scenario.
//!
//! Every storage node of an `Experiment` now runs a `dcache::TierChain`.
//! These tests pin the refactor's contract at the simulator level: the
//! default `CacheSpec::DramOnly` run — and a `CacheSpec::Tiered` run whose
//! SSD tier has zero capacity — reproduce the single-cache per-epoch metrics
//! *bit-identically* (same floats, same byte counts, same I/O timelines) in
//! every scenario shape.

use datastalls::pipeline::CacheSpec;
use datastalls::prelude::*;

const EPOCHS: u64 = 3;

/// Run one experiment twice — default cache spec vs a degenerate tiered
/// spec (SSD capacity 0) — and require bitwise-equal reports.
fn assert_degenerate_tier_equivalence(
    server: &ServerConfig,
    jobs: Vec<JobSpec>,
    scenario: Scenario,
) {
    let run = |cache: CacheSpec| {
        Experiment::on(server)
            .jobs(jobs.iter().cloned())
            .scenario(scenario)
            .cache(cache)
            .epochs(EPOCHS)
            .run()
    };
    let flat = run(CacheSpec::DramOnly);
    let degenerate = run(CacheSpec::Tiered {
        dram_bytes: server.dram_cache_bytes,
        ssd_bytes: 0,
    });
    // `SimReport` derives `PartialEq` over every field, including the f64
    // stall breakdowns and I/O timelines, so equality here is bitwise.
    assert_eq!(flat, degenerate);
    for unit in flat.per_job() {
        for epoch in &unit.epochs {
            assert_eq!(epoch.lower_tier_hits, 0);
            assert_eq!(epoch.bytes_from_lower_tiers, 0);
        }
    }
}

/// Figure 9a shape: ResNet18 alone on Config-SSD-V100, OpenImages, 65 % cache.
#[test]
fn single_server_chain_is_bit_identical_to_the_flat_cache() {
    let dataset = DatasetSpec::openimages_extended().scaled(256);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::ResNet18;
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model));
    assert_degenerate_tier_equivalence(&server, vec![job], Scenario::SingleServer);
}

/// Figure 9d shape: 8 single-GPU ResNet18 HP-search jobs, 35 % cache —
/// both the uncoordinated baseline and CoorDL's coordinated prep.
#[test]
fn hp_search_chain_is_bit_identical_to_the_flat_cache() {
    let dataset = DatasetSpec::imagenet_1k().scaled(1000);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let model = ModelKind::ResNet18;
    for loader in [
        LoaderConfig::dali_best(model),
        LoaderConfig::coordl_best(model),
    ] {
        let jobs: Vec<JobSpec> = (0..8)
            .map(|j| {
                JobSpec::new(model, dataset.clone(), 1, loader.clone())
                    .with_seed(0xC0DE + j as u64)
                    .with_batch(64)
            })
            .collect();
        assert_degenerate_tier_equivalence(&server, jobs, Scenario::HpSearch { jobs: 8 });
    }
}

/// Figure 9b shape: AlexNet across two Config-HDD-1080Ti servers, 65 % cache
/// per server — both uncoordinated and with partitioned caching.
#[test]
fn distributed_chain_is_bit_identical_to_the_flat_cache() {
    let dataset = DatasetSpec::openimages_extended().scaled(512);
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    let model = ModelKind::AlexNet;
    for loader in [
        LoaderConfig::dali_best(model),
        LoaderConfig::coordl_best(model),
    ] {
        let job = JobSpec::new(model, dataset.clone(), 8, loader);
        assert_degenerate_tier_equivalence(
            &server,
            vec![job],
            Scenario::Distributed { servers: 2 },
        );
    }
}

/// A real two-tier hierarchy in the distributed scenario: per-node DRAM+SSD
/// chains compose with partitioned caching, and the SSD tier absorbs reads
/// the flat configuration sent to the HDD.
#[test]
fn distributed_tiered_nodes_cut_disk_traffic() {
    let dataset = DatasetSpec::openimages_extended().scaled(512);
    // 35 % DRAM per node: two nodes cover only 70 % of the dataset, so the
    // uncoordinated baseline keeps hitting the HDD every epoch.
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.35);
    let model = ModelKind::AlexNet;
    let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
    let run = |cache: CacheSpec| {
        Experiment::on(&server)
            .job(job.clone())
            .scenario(Scenario::Distributed { servers: 2 })
            .cache(cache)
            .epochs(EPOCHS)
            .run()
    };
    let flat = run(CacheSpec::DramOnly);
    let tiered = run(CacheSpec::Tiered {
        dram_bytes: server.dram_cache_bytes,
        ssd_bytes: server.dram_cache_bytes,
    });
    let flat_disk: u64 = flat.disk_bytes_per_epoch[1..].iter().sum();
    let tiered_disk: u64 = tiered.disk_bytes_per_epoch[1..].iter().sum();
    assert!(
        tiered_disk < flat_disk,
        "SSD spill tier absorbs steady-state HDD reads: {tiered_disk} vs {flat_disk}"
    );
    let lower_hits: u64 = tiered
        .per_server()
        .iter()
        .flat_map(|unit| unit.epochs[1..].iter())
        .map(|e| e.lower_tier_hits)
        .sum();
    assert!(lower_hits > 0, "spill hits show up per server");
    assert!(
        tiered.steady_epoch_seconds() < flat.steady_epoch_seconds(),
        "530 MB/s SSD hits beat 15 MB/s HDD reads"
    );
}

/// Mixed cluster: two heterogeneous jobs (different models *and* datasets)
/// sharing one server contend for its cache, CPU and disk — each must be
/// slower than when it has the server to itself.
#[test]
fn mixed_cluster_jobs_contend_for_shared_resources() {
    let ds_images = DatasetSpec::imagenet_1k().scaled(1000);
    let ds_detect = DatasetSpec::openimages_extended().scaled(1000);
    // Cache holds only ~40 % of the combined working set, so sharing hurts.
    let cache = (ds_images.total_bytes() + ds_detect.total_bytes()) * 2 / 5;
    let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache);

    let job_a = JobSpec::new(
        ModelKind::ResNet18,
        ds_images,
        4,
        LoaderConfig::dali_best(ModelKind::ResNet18),
    )
    .with_batch(64);
    let job_b = JobSpec::new(
        ModelKind::SsdRes18,
        ds_detect,
        4,
        LoaderConfig::dali_best(ModelKind::SsdRes18),
    )
    .with_batch(64);

    let alone = |job: &JobSpec| {
        Experiment::on(&server)
            .job(job.clone())
            .epochs(EPOCHS)
            .run()
            .steady_state()
            .epoch_seconds()
    };
    let alone_a = alone(&job_a);
    let alone_b = alone(&job_b);

    let mixed = Experiment::on(&server)
        .jobs([job_a, job_b])
        .scenario(Scenario::MixedCluster)
        .epochs(EPOCHS)
        .run();
    assert_eq!(mixed.scenario, Scenario::MixedCluster);
    let mixed_a = mixed.per_job()[0].steady_state().epoch_seconds();
    let mixed_b = mixed.per_job()[1].steady_state().epoch_seconds();

    assert!(
        mixed_a > alone_a * 1.05,
        "job A should be slower sharing the server: {mixed_a:.2}s vs {alone_a:.2}s alone"
    );
    assert!(
        mixed_b > alone_b * 1.05,
        "job B should be slower sharing the server: {mixed_b:.2}s vs {alone_b:.2}s alone"
    );
}

/// The mixed cluster keeps heterogeneous datasets distinct in the shared
/// cache: total bytes delivered to each job equal its own dataset's size per
/// epoch, and the shared cache cannot hold both working sets.
#[test]
fn mixed_cluster_accounts_bytes_per_dataset() {
    let ds_a = DatasetSpec::imagenet_1k().scaled(2000);
    let ds_b = DatasetSpec::fma().scaled(400);
    let cache = (ds_a.total_bytes() + ds_b.total_bytes()) / 2;
    let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache);

    let report = Experiment::on(&server)
        .jobs([
            JobSpec::new(
                ModelKind::ResNet18,
                ds_a.clone(),
                4,
                LoaderConfig::coordl_best(ModelKind::ResNet18),
            )
            .with_batch(64),
            JobSpec::new(
                ModelKind::AudioM5,
                ds_b.clone(),
                4,
                LoaderConfig::coordl_best(ModelKind::AudioM5),
            ),
        ])
        .scenario(Scenario::MixedCluster)
        .epochs(2)
        .run();

    for (unit, ds) in report.per_job().iter().zip([&ds_a, &ds_b]) {
        for epoch in &unit.epochs {
            let delivered = epoch.bytes_from_cache + epoch.bytes_from_disk;
            let ratio = delivered as f64 / ds.total_bytes() as f64;
            assert!(
                (ratio - 1.0).abs() < 0.05,
                "each job sweeps its own dataset once per epoch, got {ratio:.3} for {}",
                ds.name
            );
        }
        // The shared cache is smaller than the combined working set, so
        // neither job can run fully cached after warm-up.
        assert!(unit.epochs[1].bytes_from_disk > 0);
    }
}
