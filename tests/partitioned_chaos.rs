//! Chaos property suite for the fault-injection layer (§5.2 under churn).
//!
//! The contract under test: a seeded [`FaultPlan`] may kill, gracefully
//! drain or rejoin cache nodes at arbitrary epoch boundaries, and through
//! all of it a partitioned [`Session`]'s consumers observe *exactly* their
//! epoch shards — no sample lost, none duplicated — while the cluster
//! directory never routes an item to a dead owner.  The properties hold for
//! any fault seed, any cache policy and any prep worker count; the worker
//! count additionally leaves the delivered byte stream bit-identical, so
//! the fault-step axis (one tick per cluster fetch) is deterministic.
//!
//! Case counts honour the `PROPTEST_CASES` environment variable so the CI
//! chaos leg can run an extended sweep without code changes.

use datastalls::coordl::{FaultPlan, Mode, Session, SessionConfig};
use datastalls::dataset::EpochSampler;
use datastalls::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const EPOCHS: u64 = 3;

/// Proptest case count: `PROPTEST_CASES` if set (the CI extended leg boosts
/// it), the given default otherwise.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a over the delivered stream, the same digest the bench presets use.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
}

fn chaos_session(
    items: u64,
    nodes: usize,
    policy: PolicyKind,
    workers: usize,
    seed: u64,
    plan: FaultPlan,
) -> (Arc<dyn DataSource>, Session) {
    let spec = DatasetSpec::new("chaos-prop", items, 256, 0.2, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 5));
    let session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            batch_size: 8,
            num_workers: workers,
            seed,
            // 65 % of the dataset per node, as in the bench chaos preset.
            cache_capacity_bytes: spec.total_bytes() * 65 / 100,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes })
    .cache_policy(policy)
    .fault_plan(plan)
    .build()
    .expect("valid chaos session");
    (store, session)
}

/// Drive every epoch one node stream at a time (cluster fetches stay
/// sequential, so the fault clock ticks in a worker-count-independent
/// order) and return the FNV digest of the delivered stream.
fn drive_and_digest(session: &Session, nodes: usize) -> u64 {
    let mut digest = Fnv::new();
    for epoch in 0..EPOCHS {
        let run = session.epoch(epoch);
        for node in 0..nodes {
            for batch in run.stream(node) {
                let mb = batch.expect("a fault never fails a consumer");
                digest.u64(mb.epoch);
                digest.u64(mb.index as u64);
                for s in &mb.samples {
                    digest.u64(s.item);
                    digest.u64(s.augmentation_seed);
                    digest.bytes(&s.data);
                }
            }
        }
    }
    digest.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Exactly-once delivery under arbitrary seeded fault schedules: every
    /// node's stream yields precisely its epoch shard (same items, same
    /// count) no matter which nodes die, drain or rejoin mid-epoch; the
    /// directory never points at a dead owner; and draining every surviving
    /// node at the end leaves an empty hierarchy.
    #[test]
    fn any_fault_schedule_preserves_exactly_once_delivery(
        nodes in 2usize..=4,
        faults in 1usize..=4,
        fault_seed in 0u64..0x1_0000,
        stream_seed in 0u64..0x1_0000,
        policy in prop_oneof![Just(PolicyKind::MinIo), Just(PolicyKind::Lru)],
        workers in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let items = 96u64;
        let plan = FaultPlan::seeded(nodes, EPOCHS, faults, fault_seed, items);
        let (store, session) =
            chaos_session(items, nodes, policy, workers, stream_seed, plan);
        let sampler = EpochSampler::new(store.len(), stream_seed);
        let cluster = session.partitioned_cluster().expect("partitioned mode");
        for epoch in 0..EPOCHS {
            let run = session.epoch(epoch);
            for node in 0..nodes {
                let mut delivered: Vec<u64> = Vec::new();
                for batch in run.stream(node) {
                    let mb = batch.expect("a fault never fails a consumer");
                    delivered.extend(mb.samples.iter().map(|s| s.item));
                }
                let mut shard = sampler.distributed_shard(epoch, node, nodes);
                delivered.sort_unstable();
                shard.sort_unstable();
                prop_assert_eq!(
                    delivered, shard,
                    "epoch {} node {}: stream must equal its shard exactly",
                    epoch, node
                );
            }
            // No lost shard: every registered owner is a live cache member.
            for (item, owner) in cluster.directory_snapshot() {
                prop_assert!(
                    cluster.is_alive(owner),
                    "epoch {}: item {} registered to dead node {}",
                    epoch, item, owner
                );
            }
        }
        prop_assert_eq!(
            session.stats().samples_delivered(),
            EPOCHS * items,
            "aggregate delivery is exact across all faults"
        );
        // Teardown: gracefully drain every survivor; the last leaver has no
        // peers to migrate to, so the hierarchy must end empty.
        for server in cluster.alive_servers() {
            cluster.leave_node(server);
        }
        prop_assert!(cluster.alive_servers().is_empty());
        prop_assert!(
            cluster.directory_snapshot().is_empty(),
            "a fully drained cluster must not advertise any owner"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The delivered stream is bit-identical for every prep worker count:
    /// faults fire on the cluster-fetch axis, which sequential node-stream
    /// driving keeps independent of prep parallelism.
    #[test]
    fn fault_timing_is_invariant_to_the_worker_count(
        nodes in 2usize..=3,
        faults in 1usize..=3,
        fault_seed in 0u64..0x1_0000,
        policy in prop_oneof![Just(PolicyKind::MinIo), Just(PolicyKind::Lru)],
        workers in prop_oneof![Just(2usize), Just(8usize)],
    ) {
        let items = 64u64;
        let digest_with = |w: usize| {
            let plan = FaultPlan::seeded(nodes, EPOCHS, faults, fault_seed, items);
            let (_, session) = chaos_session(items, nodes, policy, w, 0xC0DA, plan);
            drive_and_digest(&session, nodes)
        };
        prop_assert_eq!(
            digest_with(1),
            digest_with(workers),
            "{} prep workers changed the stream under fault seed {}",
            workers, fault_seed
        );
    }
}

#[test]
fn rejoining_with_a_warm_tier_restores_the_storage_free_steady_state() {
    // The restarted-process path: a node dies, its process restarts, and the
    // replacement cache chain is warmed from the node's persistent tier
    // rather than rebuilt from the durable store.  `rejoin_with_tier` with
    // the surviving tier handle models exactly that; after one lazy-heal
    // epoch the cluster is storage-free again.
    let items = 64u64;
    let nodes = 2usize;
    let spec = DatasetSpec::new("chaos-rejoin", items, 256, 0.0, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 5));
    let session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            batch_size: 8,
            num_workers: 1,
            seed: 42,
            // Each node could hold the dataset, so recovery is capacity-free.
            cache_capacity_bytes: spec.total_bytes(),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes })
    .build()
    .unwrap();
    let cluster = session.partitioned_cluster().unwrap();
    let drive = |epoch: u64| {
        let run = session.epoch(epoch);
        for node in 0..nodes {
            for batch in run.stream(node) {
                batch.expect("chaos epochs never fail a consumer");
            }
        }
    };

    drive(0); // Warm-up: both tiers populated, directory complete.
    let warm_tier = cluster.tier(1);
    cluster.kill_node(1);
    drive(1); // Degraded: node 1's former shard coverage pays storage.
    assert!(!cluster.is_alive(1));
    cluster.rejoin_with_tier(1, warm_tier);
    assert!(cluster.is_alive(1), "warm restart brings the node back");
    drive(2); // Heal: lazy re-registration re-advertises the warm bytes.
    drive(3); // Steady state again.

    let report = session.report();
    assert!(
        report.epochs[1].bytes_from_storage > 0,
        "the kill must cost storage reads"
    );
    assert_eq!(
        report.epochs[3].bytes_from_storage, 0,
        "after a warm rejoin plus one heal epoch, no fetch reaches storage"
    );
    assert!(
        report.epochs[3].bytes_from_remote > 0,
        "steady state serves the rejoined node's bytes over the fabric"
    );
    assert_eq!(
        session.stats().samples_delivered(),
        4 * items,
        "no sample lost or duplicated across kill and warm rejoin"
    );
}
