//! Byte-accounting and victim-order regression tests for the cache
//! hierarchy (ISSUE 5 satellites).
//!
//! The tier-demotion path moves *exactly* the keys each policy evicts, in
//! *exactly* the order it evicts them — so the victim logs behind
//! `set_eviction_tracking` / `take_evicted` are pinned here for all three
//! evicting policies, including CLOCK's second-chance rotation.  And the
//! byte-holding caches must never let resident bytes exceed capacity, under
//! key replacement (re-admitting an existing key with different bytes) or
//! demotion churn.

use datastalls::cache::{Cache, ClockCache, FifoCache, LruCache, PolicyKind};
use datastalls::coordl::{
    ByteTierSpec, CacheTier, MinIoByteCache, PolicyByteCache, TieredByteCache,
};
use std::sync::Arc;

fn payload(tag: u64, len: usize) -> Arc<Vec<u8>> {
    Arc::new(vec![tag as u8; len])
}

// ---------------------------------------------------------------------------
// Victim order
// ---------------------------------------------------------------------------

#[test]
fn lru_victim_log_is_exact_recency_order() {
    let mut c = LruCache::new(3);
    c.set_eviction_tracking(true);
    for k in [1u64, 2, 3] {
        c.access(k, 1);
    }
    c.access(1, 1); // recency now 2 < 3 < 1
    c.access(4, 1); // evicts 2
    c.access(5, 1); // evicts 3
    c.access(6, 1); // evicts 1
    assert_eq!(c.take_evicted(), vec![2, 3, 1]);
    assert!(c.take_evicted().is_empty(), "log drains");
}

#[test]
fn fifo_victim_log_is_exact_insertion_order() {
    let mut c = FifoCache::new(2);
    c.set_eviction_tracking(true);
    for k in [7u64, 8] {
        c.access(k, 1);
    }
    c.access(7, 1); // hit: FIFO does not promote
    c.access(9, 1); // evicts 7
    c.access(10, 1); // evicts 8
    assert_eq!(c.take_evicted(), vec![7, 8]);
}

#[test]
fn clock_victim_log_follows_second_chance_order_exactly() {
    // Hand-computed trace against the ring/swap_remove implementation:
    //   insert 1,2,3            ring [1,2,3], all unreferenced
    //   hit 2                   ref(2)
    //   insert 4: hand at 1 (unref) -> evict 1; 3 swaps into slot 0
    //   hit 3                   ref(3)
    //   insert 5: hand clears 3, clears 2, lands on 4 (unref) -> evict 4
    //   insert 6: hand at slot of 5 (unref, no second chance yet) -> evict 5
    let mut c = ClockCache::new(3);
    c.set_eviction_tracking(true);
    for k in [1u64, 2, 3] {
        c.access(k, 1);
    }
    c.access(2, 1);
    c.access(4, 1);
    c.access(3, 1);
    c.access(5, 1);
    c.access(6, 1);
    assert_eq!(c.take_evicted(), vec![1, 4, 5]);
    // The referenced entries survived their second chance.
    assert!(c.contains(&2) && c.contains(&3) && c.contains(&6));
}

#[test]
fn demotion_preserves_each_policy_victim_order() {
    // A FIFO lower tier receives victims in arrival order, so after churn
    // its insertion order *is* the upper tier's eviction order.  Drive the
    // same accesses through each upper policy and check the lower tier's
    // eventual FIFO eviction order replays the upper tier's victim log.
    for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock] {
        // Reference run: the raw policy with tracking on.
        let mut reference = datastalls::cache::build_cache(kind, 3);
        reference.set_eviction_tracking(true);
        let trace: Vec<u64> = vec![1, 2, 3, 2, 4, 3, 5, 6, 1, 7];
        for &k in &trace {
            reference.access(k, 1);
        }
        let expected_victims = reference.take_evicted();
        assert!(expected_victims.len() >= 3, "{kind:?} trace must churn");

        // Tiered run: the same upper tier demoting into a roomy FIFO tier.
        // The chain drives the upper policy through the identical access
        // sequence (a promotion is an admission attempt, exactly like the
        // raw policy's miss), so its victim stream is the reference's.
        let tier = TieredByteCache::new(vec![
            ByteTierSpec::dram(kind, 3),
            ByteTierSpec::sata_ssd(PolicyKind::Fifo, 64),
        ]);
        for &k in &trace {
            if tier.lookup(k).is_none() {
                tier.admit(k, payload(k, 1));
            }
        }
        let snaps = tier.tier_snapshots();
        assert!(
            snaps[1].demoted_in > 0,
            "{kind:?}: the trace must demote victims"
        );
        // Nothing falls off a 64-byte FIFO tier on a 1-byte trace: every
        // victim the reference evicted must still be chain-resident.
        for v in &expected_victims {
            assert!(
                tier.contains(*v),
                "{kind:?}: victim {v} lost during demotion"
            );
        }
        // Demotions pair up across the boundary...
        assert_eq!(
            snaps[0].demoted_out, snaps[1].demoted_in,
            "{kind:?}: every demoted-out victim lands below"
        );
        // ...and the chain's upper tier evicted exactly as many entries as
        // the reference policy did (same policy code, same access stream).
        assert_eq!(
            snaps[0].evictions,
            reference.stats().evictions,
            "{kind:?}: eviction count"
        );
    }
}

// ---------------------------------------------------------------------------
// Resident-bytes <= capacity under replacement and demotion
// ---------------------------------------------------------------------------

#[test]
fn minio_byte_cache_replacement_keeps_first_copy_and_capacity() {
    let cache = MinIoByteCache::new(100);
    cache.insert(1, payload(1, 60));
    // Re-admitting the same key with different bytes must not change the
    // accounting or the resident copy.
    let kept = cache.insert(1, payload(9, 80));
    assert_eq!(kept.as_slice(), &[1u8; 60], "first copy wins");
    assert_eq!(cache.used_bytes(), 60);
    cache.insert(2, payload(2, 40));
    assert_eq!(cache.used_bytes(), 100);
    assert!(cache.used_bytes() <= 100);
    // Over-capacity admissions bypass without corrupting the accounting.
    cache.insert(3, payload(3, 10));
    assert_eq!(cache.used_bytes(), 100);
    assert!(!cache.contains(3));
}

#[test]
fn policy_byte_cache_replacement_never_exceeds_capacity() {
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::MinIo,
    ] {
        let cache = PolicyByteCache::new(kind, 64);
        // Churn with varied sizes, re-admitting keys with *different*
        // payload sizes (the replacement case).
        for round in 0..4u64 {
            for k in 0..12u64 {
                let size = 4 + ((k + round) % 5) as usize * 7;
                if cache.lookup(k).is_none() {
                    cache.admit(k, payload(k, size));
                }
                assert!(
                    CacheTier::used_bytes(&cache) <= CacheTier::capacity_bytes(&cache),
                    "{kind:?}: {} > {}",
                    CacheTier::used_bytes(&cache),
                    CacheTier::capacity_bytes(&cache)
                );
            }
        }
        // The payload map and the policy agree on residency.
        let resident = (0..12u64).filter(|&k| cache.contains(k)).count();
        assert_eq!(resident, cache.resident_items(), "{kind:?}");
    }
}

#[test]
fn tiered_byte_cache_invariants_hold_under_demotion_churn() {
    for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock] {
        let tier = TieredByteCache::new(vec![
            ByteTierSpec::dram(kind, 48),
            ByteTierSpec::sata_ssd(kind, 32),
        ]);
        for round in 0..5u64 {
            for k in 0..20u64 {
                let size = 3 + ((k * 7 + round) % 6) as usize * 5;
                if tier.lookup(k).is_none() {
                    tier.admit(k, payload(k, size));
                }
                let snaps = tier.tier_snapshots();
                for level in &snaps {
                    assert!(
                        level.used_bytes <= level.capacity_bytes,
                        "{kind:?} level {}: {} > {}",
                        level.name,
                        level.used_bytes,
                        level.capacity_bytes
                    );
                }
                // Payloads exist exactly for chain-resident keys.
                for probe in 0..20u64 {
                    assert_eq!(
                        tier.contains(probe),
                        tier.lookup(probe).is_some(),
                        "{kind:?}: payload map out of sync for {probe}"
                    );
                }
            }
        }
        let snaps = tier.tier_snapshots();
        assert!(
            snaps[1].demoted_in > 0,
            "{kind:?}: churn must have demoted victims"
        );
    }
}

#[test]
fn lookup_probe_does_not_change_residency() {
    // `contains` + `lookup` agreement above relies on lookup hits touching
    // recency only; a miss must not admit or evict anything.
    let tier = TieredByteCache::new(vec![
        ByteTierSpec::dram(PolicyKind::Lru, 16),
        ByteTierSpec::sata_ssd(PolicyKind::Lru, 16),
    ]);
    for k in 0..8u64 {
        tier.admit(k, payload(k, 4));
    }
    let before: Vec<bool> = (0..8).map(|k| tier.contains(k)).collect();
    for _ in 0..3 {
        assert!(tier.lookup(999).is_none());
    }
    let after: Vec<bool> = (0..8).map(|k| tier.contains(k)).collect();
    assert_eq!(before, after);
}
