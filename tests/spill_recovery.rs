//! Crash-recovery properties of the [`vfs::SpillStore`] manifest replay.
//!
//! A crash can tear the append-only `MANIFEST` at *any* byte.  Whatever the
//! cut point, reopening the store must (a) never fail, (b) never serve a
//! payload that differs from what was written — a torn length field that
//! still parses must not turn an intact payload into a served prefix — and
//! (c) retain every entry whose manifest line survived the cut intact.
//! These are the invariants the persistent SSD tier's warm restart (and the
//! chaos path's `rejoin_with_tier`) lean on.

use proptest::prelude::*;
use std::sync::Arc;
use vfs::{MemVfs, SpillStore, Vfs};

/// Proptest case count: `PROPTEST_CASES` if set (the CI extended leg boosts
/// it), the given default otherwise.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic payload for `key`: length and bytes derived from the seed,
/// so the property can recompute the expected contents without bookkeeping.
fn payload(seed: u64, key: u64) -> Vec<u8> {
    let len = 1 + (splitmix(seed ^ key) % 300) as usize;
    (0..len)
        .map(|i| splitmix(seed ^ key ^ i as u64) as u8)
        .collect()
}

/// Copy `path` between VFSes; a missing source (a removed payload) is a
/// no-op, mirroring what a crashed machine's disk would hold.
fn copy_file(src: &Arc<dyn Vfs>, dst: &Arc<dyn Vfs>, path: &str) {
    let Ok(from) = src.open(path, false) else {
        return;
    };
    let bytes = src
        .read_at(from, 0, src.len(from).unwrap() as usize)
        .unwrap();
    src.close(from).unwrap();
    let to = dst.open(path, true).unwrap();
    dst.write_at(to, 0, &bytes).unwrap();
    dst.close(to).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// Cut the manifest at an arbitrary byte and reopen: replay always
    /// succeeds, every retained key reads back byte-for-byte what was
    /// written, and entries whose lines survived the cut are all retained.
    #[test]
    fn a_manifest_torn_at_any_byte_never_serves_a_corrupt_payload(
        keys in 2u64..=12,
        removals in 0u64..=2,
        seed in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        {
            let mut store = SpillStore::open(Arc::clone(&vfs), "spill").unwrap();
            for key in 0..keys {
                store.write(key, &payload(seed, key)).unwrap();
            }
            for r in 0..removals.min(keys) {
                store.remove(splitmix(seed ^ r) % keys).unwrap();
            }
        }
        let manifest = vfs.open("spill/MANIFEST", false).unwrap();
        let full = vfs
            .read_at(manifest, 0, vfs.len(manifest).unwrap() as usize)
            .unwrap();
        vfs.close(manifest).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;

        // A crashed machine restarts with the manifest prefix but every
        // payload file intact (payloads are synced before their line).
        let torn: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let m = torn.open("spill/MANIFEST", true).unwrap();
        torn.write_at(m, 0, &full[..cut]).unwrap();
        torn.close(m).unwrap();
        for key in 0..keys {
            copy_file(&vfs, &torn, &format!("spill/{key}.item"));
        }

        let recovered = SpillStore::open(Arc::clone(&torn), "spill").unwrap();
        // (b) Whatever survived replay serves exactly the written bytes.
        for (key, len) in recovered.entries() {
            let expect = payload(seed, key);
            prop_assert_eq!(len as usize, expect.len(), "key {} length", key);
            prop_assert_eq!(
                recovered.read(key).unwrap(),
                expect,
                "key {}: a torn manifest must never change served bytes",
                key
            );
        }
        // (c) Replaying the *intact* prefix lines yields entries the torn
        // store must also have: only the one line spanning the cut may be
        // lost, and dropped keys can only reappear if a later (cut-off)
        // line had re-added them.
        let prefix_end = full[..cut]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        let mut expected: std::collections::BTreeMap<u64, usize> = Default::default();
        for line in std::str::from_utf8(&full[..prefix_end]).unwrap().lines() {
            let f: Vec<&str> = line.split(' ').collect();
            match f[0] {
                "+" => {
                    expected.insert(f[1].parse().unwrap(), f[2].parse().unwrap());
                }
                _ => {
                    expected.remove(&f[1].parse().unwrap());
                }
            }
        }
        for (&key, &len) in &expected {
            // A `-` line past the cut means the payload file was already
            // gone when the "crash" snapshot was taken; replay rightly
            // treats the prefix's `+` line as torn then.
            if torn.open(&format!("spill/{key}.item"), false).is_err() {
                prop_assert!(!recovered.contains(key));
                continue;
            }
            prop_assert!(
                recovered.contains(key),
                "key {} had an intact manifest line before the cut",
                key
            );
            prop_assert_eq!(recovered.read(key).unwrap().len(), len);
        }
    }
}

#[test]
fn a_rewritten_store_over_a_torn_manifest_is_fully_usable() {
    // Recovery is not read-only: after reopening over a torn manifest the
    // store must accept writes again, and a further clean reopen sees them.
    let seed = 0xDEAD;
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    {
        let mut store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
        store.write(1, &payload(seed, 1)).unwrap();
        store.write(2, &payload(seed, 2)).unwrap();
    }
    // Tear off the last byte of key 2's line ("+ 2 <len>\n" loses "\n").
    let manifest = vfs.open("d/MANIFEST", false).unwrap();
    let full = vfs
        .read_at(manifest, 0, vfs.len(manifest).unwrap() as usize)
        .unwrap();
    vfs.close(manifest).unwrap();
    vfs.remove("d/MANIFEST").unwrap();
    let m = vfs.open("d/MANIFEST", true).unwrap();
    vfs.write_at(m, 0, &full[..full.len() - 1]).unwrap();
    vfs.close(m).unwrap();

    let mut store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
    assert_eq!(store.read(1).unwrap(), payload(seed, 1));
    // A line without its newline still parses whole here (the length digits
    // are all present), so key 2 must have survived with correct bytes.
    assert_eq!(store.read(2).unwrap(), payload(seed, 2));
    store.write(3, &payload(seed, 3)).unwrap();
    store.remove(1).unwrap();
    drop(store);

    let reopened = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
    assert!(!reopened.contains(1));
    assert_eq!(reopened.read(2).unwrap(), payload(seed, 2));
    assert_eq!(reopened.read(3).unwrap(), payload(seed, 3));
}
