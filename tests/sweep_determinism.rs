//! The `SweepRunner` contract: a multi-threaded sweep is bit-identical to a
//! serial run of the same grid (same reports, same order), and a panicking
//! grid point fails that point only, never the sweep.

use datastalls::prelude::*;

fn base_spec() -> ExperimentSpec {
    let dataset = DatasetSpec::imagenet_1k().scaled(1000);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.5);
    let job = JobSpec::new(
        ModelKind::ResNet18,
        dataset,
        8,
        LoaderConfig::coordl_best(ModelKind::ResNet18),
    );
    ExperimentSpec::new(server, job)
}

fn cache_axis() -> Axis {
    let mut axis = Axis::new("cache");
    for pct in [20u32, 40, 60, 80] {
        axis.push_value(format!("{pct}%"), move |spec: &mut ExperimentSpec| {
            let bytes = spec.jobs[0].dataset.total_bytes();
            spec.server = spec.server.with_cache_fraction(bytes, pct as f64 / 100.0);
        });
    }
    axis
}

fn loader_axis() -> Axis {
    Axis::new("loader")
        .value("dali", |spec: &mut ExperimentSpec| {
            for job in &mut spec.jobs {
                job.loader = LoaderConfig::dali_best(job.model);
            }
        })
        .value("coordl", |spec: &mut ExperimentSpec| {
            for job in &mut spec.jobs {
                job.loader = LoaderConfig::coordl_best(job.model);
            }
        })
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let spec = SweepSpec::new("determinism", base_spec())
        .axis(cache_axis())
        .axis(loader_axis());
    assert_eq!(spec.num_points(), 8);

    let serial = SweepRunner::serial().run(&spec);
    for threads in [2, 3, 8] {
        let parallel = SweepRunner::with_threads(threads).run(&spec);
        // Same labels in the same deterministic grid order.
        let serial_labels: Vec<String> = serial.points.iter().map(|p| p.label.label()).collect();
        let parallel_labels: Vec<String> =
            parallel.points.iter().map(|p| p.label.label()).collect();
        assert_eq!(serial_labels, parallel_labels, "{threads} threads");
        // Bit-identical reports: SimReport is all plain data, so structural
        // equality plus byte-identical JSON pins every float.
        assert_eq!(serial, parallel, "{threads} threads");
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{threads} threads: JSON must match byte for byte"
        );
    }
}

#[test]
fn hp_search_sweep_is_deterministic_across_threads() {
    // The HP-search engine exercises the coordinated-prep path, whose shared
    // state is the most likely place for nondeterminism to creep in.
    let mut base = base_spec();
    base.jobs[0].num_gpus = 1;
    base.epochs = 2;
    let mut width = Axis::new("jobs");
    for n in [2usize, 4, 8] {
        width.push_value(format!("{n}"), move |spec: &mut ExperimentSpec| {
            spec.scenario = Scenario::HpSearch { jobs: n };
            let template = spec.jobs[0].clone();
            spec.jobs = (0..n)
                .map(|j| template.with_seed(template.seed + j as u64))
                .collect();
        });
    }
    let spec = SweepSpec::new("hp-determinism", base).axis(width);
    let serial = SweepRunner::serial().run(&spec);
    let parallel = SweepRunner::with_threads(4).run(&spec);
    assert_eq!(serial, parallel);
}

#[test]
fn a_poisoned_grid_point_fails_alone() {
    // Silence the default panic hook for the intentional panic below; no
    // other test in this binary panics on purpose.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut axis = cache_axis();
    axis.push_value("poisoned", |spec: &mut ExperimentSpec| {
        spec.epochs = 0; // Experiment::run asserts "need at least one epoch".
    });
    let spec = SweepSpec::new("isolation", base_spec()).axis(axis);
    let report = SweepRunner::with_threads(3).run(&spec);
    std::panic::set_hook(prev_hook);

    assert_eq!(report.points.len(), 5);
    assert_eq!(report.num_failed(), 1);
    let failed = &report.points[4];
    assert_eq!(failed.label.label(), "cache=poisoned");
    let err = failed.outcome.as_ref().unwrap_err();
    assert!(
        err.contains("at least one epoch"),
        "panic message surfaced: {err}"
    );
    // Every healthy point still ran.
    for point in &report.points[..4] {
        assert!(point.report().is_some(), "{} must succeed", point.label);
    }
    // The failure is visible in the JSON export, which stays valid.
    let json = report.to_json();
    assert!(json.contains("\"ok\":false"));
    assert!(datastalls::pipeline::json::parse(&json).is_ok());
}

#[test]
fn zipped_sweeps_run_axes_in_lockstep() {
    let spec = SweepSpec::new("zip", base_spec())
        .axis(cache_axis())
        .axis(
            Axis::new("epochs")
                .value("2", |s: &mut ExperimentSpec| s.epochs = 2)
                .value("3", |s: &mut ExperimentSpec| s.epochs = 3)
                .value("4", |s: &mut ExperimentSpec| s.epochs = 4)
                .value("5", |s: &mut ExperimentSpec| s.epochs = 5),
        )
        .zipped();
    assert_eq!(spec.num_points(), 4);
    let report = SweepRunner::with_threads(2).run(&spec);
    for (i, (label, sim)) in report.reports().enumerate() {
        assert_eq!(label.index, i);
        assert_eq!(sim.num_epochs(), i + 2, "{label}");
    }
}
