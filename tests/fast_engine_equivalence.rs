//! Bit-identity of the vectorized MinIO fast path with the exact engine.
//!
//! The `Experiment` runner silently routes single-server MinIO jobs through
//! `pipeline::fast` (flat-array cache replay, reused scratch buffers) instead
//! of the exact `TierChain` + `StorageNode` engine.  These tests pin the
//! refactor's contract:
//!
//! * the fast path reproduces the exact engine's `SimReport` *bit-identically*
//!   (same floats, same byte counts, same I/O timelines) over randomized
//!   cache fractions, dataset sizes, epoch counts and tier splits,
//! * reusing one `EngineScratch` across many differing runs changes no bit
//!   versus a fresh scratch per run,
//! * a `SweepRunner` forced onto the exact engine matches the default
//!   fast-path sweep point for point.

use datastalls::dataset::StorageFormat;
use datastalls::pipeline::{CacheSpec, EngineScratch, FetchOrder};
use datastalls::prelude::*;
use proptest::prelude::*;

/// A single-server MinIO spec parameterized the way the property test and
/// the pinning tests both need: dataset size, cache split, epochs, batch.
fn minio_spec(
    items: u64,
    cache_frac: f64,
    ssd_frac: f64,
    epochs: u64,
    batch: usize,
    chunked: bool,
) -> ExperimentSpec {
    let model = ModelKind::ResNet18;
    let dataset = DatasetSpec::new("fast-eq", items, 96 * 1024, 0.4, 6.0);
    let total = dataset.total_bytes();
    let cache_bytes = (total as f64 * cache_frac) as u64;
    let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache_bytes);
    let mut loader = LoaderConfig::coordl_best(model);
    if chunked {
        // Cover fetch-unit aggregation and the sorted sequential fetch
        // stream, not just the shuffled file-per-item layout.
        loader.format = StorageFormat::tfrecord_default();
        loader.fetch_order = FetchOrder::Sequential;
    }
    let job = JobSpec::new(model, dataset, 8, loader)
        .with_seed(0xFA57 ^ items)
        .with_batch(batch);
    let mut spec = ExperimentSpec::new(server, job);
    spec.epochs = epochs;
    if ssd_frac > 0.0 {
        let ssd_bytes = (cache_bytes as f64 * ssd_frac) as u64;
        spec.cache = CacheSpec::Tiered {
            dram_bytes: cache_bytes.saturating_sub(ssd_bytes),
            ssd_bytes,
        };
    }
    spec
}

/// Run `spec` on both engines and require bitwise-equal reports, down to the
/// serialized JSON.
fn assert_engines_agree(spec: &ExperimentSpec) {
    let fast = spec.run_with(&mut EngineScratch::default(), false);
    let exact = spec.run_with(&mut EngineScratch::default(), true);
    // `SimReport` derives `PartialEq` over every field, including the f64
    // stall breakdowns and I/O timelines, so equality here is bitwise.
    assert_eq!(fast, exact);
    assert_eq!(fast.to_json(), exact.to_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized cross-check: cache fraction from starved to oversized,
    /// DRAM-only and tiered splits, 1–3 epochs (cold and warm), partial
    /// trailing batches, both storage formats.
    #[test]
    fn fast_engine_matches_exact_over_random_configs(
        items in 2u64..400,
        cache_frac in 0.0f64..1.25,
        ssd_frac in 0.0f64..0.9,
        epochs in 1u64..4,
        batch in 1usize..12,
        chunked in 0u8..2,
    ) {
        let spec = minio_spec(items, cache_frac, ssd_frac, epochs, batch * 8, chunked == 1);
        let fast = spec.run_with(&mut EngineScratch::default(), false);
        let exact = spec.run_with(&mut EngineScratch::default(), true);
        prop_assert_eq!(&fast, &exact);
        prop_assert_eq!(fast.to_json(), exact.to_json());
    }
}

/// The hand-picked corners the paper's sweeps visit most: zero cache (pure
/// disk), full cache, and a tiered split where the DRAM tier alone cannot
/// hold the working set (so promotions on lower-tier hits occur).
#[test]
fn fast_engine_matches_exact_at_cache_corners() {
    for (cache_frac, ssd_frac) in [(0.0, 0.0), (1.2, 0.0), (0.65, 0.7), (0.35, 0.5)] {
        let spec = minio_spec(192, cache_frac, ssd_frac, 3, 64, false);
        assert_engines_agree(&spec);
    }
}

/// Reusing one `EngineScratch` across sweep points of wildly different
/// shapes must change no `SimReport` bit versus a fresh scratch per point —
/// on both the fast path and the exact engine.
#[test]
fn scratch_reuse_across_points_changes_no_bit() {
    let specs = [
        minio_spec(300, 0.5, 0.0, 2, 48, false),
        minio_spec(64, 1.1, 0.6, 3, 32, true),
        minio_spec(177, 0.25, 0.0, 1, 64, false),
        minio_spec(16, 0.9, 0.3, 2, 8, true),
    ];
    for exact in [false, true] {
        let mut shared = EngineScratch::new();
        for spec in &specs {
            let reused = spec.run_with(&mut shared, exact);
            let fresh = spec.run_with(&mut EngineScratch::default(), exact);
            assert_eq!(reused, fresh);
        }
    }
}

/// A sweep forced onto the exact engine reproduces the default fast-path
/// sweep point for point — serial and threaded.
#[test]
fn forced_exact_sweep_matches_fast_sweep() {
    let base = minio_spec(160, 0.5, 0.0, 2, 32, false);
    let total = base.jobs[0].dataset.total_bytes();
    let mut cache = Axis::new("cache");
    for pct in [10u32, 50, 100] {
        cache = cache.value(format!("{pct}%"), move |spec| {
            spec.server = spec.server.with_cache_fraction(total, pct as f64 / 100.0);
        });
    }
    let mut vcpus = Axis::new("vcpus");
    for cores in [8usize, 24] {
        vcpus = vcpus.value(format!("{cores}"), move |spec| {
            spec.server = spec.server.with_cpu_cores(cores);
        });
    }
    let sweep = SweepSpec::new("fast-vs-exact", base)
        .axis(cache)
        .axis(vcpus);

    let fast = SweepRunner::serial().run(&sweep);
    let exact_serial = SweepRunner::serial().force_exact(true).run(&sweep);
    let exact_threaded = SweepRunner::with_threads(4).force_exact(true).run(&sweep);

    assert_eq!(fast.points.len(), 6);
    for ((lf, rf), ((ls, rs), (lt, rt))) in fast
        .reports()
        .zip(exact_serial.reports().zip(exact_threaded.reports()))
    {
        assert_eq!(lf, ls);
        assert_eq!(lf, lt);
        assert_eq!(rf, rs);
        assert_eq!(rf, rt);
    }
}

/// Non-MinIO loaders never take the fast path, so forcing the exact engine
/// must be a no-op for them.
#[test]
fn exact_toggle_is_a_noop_for_lru_loaders() {
    let model = ModelKind::ResNet18;
    let dataset = DatasetSpec::new("lru-eq", 128, 96 * 1024, 0.4, 6.0);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.5);
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::pytorch_dl()).with_batch(32);
    let mut spec = ExperimentSpec::new(server, job);
    spec.epochs = 2;
    assert_engines_agree(&spec);
}
