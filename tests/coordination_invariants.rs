//! Integration tests for the functional CoorDL loader's coordination
//! invariants (§4.3): exactly-once delivery per job per epoch, fresh
//! per-epoch augmentation randomness, identical sample streams across
//! concurrent jobs, and bounded staging-area memory.
//!
//! These run the real multi-threaded machinery end to end through the
//! unified `Session` API: synthetic bytes flow from a `DataSource` through
//! the MinIO byte cache and the executable prep pipeline into the cross-job
//! staging area, and consumer threads play the role of the per-job GPUs.

use datastalls::coordl::{CoordlError, Mode, Session, SessionConfig};
use datastalls::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

fn store(items: u64, avg_bytes: u64) -> Arc<dyn DataSource> {
    Arc::new(SyntheticItemStore::new(
        DatasetSpec::new("coord-test", items, avg_bytes, 0.3, 4.0),
        41,
    ))
}

fn pipeline(seed: u64) -> ExecutablePipeline {
    ExecutablePipeline::new(PrepPipeline::image_classification(), 4, seed)
}

fn coordinated(num_jobs: usize, batch: usize, source: &Arc<dyn DataSource>) -> Session {
    Session::builder(
        Arc::clone(source),
        SessionConfig {
            batch_size: batch,
            staging_window: 8,
            seed: 9,
            cache_capacity_bytes: 64 << 20,
            take_timeout: Duration::from_secs(10),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: num_jobs })
    .pipeline(pipeline(5))
    .build()
    .expect("valid coordinated config")
}

/// Collect `(item, augmentation_seed)` pairs one job sees in one epoch.
fn consume_epoch(session: &Session, epoch: u64) -> Vec<Vec<(u64, u64)>> {
    let run = session.epoch(epoch);
    let handles: Vec<_> = (0..session.num_jobs())
        .map(|job| {
            let stream = run.stream(job);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for batch in stream {
                    let batch = batch.expect("epoch should complete");
                    for s in &batch.samples {
                        out.push((s.item, s.augmentation_seed));
                    }
                }
                out
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("consumer thread"))
        .collect()
}

#[test]
fn every_job_sees_every_item_exactly_once_per_epoch() {
    let source = store(1024, 2048);
    let session = coordinated(3, 64, &source);
    for epoch in 0..2u64 {
        for (job, seen) in consume_epoch(&session, epoch).into_iter().enumerate() {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for (item, _) in &seen {
                *counts.entry(*item).or_default() += 1;
            }
            assert_eq!(
                counts.len() as u64,
                source.len(),
                "job {job} epoch {epoch} coverage"
            );
            assert!(
                counts.values().all(|&n| n == 1),
                "job {job} epoch {epoch}: an item was delivered more than once"
            );
        }
    }
}

#[test]
fn concurrent_jobs_share_identical_sample_streams() {
    // Coordinated prep shares *prepared* minibatches: every job must see the
    // same items with the same augmentation, in the same order, within an
    // epoch — that is what "prepared exactly once and reused" means.
    let source = store(512, 1024);
    let session = coordinated(4, 32, &source);
    let per_job = consume_epoch(&session, 0);
    for job in 1..per_job.len() {
        assert_eq!(
            per_job[0], per_job[job],
            "job {job} saw a different prepared stream than job 0"
        );
    }
}

#[test]
fn augmentations_are_fresh_every_epoch() {
    // §4.3: reusing pre-processed data across epochs would hurt accuracy;
    // coordinated prep re-preps each epoch, so augmentation seeds must differ
    // between epochs for the same item.
    let source = store(256, 1024);
    let session = coordinated(2, 32, &source);
    let epoch0: HashMap<u64, u64> = consume_epoch(&session, 0)[0].iter().copied().collect();
    let epoch1: HashMap<u64, u64> = consume_epoch(&session, 1)[0].iter().copied().collect();
    let changed = epoch0
        .iter()
        .filter(|(item, seed)| epoch1.get(item) != Some(seed))
        .count();
    assert_eq!(
        changed,
        epoch0.len(),
        "every item's augmentation seed must change between epochs"
    );
}

#[test]
fn plain_loader_delivers_each_item_once_with_fresh_shuffles() {
    let source = store(640, 1024);
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 50,
            num_workers: 3,
            prefetch_depth: 4,
            seed: 77,
            cache_capacity_bytes: 32 << 20,
            ..SessionConfig::default()
        },
    )
    .pipeline(pipeline(3))
    .build()
    .expect("valid loader config");

    let order_of = |epoch: u64| -> Vec<u64> {
        session
            .epoch(epoch)
            .stream(0)
            .flat_map(|b| b.expect("epoch completes").item_ids())
            .collect()
    };
    let e0 = order_of(0);
    let e1 = order_of(1);
    assert_eq!(e0.len() as u64, source.len());
    assert_eq!(e0.iter().collect::<HashSet<_>>().len() as u64, source.len());
    assert_eq!(e1.iter().collect::<HashSet<_>>().len() as u64, source.len());
    assert_ne!(e0, e1, "epochs must reshuffle");
}

#[test]
fn loader_minio_cache_hits_equal_capacity_after_warmup() {
    // The functional loader's byte cache obeys the same MinIO arithmetic the
    // simulator assumes: after warm-up, hits per epoch == resident items.
    let source = store(400, 4096);
    let total_bytes: u64 = (0..source.len()).map(|i| source.item_bytes(i)).sum();
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 32,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 1,
            cache_capacity_bytes: total_bytes / 2,
            ..SessionConfig::default()
        },
    )
    .pipeline(pipeline(3))
    .build()
    .expect("valid loader config");

    for batch in session.epoch(0).stream(0) {
        assert!(!batch.expect("epoch completes").samples.is_empty());
    }
    let tier = session.cache_tier().expect("single mode has one tier");
    let resident_after_warmup = tier.resident_items() as u64;
    let hits_before = tier.hits();
    for batch in session.epoch(1).stream(0) {
        assert!(!batch.expect("epoch completes").samples.is_empty());
    }
    let epoch1_hits = tier.hits() - hits_before;
    assert_eq!(
        epoch1_hits, resident_after_warmup,
        "steady-state hits per epoch must equal the number of resident items"
    );
    assert_eq!(
        tier.resident_items() as u64,
        resident_after_warmup,
        "MinIO never evicts, so residency is stable"
    );
    // The same invariant is visible in the unified report's trajectories.
    let report = session.report();
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(report.epochs[1].cache_hits, resident_after_warmup);
}

#[test]
fn staging_area_memory_stays_bounded() {
    // §5.5: coordinated prep holds only a small window of prepared
    // minibatches; it must not buffer the whole epoch.
    let source = store(2048, 1024);
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 32,
            staging_window: 4,
            seed: 9,
            cache_capacity_bytes: 64 << 20,
            take_timeout: Duration::from_secs(10),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: 2 })
    .pipeline(pipeline(5))
    .build()
    .expect("valid coordinated config");

    {
        let run = session.epoch(0);
        let handles: Vec<_> = (0..2)
            .map(|job| {
                let stream = run.stream(job);
                std::thread::spawn(move || stream.inspect(|b| assert!(b.is_ok(), "batch")).count())
            })
            .collect();
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(counts.iter().all(|&c| c == 2048 / 32));
    }

    let report = session.report();
    let staging = &report.epochs[0];
    assert_eq!(
        staging.staging_evicted as usize,
        2048 / 32,
        "every published batch is evicted once both jobs consumed it"
    );
    // Peak memory is a few batches, not the whole epoch: each prepared batch
    // is at most batch_size × max-raw-item × decode-multiplier bytes.
    let max_batch_bytes = 32u64 * (1024 * 14 / 10) * 4;
    assert!(
        staging.staging_peak_bytes <= (4 + 2) * max_batch_bytes,
        "staging peak {} bytes exceeds the configured window's worth",
        staging.staging_peak_bytes
    );
}

#[test]
fn failed_job_is_detected_and_its_shard_recovered() {
    // §4.3 "Handling job failures": if the producer for one shard dies
    // mid-epoch, the others detect the timeout and a replacement producer
    // finishes that shard, so every surviving job still completes the epoch.
    let source = store(512, 1024);
    let session = Session::builder(
        Arc::clone(&source),
        SessionConfig {
            batch_size: 32,
            staging_window: 8,
            seed: 9,
            cache_capacity_bytes: 64 << 20,
            take_timeout: Duration::from_millis(200),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: 3 })
    .pipeline(pipeline(5))
    .build()
    .expect("valid coordinated config");

    let run = session.epoch(0);
    run.inject_failure(1);
    let handles: Vec<_> = (0..3)
        .map(|job| {
            let stream = run.stream(job);
            std::thread::spawn(move || {
                let mut items = 0u64;
                for batch in stream {
                    items += batch.expect("recovered epoch should complete").len() as u64;
                }
                items
            })
        })
        .collect();
    for (job, handle) in handles.into_iter().enumerate() {
        let items = handle.join().expect("consumer thread");
        assert_eq!(
            items,
            source.len(),
            "job {job} must still see the full epoch"
        );
    }
}

#[test]
fn shutdown_mid_epoch_surfaces_as_a_typed_error() {
    // Dropping the epoch run shuts the staging area down; a consumer still
    // holding its stream observes CoordlError::Shutdown instead of hanging.
    let source = store(1024, 1024);
    let session = coordinated(2, 16, &source);
    let run = session.epoch(0);
    let mut stream = run.stream(0);
    let first = stream.next().expect("epoch has batches");
    assert!(first.is_ok());
    drop(run);
    let mut saw_shutdown = false;
    for outcome in stream.by_ref() {
        match outcome {
            Ok(_) => continue,
            Err(CoordlError::Shutdown) => {
                saw_shutdown = true;
                break;
            }
            Err(other) => panic!("expected Shutdown, got {other}"),
        }
    }
    assert!(saw_shutdown, "consumer must observe the typed shutdown");
    // The aborted epoch still left a trajectory entry behind.
    assert_eq!(session.report().epochs.len(), 1);
}
