//! Pre-processing cost model, calibrated from the paper.
//!
//! Calibration anchors (all for the ImageNet-style image pipeline, raw-byte
//! throughput):
//!
//! * Figure 1: 24 physical cores running DALI's CPU pipeline sustain
//!   **735 MB/s**, i.e. ≈ 30.6 MB/s per core.
//! * Figure 1 (text): offloading decode to the GPUs raises the pipeline to
//!   **1062 MB/s**, i.e. the 8 GPUs contribute ≈ 330 MB/s ≈ 41 MB/s per GPU.
//! * Appendix E: the native PyTorch loader (Pillow + TorchVision) sustains
//!   ≈ **327 MB/s** with 24 workers, i.e. ≈ 13.6 MB/s per core.
//! * Appendix B.2: DALI's GPU mode consumes 2–5 GB of GPU memory and
//!   interferes with GPU-heavy models (ResNet50, VGG11), for which CPU prep
//!   is faster end-to-end.

use crate::transforms::PrepPipeline;

const MB: f64 = 1_000_000.0;

/// Which data-loading library performs the pre-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrepBackend {
    /// Native PyTorch DataLoader (Pillow/TorchVision on the CPU).
    PytorchCpu,
    /// DALI with CPU-only pipeline (nvJPEG-CPU decode).
    DaliCpu,
    /// DALI with GPU-offloaded decode/augment.
    DaliGpu,
}

impl PrepBackend {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PrepBackend::PytorchCpu => "pytorch-dl",
            PrepBackend::DaliCpu => "dali-cpu",
            PrepBackend::DaliGpu => "dali-gpu",
        }
    }
}

/// Throughput model for one job's pre-processing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepCostModel {
    /// Raw-byte throughput of a single physical CPU core, bytes/second.
    pub cpu_bytes_per_sec_per_core: f64,
    /// Additional raw-byte throughput contributed by each GPU when part of
    /// the pipeline is offloaded (DALI GPU mode), bytes/second.
    pub gpu_bytes_per_sec_per_gpu: f64,
    /// Fraction of each GPU's compute capacity consumed by GPU-side prep
    /// (interference with the training computation itself).
    pub gpu_compute_overhead: f64,
    /// Extra GPU memory required per GPU for GPU-side prep, in bytes.
    pub gpu_memory_overhead_bytes: u64,
    /// Scaling efficiency of hyper-threads: a virtual CPU beyond the physical
    /// core count contributes this fraction of a physical core (Appendix B.1:
    /// going from 32 to 64 threads buys only ≈30 %).
    pub hyperthread_efficiency: f64,
}

impl PrepCostModel {
    /// Cost model for `pipeline` executed by `backend`.
    pub fn for_pipeline(pipeline: &PrepPipeline, backend: PrepBackend) -> Self {
        // Audio items are large compressed streams; decoding them is cheaper
        // per byte than JPEG decode, which is why the audio model is mostly
        // fetch-bound rather than prep-bound in the paper.  Text tokenisation
        // is cheaper still: language models are GPU bound and the paper
        // excludes them from the stall analysis entirely (§3.1).
        let audio = pipeline.name.contains("audio");
        let text = pipeline.name.contains("language");
        let per_core_dali = if text {
            200.0 * MB
        } else if audio {
            80.0 * MB
        } else {
            30.6 * MB
        };
        let per_core_pytorch = if text {
            120.0 * MB
        } else if audio {
            40.0 * MB
        } else {
            13.6 * MB
        };
        match backend {
            PrepBackend::PytorchCpu => PrepCostModel {
                cpu_bytes_per_sec_per_core: per_core_pytorch,
                gpu_bytes_per_sec_per_gpu: 0.0,
                gpu_compute_overhead: 0.0,
                gpu_memory_overhead_bytes: 0,
                hyperthread_efficiency: 0.3,
            },
            PrepBackend::DaliCpu => PrepCostModel {
                cpu_bytes_per_sec_per_core: per_core_dali,
                gpu_bytes_per_sec_per_gpu: 0.0,
                gpu_compute_overhead: 0.0,
                gpu_memory_overhead_bytes: 0,
                hyperthread_efficiency: 0.3,
            },
            PrepBackend::DaliGpu => PrepCostModel {
                cpu_bytes_per_sec_per_core: per_core_dali,
                // 8 GPUs add ~330 MB/s in Figure 1 -> ~41 MB/s per GPU,
                // proportional to how much of the pipeline is offloadable.
                gpu_bytes_per_sec_per_gpu: 41.0 * MB * pipeline.gpu_offloadable_fraction()
                    / pipeline.gpu_offloadable_fraction().max(0.75),
                gpu_compute_overhead: 0.05,
                gpu_memory_overhead_bytes: 3 * 1024 * 1024 * 1024,
                hyperthread_efficiency: 0.3,
            },
        }
    }

    /// Effective number of physical-core equivalents for `vcpus` virtual CPUs
    /// on a machine with `physical_cores` physical cores.
    pub fn effective_cores(&self, vcpus: f64, physical_cores: f64) -> f64 {
        if vcpus <= physical_cores {
            vcpus
        } else {
            physical_cores + (vcpus - physical_cores) * self.hyperthread_efficiency
        }
    }

    /// Aggregate prep throughput (raw bytes/second) for a job that has
    /// `cores` physical-core equivalents and `gpus` GPUs available for
    /// offload.
    pub fn throughput_bps(&self, cores: f64, gpus: f64) -> f64 {
        self.cpu_bytes_per_sec_per_core * cores + self.gpu_bytes_per_sec_per_gpu * gpus
    }

    /// Time in seconds to pre-process `raw_bytes` of input with the given
    /// resources.
    pub fn prep_seconds(&self, raw_bytes: u64, cores: f64, gpus: f64) -> f64 {
        let tput = self.throughput_bps(cores, gpus);
        assert!(tput > 0.0, "prep throughput must be positive");
        raw_bytes as f64 / tput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> PrepPipeline {
        PrepPipeline::image_classification()
    }

    #[test]
    fn dali_cpu_matches_figure1_aggregate() {
        // 24 cores -> ~735 MB/s.
        let m = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliCpu);
        let tput = m.throughput_bps(24.0, 0.0);
        assert!((tput / MB - 735.0).abs() < 20.0, "got {} MB/s", tput / MB);
    }

    #[test]
    fn dali_gpu_matches_figure1_aggregate() {
        // 24 cores + 8 GPUs -> ~1062 MB/s.
        let m = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliGpu);
        let tput = m.throughput_bps(24.0, 8.0);
        assert!((tput / MB - 1062.0).abs() < 60.0, "got {} MB/s", tput / MB);
    }

    #[test]
    fn pytorch_native_is_slower_than_dali() {
        let py = PrepCostModel::for_pipeline(&image(), PrepBackend::PytorchCpu);
        let dali = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliCpu);
        assert!(py.cpu_bytes_per_sec_per_core < dali.cpu_bytes_per_sec_per_core);
        // Appendix E: ~327 MB/s with 24 workers.
        let tput = py.throughput_bps(24.0, 0.0);
        assert!((tput / MB - 327.0).abs() < 20.0, "got {} MB/s", tput / MB);
    }

    #[test]
    fn hyperthreads_scale_sublinearly() {
        let m = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliCpu);
        // 64 vCPUs on 32 physical cores: 32 + 32*0.3 ≈ 41.6 core-equivalents,
        // i.e. roughly a 30 % gain over 32 (Appendix B.1).
        let eff = m.effective_cores(64.0, 32.0);
        assert!(eff > 40.0 && eff < 43.0, "eff = {eff}");
        assert_eq!(m.effective_cores(8.0, 32.0), 8.0);
    }

    #[test]
    fn prep_seconds_inverse_to_resources() {
        let m = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliCpu);
        let one = m.prep_seconds(1_000_000_000, 3.0, 0.0);
        let many = m.prep_seconds(1_000_000_000, 24.0, 0.0);
        assert!(one / many > 7.5 && one / many < 8.5);
    }

    #[test]
    fn audio_pipeline_is_cheaper_per_byte() {
        let img = PrepCostModel::for_pipeline(&image(), PrepBackend::DaliCpu);
        let audio = PrepCostModel::for_pipeline(
            &PrepPipeline::audio_classification(),
            PrepBackend::DaliCpu,
        );
        assert!(audio.cpu_bytes_per_sec_per_core > img.cpu_bytes_per_sec_per_core);
    }
}
