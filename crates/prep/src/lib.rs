//! Pre-processing substrate.
//!
//! Every minibatch is decoded and augmented on the fly: JPEG decode, random
//! crop, resize, flip and normalisation for images; decode and resampling for
//! audio.  The paper shows this CPU work is a first-class bottleneck — *prep
//! stalls* — because modern GPUs ingest samples faster than 3 CPU cores per
//! GPU can prepare them (§3.3.2).
//!
//! The crate has two halves:
//!
//! * a **cost model** ([`PrepCostModel`], [`PrepBackend`]) calibrated from the
//!   paper's measured pipeline throughputs (735 MB/s for DALI-CPU with 24
//!   cores, 1062 MB/s with GPU offload, ≈330 MB/s for the native
//!   PyTorch/Pillow loader), used by the simulator, and
//! * **executable transforms** ([`executable`]) that really operate on byte
//!   buffers, used by the functional CoorDL loader so that coordination
//!   correctness (exactly-once, per-epoch randomness) can be tested on real
//!   data flow.

pub mod cost;
pub mod executable;
pub mod transforms;

pub use cost::{PrepBackend, PrepCostModel};
pub use executable::{ExecutablePipeline, PreparedSample};
pub use transforms::{PrepPipeline, TransformKind};
