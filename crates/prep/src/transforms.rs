//! Transform pipelines: what pre-processing a task performs.

/// A single pre-processing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// JPEG (or PNG) decode.
    DecodeImage,
    /// Random resized crop — the stochastic augmentation at the heart of
    /// image-classification training.
    RandomResizedCrop,
    /// Random horizontal flip.
    RandomFlip,
    /// Colour jitter (hue / saturation / brightness / contrast).
    ColorJitter,
    /// Per-channel normalisation and layout conversion to a tensor.
    NormalizeToTensor,
    /// Audio decode (MP3/OGG) to PCM.
    DecodeAudio,
    /// Audio resampling to the model's input rate.
    ResampleAudio,
    /// Random gain / time-shift augmentation for audio.
    AudioAugment,
    /// Bounding-box aware crop used by SSD object detection.
    SsdCropWithBoxes,
    /// Subword tokenisation (BPE/WordPiece) of raw text.
    Tokenize,
    /// Random token masking for masked-language-model training (BERT-style).
    MaskTokens,
}

impl TransformKind {
    /// Relative CPU cost weight of the transform (decode dominates).
    ///
    /// The absolute per-byte cost is calibrated in [`crate::cost`]; these
    /// weights only determine how the total splits across transforms, which
    /// matters when part of the pipeline (decode, in DALI's GPU mode) is
    /// offloaded to the GPU.
    pub fn cost_weight(self) -> f64 {
        match self {
            TransformKind::DecodeImage => 0.60,
            TransformKind::RandomResizedCrop => 0.15,
            TransformKind::RandomFlip => 0.02,
            TransformKind::ColorJitter => 0.08,
            TransformKind::NormalizeToTensor => 0.15,
            TransformKind::DecodeAudio => 0.55,
            TransformKind::ResampleAudio => 0.30,
            TransformKind::AudioAugment => 0.05,
            TransformKind::SsdCropWithBoxes => 0.25,
            // NormalizeToTensor shared by audio path too.
            TransformKind::Tokenize => 0.30,
            TransformKind::MaskTokens => 0.05,
        }
    }

    /// Whether the transform is stochastic (fresh randomness every epoch).
    pub fn is_random(self) -> bool {
        matches!(
            self,
            TransformKind::RandomResizedCrop
                | TransformKind::RandomFlip
                | TransformKind::ColorJitter
                | TransformKind::AudioAugment
                | TransformKind::SsdCropWithBoxes
                | TransformKind::MaskTokens
        )
    }

    /// Whether DALI can offload the transform to the GPU.
    pub fn gpu_offloadable(self) -> bool {
        matches!(
            self,
            TransformKind::DecodeImage
                | TransformKind::RandomResizedCrop
                | TransformKind::NormalizeToTensor
        )
    }
}

/// An ordered pre-processing pipeline, as specified by the training script.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepPipeline {
    /// Human-readable name (e.g. `"imagenet-train"`).
    pub name: String,
    /// The transforms applied to each item, in order.
    pub transforms: Vec<TransformKind>,
}

impl PrepPipeline {
    /// The standard ImageNet-style training pipeline: decode, random resized
    /// crop, random flip, normalise (the paper uses "the same pre-processing
    /// as in the original papers").
    pub fn image_classification() -> Self {
        PrepPipeline {
            name: "image-classification".to_string(),
            transforms: vec![
                TransformKind::DecodeImage,
                TransformKind::RandomResizedCrop,
                TransformKind::RandomFlip,
                TransformKind::NormalizeToTensor,
            ],
        }
    }

    /// SSD object-detection pipeline (decode + box-aware crop + flip +
    /// normalise).
    pub fn object_detection() -> Self {
        PrepPipeline {
            name: "object-detection".to_string(),
            transforms: vec![
                TransformKind::DecodeImage,
                TransformKind::SsdCropWithBoxes,
                TransformKind::RandomFlip,
                TransformKind::NormalizeToTensor,
            ],
        }
    }

    /// M5 audio-classification pipeline (decode, resample, augment,
    /// normalise).
    pub fn audio_classification() -> Self {
        PrepPipeline {
            name: "audio-classification".to_string(),
            transforms: vec![
                TransformKind::DecodeAudio,
                TransformKind::ResampleAudio,
                TransformKind::AudioAugment,
                TransformKind::NormalizeToTensor,
            ],
        }
    }

    /// Language-model pipeline (BERT/GNMT style): tokenise, random masking,
    /// tensor conversion.  Text prep is far cheaper per byte than image or
    /// audio decode — the paper excludes language models from the stall
    /// analysis because they are GPU bound (§3.1) — which the cost model
    /// reflects.
    pub fn language_model() -> Self {
        PrepPipeline {
            name: "language-model".to_string(),
            transforms: vec![
                TransformKind::Tokenize,
                TransformKind::MaskTokens,
                TransformKind::NormalizeToTensor,
            ],
        }
    }

    /// Sum of cost weights over all transforms.
    pub fn total_cost_weight(&self) -> f64 {
        self.transforms.iter().map(|t| t.cost_weight()).sum()
    }

    /// Fraction of the pipeline's cost that DALI's GPU mode can offload.
    pub fn gpu_offloadable_fraction(&self) -> f64 {
        let total = self.total_cost_weight();
        if total == 0.0 {
            return 0.0;
        }
        self.transforms
            .iter()
            .filter(|t| t.gpu_offloadable())
            .map(|t| t.cost_weight())
            .sum::<f64>()
            / total
    }

    /// True when the pipeline contains at least one stochastic transform, in
    /// which case pre-processed output must not be reused across epochs
    /// (the paper's argument against OneAccess-style caching of prepared
    /// data).
    pub fn has_random_augmentation(&self) -> bool {
        self.transforms.iter().any(|t| t.is_random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_decode_first() {
        for p in [
            PrepPipeline::image_classification(),
            PrepPipeline::object_detection(),
        ] {
            assert_eq!(p.transforms[0], TransformKind::DecodeImage);
        }
        assert_eq!(
            PrepPipeline::audio_classification().transforms[0],
            TransformKind::DecodeAudio
        );
    }

    #[test]
    fn all_training_pipelines_are_stochastic() {
        assert!(PrepPipeline::image_classification().has_random_augmentation());
        assert!(PrepPipeline::object_detection().has_random_augmentation());
        assert!(PrepPipeline::audio_classification().has_random_augmentation());
    }

    #[test]
    fn gpu_offloadable_fraction_is_a_proper_fraction() {
        for p in [
            PrepPipeline::image_classification(),
            PrepPipeline::object_detection(),
            PrepPipeline::audio_classification(),
        ] {
            let f = p.gpu_offloadable_fraction();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", p.name);
        }
        // Image decode dominates and is offloadable, so the fraction is large.
        assert!(PrepPipeline::image_classification().gpu_offloadable_fraction() > 0.5);
    }

    #[test]
    fn cost_weights_are_positive() {
        let p = PrepPipeline::image_classification();
        assert!(p.total_cost_weight() > 0.0);
        for t in &p.transforms {
            assert!(t.cost_weight() > 0.0);
        }
    }
}
