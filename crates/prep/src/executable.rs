//! Executable transforms for the functional loader.
//!
//! These operate on real byte buffers so that the multi-threaded CoorDL
//! implementation can be tested end to end: decode expands the raw buffer by
//! the dataset's decoded multiplier, the random crop/flip/jitter stages
//! consume per-(epoch, item) randomness, and the output embeds enough
//! provenance (item id, epoch, augmentation seed) for tests to verify the
//! exactly-once and fresh-randomness invariants that coordinated prep must
//! preserve.

use crate::transforms::{PrepPipeline, TransformKind};
use dataset::ItemId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fully pre-processed sample ready for "GPU" consumption.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedSample {
    /// The item this sample was prepared from.
    pub item: ItemId,
    /// Epoch during which it was prepared (augmentations differ per epoch).
    pub epoch: u64,
    /// The augmentation seed actually used (for reproducibility assertions).
    pub augmentation_seed: u64,
    /// The prepared payload.
    pub data: Vec<u8>,
}

/// An executable pre-processing pipeline.
#[derive(Debug, Clone)]
pub struct ExecutablePipeline {
    pipeline: PrepPipeline,
    /// Decoded size multiplier (prepared items are 5–7× larger than raw).
    decoded_multiplier: usize,
    /// Base seed combined with `(epoch, item)` for augmentation randomness.
    seed: u64,
}

impl ExecutablePipeline {
    /// Wrap `pipeline` with a decode multiplier and augmentation seed.
    pub fn new(pipeline: PrepPipeline, decoded_multiplier: usize, seed: u64) -> Self {
        assert!(decoded_multiplier >= 1);
        ExecutablePipeline {
            pipeline,
            decoded_multiplier,
            seed,
        }
    }

    /// The declarative pipeline description.
    pub fn pipeline(&self) -> &PrepPipeline {
        &self.pipeline
    }

    /// The augmentation seed for `(epoch, item)` — deterministic, so two jobs
    /// preparing the same item in the same epoch produce identical samples,
    /// while different epochs produce different augmentations.
    pub fn augmentation_seed(&self, epoch: u64, item: ItemId) -> u64 {
        self.seed
            ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ item.wrapping_mul(0xE703_7ED1_A0B4_28DB)
    }

    /// Pre-process one raw item.
    pub fn prepare(&self, epoch: u64, item: ItemId, raw: &[u8]) -> PreparedSample {
        let aug_seed = self.augmentation_seed(epoch, item);
        let mut rng = SmallRng::seed_from_u64(aug_seed);
        let mut data = raw.to_vec();
        for t in &self.pipeline.transforms {
            data = self.apply(*t, data, &mut rng);
        }
        PreparedSample {
            item,
            epoch,
            augmentation_seed: aug_seed,
            data,
        }
    }

    fn apply(&self, t: TransformKind, input: Vec<u8>, rng: &mut SmallRng) -> Vec<u8> {
        match t {
            TransformKind::DecodeImage | TransformKind::DecodeAudio => {
                // "Decode": expand the buffer by the decoded multiplier with a
                // cheap byte-mixing expansion (stand-in for entropy decode).
                let mut out = Vec::with_capacity(input.len() * self.decoded_multiplier);
                for rep in 0..self.decoded_multiplier {
                    out.extend(input.iter().map(|b| b.wrapping_add(rep as u8)));
                }
                out
            }
            TransformKind::RandomResizedCrop | TransformKind::SsdCropWithBoxes => {
                // Keep a random contiguous 50–100 % window (never empty).
                if input.is_empty() {
                    return input;
                }
                let len = input.len();
                let keep = rng.gen_range(len / 2..=len).max(1);
                let start = rng.gen_range(0..=len - keep);
                input[start..start + keep].to_vec()
            }
            TransformKind::RandomFlip => {
                if rng.gen_bool(0.5) {
                    input.into_iter().rev().collect()
                } else {
                    input
                }
            }
            TransformKind::ColorJitter | TransformKind::AudioAugment => {
                let delta: u8 = rng.gen();
                input.into_iter().map(|b| b.wrapping_add(delta)).collect()
            }
            TransformKind::ResampleAudio => {
                // Drop every 4th byte (down-sample) — deterministic.
                input
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 != 3)
                    .map(|(_, b)| b)
                    .collect()
            }
            TransformKind::Tokenize => {
                // "Tokenise": fold each 4-byte window into one subword id —
                // deterministic, like a real tokeniser.
                input
                    .chunks(4)
                    .map(|c| {
                        c.iter()
                            .fold(0u8, |acc, &b| acc.wrapping_mul(31).wrapping_add(b))
                    })
                    .collect()
            }
            TransformKind::MaskTokens => {
                // BERT-style MLM masking: replace ~15 % of tokens with a mask
                // marker, re-drawn every epoch.
                input
                    .into_iter()
                    .map(|b| if rng.gen_bool(0.15) { 0xFF } else { b })
                    .collect()
            }
            TransformKind::NormalizeToTensor => {
                // Byte-wise "normalisation": subtract the running mean.
                if input.is_empty() {
                    return input;
                }
                let mean =
                    (input.iter().map(|&b| b as u64).sum::<u64>() / input.len() as u64) as u8;
                input.into_iter().map(|b| b.wrapping_sub(mean)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> ExecutablePipeline {
        ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 42)
    }

    #[test]
    fn prepare_is_deterministic_for_same_epoch_and_item() {
        let p = pipeline();
        let raw = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let a = p.prepare(3, 10, &raw);
        let b = p.prepare(3, 10, &raw);
        assert_eq!(a, b);
    }

    #[test]
    fn different_epochs_produce_different_augmentations() {
        let p = pipeline();
        let raw: Vec<u8> = (0..=255).collect();
        let a = p.prepare(0, 5, &raw);
        let b = p.prepare(1, 5, &raw);
        assert_ne!(
            a.data, b.data,
            "random transforms must be re-drawn every epoch"
        );
        assert_ne!(a.augmentation_seed, b.augmentation_seed);
    }

    #[test]
    fn decode_expands_by_multiplier() {
        let p = ExecutablePipeline::new(
            PrepPipeline {
                name: "decode-only".into(),
                transforms: vec![TransformKind::DecodeImage],
            },
            6,
            0,
        );
        let raw = vec![9u8; 100];
        let out = p.prepare(0, 0, &raw);
        assert_eq!(out.data.len(), 600);
    }

    #[test]
    fn crop_keeps_between_half_and_all() {
        let p = ExecutablePipeline::new(
            PrepPipeline {
                name: "crop-only".into(),
                transforms: vec![TransformKind::RandomResizedCrop],
            },
            1,
            7,
        );
        let raw: Vec<u8> = (0..100).collect();
        for epoch in 0..20 {
            let out = p.prepare(epoch, 1, &raw);
            assert!(out.data.len() >= 50 && out.data.len() <= 100);
        }
    }

    #[test]
    fn prepared_sample_carries_provenance() {
        let p = pipeline();
        let s = p.prepare(2, 77, &[1, 2, 3, 4]);
        assert_eq!(s.item, 77);
        assert_eq!(s.epoch, 2);
        assert_eq!(s.augmentation_seed, p.augmentation_seed(2, 77));
    }

    #[test]
    fn audio_pipeline_runs() {
        let p = ExecutablePipeline::new(PrepPipeline::audio_classification(), 5, 1);
        let raw = vec![7u8; 64];
        let out = p.prepare(0, 0, &raw);
        assert!(!out.data.is_empty());
    }

    #[test]
    fn two_pipelines_with_same_seed_agree_across_jobs() {
        // Coordinated prep relies on this: whichever job prepares the item,
        // the result is the same as long as the (epoch, item) seed matches.
        let a = pipeline();
        let b = pipeline();
        let raw: Vec<u8> = (0..64).collect();
        assert_eq!(a.prepare(4, 9, &raw), b.prepare(4, 9, &raw));
    }
}
