//! The cluster fabric: per-server NICs with traffic accounting.

use crate::link::LinkProfile;
use simkit::SimTime;

/// Per-server network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Bytes received from remote caches.
    pub bytes_received: u64,
    /// Bytes served to remote peers out of the local cache.
    pub bytes_sent: u64,
    /// Number of remote fetch requests issued.
    pub requests: u64,
    /// Total time spent on the wire for this server's receives (isolated).
    pub receive_time_s: f64,
}

impl NetStats {
    /// Average receive bandwidth over `horizon_s` seconds, in bits/second.
    pub fn avg_receive_bps(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            0.0
        } else {
            self.bytes_received as f64 * 8.0 / horizon_s
        }
    }
}

/// A cluster of servers connected by identical links.
///
/// The fabric tracks who sent how much to whom and answers "how long does a
/// remote cache fetch of `bytes` take when `flows` transfers share the NIC".
#[derive(Debug, Clone)]
pub struct Fabric {
    link: LinkProfile,
    stats: Vec<NetStats>,
}

impl Fabric {
    /// A fabric of `num_servers` servers with identical `link` NICs.
    pub fn new(link: LinkProfile, num_servers: usize) -> Self {
        assert!(num_servers > 0, "need at least one server");
        Fabric {
            link,
            stats: vec![NetStats::default(); num_servers],
        }
    }

    /// The link profile.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.stats.len()
    }

    /// Model a remote cache fetch of `bytes` from `src` to `dst`, with
    /// `concurrent_flows` flows sharing each NIC, returning the transfer time.
    pub fn remote_fetch(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        concurrent_flows: usize,
    ) -> SimTime {
        assert!(src < self.stats.len() && dst < self.stats.len());
        assert_ne!(src, dst, "remote fetch must cross servers");
        let secs = self.link.transfer_seconds(bytes, concurrent_flows);
        self.stats[src].bytes_sent += bytes;
        self.stats[dst].bytes_received += bytes;
        self.stats[dst].requests += 1;
        self.stats[dst].receive_time_s += secs;
        SimTime::from_secs(secs)
    }

    /// Network statistics of server `idx`.
    pub fn stats(&self, idx: usize) -> NetStats {
        self.stats[idx]
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        for s in &mut self.stats {
            *s = NetStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fetch_accounts_both_ends() {
        let mut f = Fabric::new(LinkProfile::ethernet_40gbps(), 2);
        let t = f.remote_fetch(0, 1, 1_000_000, 1);
        assert!(t.as_secs() > 0.0);
        assert_eq!(f.stats(0).bytes_sent, 1_000_000);
        assert_eq!(f.stats(1).bytes_received, 1_000_000);
        assert_eq!(f.stats(1).requests, 1);
        assert_eq!(f.stats(0).bytes_received, 0);
    }

    #[test]
    fn remote_fetch_is_faster_than_hdd() {
        // The motivating comparison: fetching 1 GB from a remote cache over
        // 40 GbE is far faster than 1 GB of random reads from a 15 MB/s HDD.
        let mut f = Fabric::new(LinkProfile::ethernet_40gbps(), 2);
        let net = f.remote_fetch(0, 1, 1 << 30, 1).as_secs();
        let hdd = (1u64 << 30) as f64 / 15_000_000.0;
        assert!(net * 10.0 < hdd);
    }

    #[test]
    fn avg_bandwidth_reporting() {
        let mut f = Fabric::new(LinkProfile::ethernet_40gbps(), 3);
        f.remote_fetch(0, 2, 500_000_000, 1);
        f.remote_fetch(1, 2, 500_000_000, 1);
        let gbps = f.stats(2).avg_receive_bps(1.0) / 1e9;
        assert!((gbps - 8.0).abs() < 0.1, "got {gbps} Gbps");
    }

    #[test]
    fn reset_clears_counters() {
        let mut f = Fabric::new(LinkProfile::ethernet_10gbps(), 2);
        f.remote_fetch(0, 1, 1000, 1);
        f.reset();
        assert_eq!(f.stats(1).bytes_received, 0);
    }

    #[test]
    #[should_panic(expected = "cross servers")]
    fn self_fetch_rejected() {
        let mut f = Fabric::new(LinkProfile::ethernet_10gbps(), 2);
        f.remote_fetch(1, 1, 10, 1);
    }
}
