//! Network substrate: the commodity Ethernet used by partitioned caching.
//!
//! CoorDL's partitioned cache serves a local MinIO miss from the DRAM of a
//! *remote* server over plain TCP because the cross-node links of ML cloud
//! servers (10–40 Gbps) are up to 4× faster than a local SATA SSD and orders
//! of magnitude faster than a hard drive (§4.2).  The model here is a simple
//! fluid one: each server has a NIC of fixed bandwidth that is shared fairly
//! by its concurrent flows, plus a fixed per-request latency.

pub mod fabric;
pub mod link;

pub use fabric::{Fabric, NetStats};
pub use link::LinkProfile;
