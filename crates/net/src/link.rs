//! NIC / link profiles.

const GBIT: f64 = 1_000_000_000.0 / 8.0; // bytes per second per Gbit/s

/// Static characteristics of a server's network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Short name for reports.
    pub name: &'static str,
    /// Usable bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Round-trip latency in seconds.
    pub rtt_s: f64,
    /// Fraction of the nominal bandwidth achievable by a TCP flow in practice
    /// (protocol overhead, incast effects).
    pub efficiency: f64,
}

impl LinkProfile {
    /// The 40 Gbps Ethernet of the paper's evaluation servers (§5).
    pub fn ethernet_40gbps() -> Self {
        LinkProfile {
            name: "40GbE",
            bandwidth_bps: 40.0 * GBIT,
            rtt_s: 100e-6,
            efficiency: 0.9,
        }
    }

    /// A 10 Gbps link, the low end of the range the paper quotes (§4.2).
    pub fn ethernet_10gbps() -> Self {
        LinkProfile {
            name: "10GbE",
            bandwidth_bps: 10.0 * GBIT,
            rtt_s: 100e-6,
            efficiency: 0.9,
        }
    }

    /// Effective bandwidth of a single flow when `concurrent_flows` flows
    /// share the link.
    pub fn per_flow_bandwidth(&self, concurrent_flows: usize) -> f64 {
        self.bandwidth_bps * self.efficiency / concurrent_flows.max(1) as f64
    }

    /// Time to transfer `bytes` over one of `concurrent_flows` fair-shared
    /// flows, in seconds.
    pub fn transfer_seconds(&self, bytes: u64, concurrent_flows: usize) -> f64 {
        self.rtt_s + bytes as f64 / self.per_flow_bandwidth(concurrent_flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_gig_is_faster_than_sata_ssd() {
        // §4.2: the network is up to 4× faster than a 530 MB/s SATA SSD.
        let link = LinkProfile::ethernet_40gbps();
        let effective = link.bandwidth_bps * link.efficiency;
        assert!(effective > 4.0 * 530_000_000.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes_and_flows() {
        let link = LinkProfile::ethernet_40gbps();
        let one = link.transfer_seconds(1_000_000_000, 1);
        let two = link.transfer_seconds(1_000_000_000, 2);
        assert!(two > 1.9 * one && two < 2.1 * one);
        let ten = link.transfer_seconds(10_000_000_000, 1);
        assert!(ten > 9.0 * one && ten < 11.0 * one);
    }

    #[test]
    fn ten_gig_is_slower_than_forty_gig() {
        let t40 = LinkProfile::ethernet_40gbps().transfer_seconds(1 << 30, 1);
        let t10 = LinkProfile::ethernet_10gbps().transfer_seconds(1 << 30, 1);
        assert!(t10 > 3.5 * t40);
    }
}
