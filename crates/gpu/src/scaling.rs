//! Batch-size and multi-GPU scaling of the ingestion rate.

use crate::model::{GpuGeneration, ModelProfile};

/// Relative GPU efficiency at `batch` versus the reference batch size.
///
/// Larger batches amortise kernel-launch and gradient-exchange overheads and
/// exploit the GPU's parallelism better (Appendix B.3); we model this with a
/// saturating curve `b / (b + k)` normalised to 1.0 at the reference batch.
/// Halving the batch costs ~10 %, very small batches cost considerably more.
pub fn batch_efficiency(profile: &ModelProfile, batch: usize) -> f64 {
    assert!(batch > 0, "batch size must be positive");
    let k = profile.reference_batch as f64 * 0.2;
    let eff = |b: f64| b / (b + k);
    eff(batch as f64) / eff(profile.reference_batch as f64)
}

/// Aggregate ingestion rate (samples/s) of a data-parallel job with
/// `num_gpus` GPUs of generation `gpu` running `profile` at per-GPU batch
/// size `batch`.
///
/// Weak scaling with a small per-GPU synchronisation penalty: gradient
/// exchange grows with the number of workers, which the paper folds into
/// compute time (§2).
pub fn aggregate_samples_per_sec(
    profile: &ModelProfile,
    gpu: GpuGeneration,
    num_gpus: usize,
    batch: usize,
) -> f64 {
    assert!(num_gpus > 0, "need at least one GPU");
    let per_gpu = profile.samples_per_sec(gpu) * batch_efficiency(profile, batch);
    let sync_penalty = 1.0 + profile.sync_overhead * ((num_gpus as f64).log2()).max(0.0) * 0.5;
    per_gpu * num_gpus as f64 / sync_penalty
}

/// GPU compute time for one global minibatch (`batch` per GPU across
/// `num_gpus` GPUs), in seconds.
pub fn compute_seconds_per_batch(
    profile: &ModelProfile,
    gpu: GpuGeneration,
    num_gpus: usize,
    batch: usize,
) -> f64 {
    let samples = (batch * num_gpus) as f64;
    samples / aggregate_samples_per_sec(profile, gpu, num_gpus, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;

    fn resnet18() -> ModelProfile {
        ModelKind::ResNet18.profile()
    }

    #[test]
    fn batch_efficiency_is_one_at_reference() {
        let p = resnet18();
        assert!((batch_efficiency(&p, p.reference_batch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn larger_batches_are_more_efficient() {
        let p = resnet18();
        assert!(batch_efficiency(&p, 1024) > batch_efficiency(&p, 512));
        assert!(batch_efficiency(&p, 512) > batch_efficiency(&p, 128));
        assert!(batch_efficiency(&p, 128) > batch_efficiency(&p, 32));
    }

    #[test]
    fn efficiency_saturates_below_20_percent_gain() {
        let p = resnet18();
        assert!(batch_efficiency(&p, 4096) < 1.2);
    }

    #[test]
    fn multi_gpu_scales_nearly_linearly() {
        let p = resnet18();
        let one = aggregate_samples_per_sec(&p, GpuGeneration::V100, 1, 512);
        let eight = aggregate_samples_per_sec(&p, GpuGeneration::V100, 8, 512);
        let scaling = eight / one;
        assert!(scaling > 6.5 && scaling < 8.0, "8-GPU scaling = {scaling}");
    }

    #[test]
    fn compute_time_is_batch_over_rate() {
        let p = resnet18();
        let t = compute_seconds_per_batch(&p, GpuGeneration::V100, 8, 512);
        let rate = aggregate_samples_per_sec(&p, GpuGeneration::V100, 8, 512);
        assert!((t - (512.0 * 8.0) / rate).abs() < 1e-12);
        assert!(t > 0.0 && t < 10.0);
    }

    #[test]
    fn v100_faster_than_1080ti() {
        let p = resnet18();
        let v = aggregate_samples_per_sec(&p, GpuGeneration::V100, 8, 256);
        let g = aggregate_samples_per_sec(&p, GpuGeneration::Gtx1080Ti, 8, 256);
        assert!(v / g > 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let p = resnet18();
        let _ = aggregate_samples_per_sec(&p, GpuGeneration::V100, 0, 512);
    }
}
