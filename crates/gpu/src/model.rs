//! The model zoo and GPU generations.

/// GPU generations used by the paper's two server configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// NVIDIA V100 (Config-SSD-V100), trained with Apex mixed precision.
    V100,
    /// NVIDIA GTX 1080Ti (Config-HDD-1080Ti), full precision.
    Gtx1080Ti,
    /// A hypothetical GPU 2× faster than the V100, used by DS-Analyzer's
    /// what-if analysis ("what if GPUs get 2× faster?").
    FutureGpu2x,
}

impl GpuGeneration {
    /// Compute-speed multiplier relative to a V100 with mixed precision.
    pub fn speed_factor(self) -> f64 {
        match self {
            GpuGeneration::V100 => 1.0,
            // Full-precision training on the older part is roughly 3× slower
            // for the CNNs considered here.
            GpuGeneration::Gtx1080Ti => 0.33,
            GpuGeneration::FutureGpu2x => 2.0,
        }
    }

    /// Device memory in bytes (Table 2: 32 GB for V100, 11 GB for 1080Ti).
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuGeneration::V100 => 32 * 1024 * 1024 * 1024,
            GpuGeneration::Gtx1080Ti => 11 * 1024 * 1024 * 1024,
            GpuGeneration::FutureGpu2x => 64 * 1024 * 1024 * 1024,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::V100 => "V100",
            GpuGeneration::Gtx1080Ti => "1080Ti",
            GpuGeneration::FutureGpu2x => "2xV100",
        }
    }
}

/// Training task families used in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Image classification (7 of the 9 models).
    ImageClassification,
    /// Object detection (SSD + ResNet18 backbone).
    ObjectDetection,
    /// Audio classification (M5 on FMA).
    AudioClassification,
    /// Language models (BERT-Large, GNMT) — GPU bound, no data stalls in the
    /// paper's environment; included for completeness.
    LanguageModel,
}

/// The nine (plus two language) models analysed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    ShuffleNetV2,
    AlexNet,
    ResNet18,
    SqueezeNet,
    MobileNetV2,
    ResNet50,
    Vgg11,
    SsdRes18,
    AudioM5,
    BertLarge,
    Gnmt,
}

impl ModelKind {
    /// The nine models with data stalls analysed throughout the paper.
    pub fn paper_models() -> Vec<ModelKind> {
        vec![
            ModelKind::ShuffleNetV2,
            ModelKind::AlexNet,
            ModelKind::ResNet18,
            ModelKind::SqueezeNet,
            ModelKind::MobileNetV2,
            ModelKind::ResNet50,
            ModelKind::Vgg11,
            ModelKind::SsdRes18,
            ModelKind::AudioM5,
        ]
    }

    /// The seven image-classification models (Figure 13, Table 7).
    pub fn image_models() -> Vec<ModelKind> {
        vec![
            ModelKind::ShuffleNetV2,
            ModelKind::AlexNet,
            ModelKind::ResNet18,
            ModelKind::SqueezeNet,
            ModelKind::MobileNetV2,
            ModelKind::ResNet50,
            ModelKind::Vgg11,
        ]
    }

    /// Profile (calibrated rates) of this model.
    pub fn profile(self) -> ModelProfile {
        ModelProfile::of(self)
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ShuffleNetV2 => "ShuffleNetv2",
            ModelKind::AlexNet => "AlexNet",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::SqueezeNet => "SqueezeNet",
            ModelKind::MobileNetV2 => "MobileNetv2",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::Vgg11 => "VGG11",
            ModelKind::SsdRes18 => "SSD-Res18",
            ModelKind::AudioM5 => "Audio-M5",
            ModelKind::BertLarge => "BERT-Large",
            ModelKind::Gnmt => "GNMT",
        }
    }
}

/// Calibrated per-model compute characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// The model.
    pub kind: ModelKind,
    /// Task family.
    pub task: Task,
    /// Samples per second one V100 can ingest at the reference batch size
    /// with mixed precision, *excluding* any data stalls.
    pub v100_samples_per_sec: f64,
    /// Reference per-GPU batch size used in the paper (§3.1: 512 for image
    /// classification, 128 for SSD, 16 for M5).
    pub reference_batch: usize,
    /// Fraction of an iteration spent in cross-GPU gradient synchronisation
    /// at the reference batch size (folded into compute time, §2).
    pub sync_overhead: f64,
}

impl ModelProfile {
    /// The calibrated profile of `kind`.
    pub fn of(kind: ModelKind) -> ModelProfile {
        use ModelKind::*;
        let (task, v100_rate, batch, sync) = match kind {
            // Image classification, per-V100 samples/s at batch 512 (mixed
            // precision). Ordering and rough magnitudes follow Fig. 13 /
            // Table 7; ResNet18 anchored at ~2.5k samples/s per Figure 1.
            ShuffleNetV2 => (Task::ImageClassification, 2900.0, 512, 0.04),
            AlexNet => (Task::ImageClassification, 3100.0, 512, 0.06),
            ResNet18 => (Task::ImageClassification, 2500.0, 512, 0.05),
            SqueezeNet => (Task::ImageClassification, 1900.0, 512, 0.04),
            MobileNetV2 => (Task::ImageClassification, 1500.0, 512, 0.04),
            ResNet50 => (Task::ImageClassification, 650.0, 512, 0.07),
            Vgg11 => (Task::ImageClassification, 580.0, 512, 0.10),
            // Object detection: batch 128 per GPU.
            SsdRes18 => (Task::ObjectDetection, 350.0, 128, 0.06),
            // Audio M5: batch 16 per GPU; items are ~9 MB clips so even a
            // modest sample rate implies a huge byte-ingest demand.
            AudioM5 => (Task::AudioClassification, 220.0, 16, 0.03),
            // Language models: GPU bound in the paper's environment.
            BertLarge => (Task::LanguageModel, 52.0, 8, 0.12),
            Gnmt => (Task::LanguageModel, 380.0, 128, 0.10),
        };
        ModelProfile {
            kind,
            task,
            v100_samples_per_sec: v100_rate,
            reference_batch: batch,
            sync_overhead: sync,
        }
    }

    /// Per-GPU ingestion rate (samples/s) on `gpu` at the reference batch.
    pub fn samples_per_sec(&self, gpu: GpuGeneration) -> f64 {
        self.v100_samples_per_sec * gpu.speed_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_paper_models() {
        assert_eq!(ModelKind::paper_models().len(), 9);
        assert_eq!(ModelKind::image_models().len(), 7);
    }

    #[test]
    fn compute_rate_ordering_matches_paper() {
        // Table 7 / Figure 13 ordering: AlexNet & ShuffleNet fastest,
        // ResNet50 & VGG11 slowest among the image models.
        let rate = |m: ModelKind| m.profile().v100_samples_per_sec;
        assert!(rate(ModelKind::AlexNet) > rate(ModelKind::ResNet18));
        assert!(rate(ModelKind::ShuffleNetV2) > rate(ModelKind::ResNet18));
        assert!(rate(ModelKind::ResNet18) > rate(ModelKind::SqueezeNet));
        assert!(rate(ModelKind::SqueezeNet) > rate(ModelKind::MobileNetV2));
        assert!(rate(ModelKind::MobileNetV2) > rate(ModelKind::ResNet50));
        assert!(rate(ModelKind::ResNet50) > rate(ModelKind::Vgg11));
    }

    #[test]
    fn resnet18_matches_figure1_byte_rate() {
        // Figure 1: 8 V100s consuming ImageNet-1k (≈114 KiB/raw image) need
        // ~2283 MB/s.
        let p = ModelKind::ResNet18.profile();
        let avg_item = 146.0 * 1024.0 * 1024.0 * 1024.0 / 1_281_167.0; // bytes
        let bytes_per_sec = p.v100_samples_per_sec * 8.0 * avg_item;
        let mbps = bytes_per_sec / 1_000_000.0;
        assert!(
            (mbps - 2283.0).abs() / 2283.0 < 0.15,
            "ResNet18 ingest = {mbps} MB/s, expected ≈2283"
        );
    }

    #[test]
    fn gpu_generation_factors() {
        assert!(GpuGeneration::V100.speed_factor() > GpuGeneration::Gtx1080Ti.speed_factor());
        assert_eq!(GpuGeneration::FutureGpu2x.speed_factor(), 2.0);
        assert!(GpuGeneration::V100.memory_bytes() > GpuGeneration::Gtx1080Ti.memory_bytes());
    }

    #[test]
    fn reference_batches_match_section_3_1() {
        assert_eq!(ModelKind::ResNet50.profile().reference_batch, 512);
        assert_eq!(ModelKind::SsdRes18.profile().reference_batch, 128);
        assert_eq!(ModelKind::AudioM5.profile().reference_batch, 16);
    }

    #[test]
    fn language_models_are_marked_gpu_bound_tasks() {
        assert_eq!(ModelKind::BertLarge.profile().task, Task::LanguageModel);
        assert_eq!(ModelKind::Gnmt.profile().task, Task::LanguageModel);
    }
}
