//! GPU compute substrate: how fast each model can *consume* prepared data.
//!
//! For the purposes of data-stall analysis the DNN itself is just a consumer
//! with an ingestion rate `G` (samples per second) that depends on the model,
//! the GPU generation, the batch size and the number of GPUs.  This crate
//! provides the calibrated model zoo used throughout the reproduction.
//!
//! Calibration notes: per-GPU V100 rates are anchored on Figure 1 (the 8-GPU
//! ResNet18 pipeline needs 2283 MB/s ≈ 20 k ImageNet samples/s, i.e. ≈ 2.5 k
//! samples/s per V100) and on the relative ordering of Table 7 / Figure 13
//! (AlexNet ≈ ShuffleNet > ResNet18 > SqueezeNet > MobileNet > ResNet50 ≈
//! VGG11).  1080Ti rates use the ≈3× slowdown implied by full-precision
//! training on the older part (§3.1).

pub mod model;
pub mod scaling;

pub use model::{GpuGeneration, ModelKind, ModelProfile, Task};
pub use scaling::{aggregate_samples_per_sec, batch_efficiency, compute_seconds_per_batch};
