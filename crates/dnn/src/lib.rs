//! A miniature DNN training substrate.
//!
//! The paper's Figure 10 shows that CoorDL does not change *what* the model
//! learns — only how fast epochs complete — by training ResNet50 to the same
//! top-1 accuracy in a quarter of the wall-clock time.  We reproduce the
//! essence of that experiment with a from-scratch multi-layer perceptron
//! trained on a synthetic classification task whose samples flow through the
//! CoorDL loaders: identical per-epoch sample streams must yield identical
//! accuracy trajectories, and the wall-clock axis is supplied by the epoch
//! times of the pipeline simulator.
//!
//! The substrate is deliberately small (dense layers, ReLU, softmax
//! cross-entropy, SGD with momentum) but it is a real learner with real
//! gradients — enough to demonstrate convergence equivalence, which is the
//! property the paper claims.

pub mod mlp;
pub mod tensor;
pub mod train;

pub use mlp::Mlp;
pub use tensor::Matrix;
pub use train::{
    train_through_coordinated_group, train_through_loader, EpochAccuracy, TrainConfig,
};
