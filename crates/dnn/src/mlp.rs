//! A two-layer perceptron with softmax cross-entropy and SGD + momentum.

use crate::tensor::Matrix;

/// A multi-layer perceptron classifier: `input → hidden (ReLU) → classes`.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
    vw1: Matrix,
    vb1: Matrix,
    vw2: Matrix,
    vb2: Matrix,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
}

impl Mlp {
    /// Create an MLP with the given layer sizes and a deterministic seed.
    pub fn new(input: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "need at least two classes");
        Mlp {
            w1: Matrix::xavier(input, hidden, seed),
            b1: Matrix::zeros(1, hidden),
            w2: Matrix::xavier(hidden, classes, seed.wrapping_add(1)),
            b2: Matrix::zeros(1, classes),
            vw1: Matrix::zeros(input, hidden),
            vb1: Matrix::zeros(1, hidden),
            vw2: Matrix::zeros(hidden, classes),
            vb2: Matrix::zeros(1, classes),
            learning_rate: 0.05,
            momentum: 0.9,
        }
    }

    /// Forward pass: returns `(hidden_activations, class_probabilities)`.
    fn forward(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut h = x.matmul(&self.w1);
        h.add_row_broadcast(&self.b1);
        h.map_inplace(|v| v.max(0.0));
        let mut logits = h.matmul(&self.w2);
        logits.add_row_broadcast(&self.b2);
        (h, softmax_rows(&logits))
    }

    /// Predicted class for each row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<u32> {
        let (_, probs) = self.forward(x);
        argmax_rows(&probs)
    }

    /// Fraction of rows whose prediction matches `labels`.
    pub fn accuracy(&self, x: &Matrix, labels: &[u32]) -> f64 {
        assert_eq!(x.rows(), labels.len());
        let preds = self.predict(x);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// One SGD step on a minibatch; returns the mean cross-entropy loss.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[u32]) -> f32 {
        assert_eq!(x.rows(), labels.len(), "one label per row");
        let n = x.rows() as f32;
        let (h, probs) = self.forward(x);

        // Loss and dLogits = probs - onehot(labels).
        let mut dlogits = probs.clone();
        let mut loss = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            let p = probs.get(i, label as usize).max(1e-9);
            loss -= p.ln();
            dlogits.set(i, label as usize, dlogits.get(i, label as usize) - 1.0);
        }
        dlogits.map_inplace(|v| v / n);

        // Gradients.
        let dw2 = h.transpose().matmul(&dlogits);
        let db2 = dlogits.sum_rows();
        let mut dh = dlogits.matmul(&self.w2.transpose());
        // ReLU gate.
        for i in 0..dh.rows() {
            for j in 0..dh.cols() {
                if h.get(i, j) <= 0.0 {
                    dh.set(i, j, 0.0);
                }
            }
        }
        let dw1 = x.transpose().matmul(&dh);
        let db1 = dh.sum_rows();

        // Momentum SGD.
        let lr = self.learning_rate;
        let mu = self.momentum;
        for (v, g) in [
            (&mut self.vw1, &dw1),
            (&mut self.vb1, &db1),
            (&mut self.vw2, &dw2),
            (&mut self.vb2, &db2),
        ] {
            let mut scaled = v.clone();
            scaled.map_inplace(|x| x * mu);
            scaled.add_scaled(g, -lr);
            *v = scaled;
        }
        self.w1.add_scaled(&self.vw1.clone(), 1.0);
        self.b1.add_scaled(&self.vb1.clone(), 1.0);
        self.w2.add_scaled(&self.vw2.clone(), 1.0);
        self.b2.add_scaled(&self.vb2.clone(), 1.0);

        loss / n
    }
}

fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let mut max = f32::NEG_INFINITY;
        for j in 0..out.cols() {
            max = max.max(out.get(i, j));
        }
        let mut sum = 0.0;
        for j in 0..out.cols() {
            let e = (out.get(i, j) - max).exp();
            out.set(i, j, e);
            sum += e;
        }
        for j in 0..out.cols() {
            out.set(i, j, out.get(i, j) / sum);
        }
    }
    out
}

fn argmax_rows(m: &Matrix) -> Vec<u32> {
    (0..m.rows())
        .map(|i| {
            let mut best = 0usize;
            for j in 1..m.cols() {
                if m.get(i, j) > m.get(i, best) {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable 2-class toy problem.
    fn toy_batch(n: usize) -> (Matrix, Vec<u32>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as u32;
            let sign = if cls == 0 { 1.0 } else { -1.0 };
            let jitter = (i as f32 * 0.37).sin() * 0.1;
            data.push(sign * 1.0 + jitter);
            data.push(sign * 0.5 - jitter);
            labels.push(cls);
        }
        (Matrix::from_vec(n, 2, data), labels)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&m);
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| s.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut mlp = Mlp::new(2, 16, 2, 42);
        let (x, y) = toy_batch(64);
        let first_loss = mlp.train_batch(&x, &y);
        let mut last_loss = first_loss;
        for _ in 0..200 {
            last_loss = mlp.train_batch(&x, &y);
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss should drop: {first_loss} -> {last_loss}"
        );
        assert!(mlp.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn identical_seeds_and_data_give_identical_models() {
        let (x, y) = toy_batch(32);
        let mut a = Mlp::new(2, 8, 2, 7);
        let mut b = Mlp::new(2, 8, 2, 7);
        for _ in 0..10 {
            a.train_batch(&x, &y);
            b.train_batch(&x, &y);
        }
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.accuracy(&x, &y), b.accuracy(&x, &y));
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let mlp = Mlp::new(2, 8, 2, 3);
        let (x, y) = toy_batch(200);
        let acc = mlp.accuracy(&x, &y);
        assert!(acc > 0.2 && acc < 0.8, "untrained accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let mut mlp = Mlp::new(2, 4, 2, 0);
        let (x, _) = toy_batch(8);
        mlp.train_batch(&x, &[0, 1]);
    }
}
