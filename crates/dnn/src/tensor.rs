//! A minimal dense-matrix type with just the operations the MLP needs.

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Deterministic small pseudo-random initialisation (Xavier-ish scale).
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let scale = (2.0 / (rows + cols) as f32).sqrt();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u =
                    (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32;
                (u - 0.5) * 2.0 * scale
            })
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Add `row` (a 1 × cols matrix) to every row of `self`.
    pub fn add_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.data[i * self.cols + j] += row.get(0, j);
            }
        }
    }

    /// Column-wise sum, producing a 1 × cols matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.get(i, j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_scaled_and_broadcast() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.get(1, 1), 2.0);
        let mut c = Matrix::zeros(2, 2);
        c.add_row_broadcast(&Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 1), -1.0);
    }

    #[test]
    fn sum_rows() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.sum_rows();
        assert_eq!(s.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(4, 4, 7);
        let b = Matrix::xavier(4, 4, 7);
        assert_eq!(a, b);
        let scale = (2.0 / 8.0_f32).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= scale + 1e-6));
        assert!(a.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
