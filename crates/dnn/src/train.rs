//! Training loops that consume CoorDL sessions.
//!
//! Both entry points decode `LabeledVectorStore` items delivered by a
//! [`Session`] into feature matrices and run the same SGD loop, so any
//! difference in accuracy between the baseline path and the coordinated path
//! could only come from the loaders delivering different sample streams —
//! which is exactly what the tests rule out.

use crate::mlp::Mlp;
use crate::tensor::Matrix;
use coordl::{Minibatch, Session};
use dataset::{DataSource, LabeledVectorStore};

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Number of epochs to train.
    pub epochs: u64,
    /// Model initialisation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden: 32,
            epochs: 5,
            seed: 42,
        }
    }
}

/// Accuracy measured at the end of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochAccuracy {
    /// Epoch index.
    pub epoch: u64,
    /// Training-set accuracy in `[0, 1]` at the end of the epoch.
    pub accuracy: f64,
    /// Mean training loss over the epoch.
    pub mean_loss: f64,
}

fn batch_to_matrix(batch: &Minibatch, dims: usize) -> (Matrix, Vec<u32>) {
    let mut data = Vec::with_capacity(batch.len() * dims);
    let mut labels = Vec::with_capacity(batch.len());
    for sample in &batch.samples {
        let (label, feats) = LabeledVectorStore::decode(&sample.data);
        assert_eq!(feats.len(), dims, "decoded feature width mismatch");
        data.extend(feats);
        labels.push(label);
    }
    (Matrix::from_vec(batch.len(), dims, data), labels)
}

fn evaluate(model: &Mlp, store: &LabeledVectorStore) -> f64 {
    let n = store.len();
    let dims = store.dims();
    let mut data = Vec::with_capacity(n as usize * dims);
    let mut labels = Vec::with_capacity(n as usize);
    for i in 0..n {
        let (label, feats) = LabeledVectorStore::decode(&dataset::DataSource::read(store, i));
        data.extend(feats);
        labels.push(label);
    }
    model.accuracy(&Matrix::from_vec(n as usize, dims, data), &labels)
}

/// Train an MLP by pulling minibatches from a single-mode [`Session`].
///
/// The session must be backed by a [`LabeledVectorStore`] (passed again here
/// for decoding metadata and evaluation).
pub fn train_through_loader(
    session: &Session,
    store: &LabeledVectorStore,
    config: &TrainConfig,
) -> Vec<EpochAccuracy> {
    let mut model = Mlp::new(
        store.dims(),
        config.hidden,
        store.classes() as usize,
        config.seed,
    );
    let mut history = Vec::new();
    for epoch in 0..config.epochs {
        let mut losses = Vec::new();
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let batch = batch.expect("single-mode epoch should complete");
            let (x, y) = batch_to_matrix(&batch, store.dims());
            losses.push(model.train_batch(&x, &y) as f64);
        }
        history.push(EpochAccuracy {
            epoch,
            accuracy: evaluate(&model, store),
            mean_loss: losses.iter().sum::<f64>() / losses.len().max(1) as f64,
        });
    }
    history
}

/// Train one MLP per job of a coordinated [`Session`], all sharing the
/// single fetch + prep sweep per epoch, and return each job's accuracy
/// history.
pub fn train_through_coordinated_group(
    session: &Session,
    store: &LabeledVectorStore,
    config: &TrainConfig,
) -> Vec<Vec<EpochAccuracy>> {
    let num_jobs = session.num_jobs();
    let mut models: Vec<Mlp> = (0..num_jobs)
        .map(|j| {
            Mlp::new(
                store.dims(),
                config.hidden,
                store.classes() as usize,
                // Different HP-search jobs start from different seeds (they
                // explore different hyper-parameters); job 0 matches the
                // baseline loader's seed so trajectories can be compared.
                config.seed + j as u64,
            )
        })
        .collect();
    let mut history = vec![Vec::new(); num_jobs];

    for epoch in 0..config.epochs {
        let run = session.epoch(epoch);
        // Consumers run on their own threads, as concurrent HP jobs would.
        let handles: Vec<_> = models
            .drain(..)
            .enumerate()
            .map(|(j, mut model)| {
                let stream = run.stream(j);
                let dims = store.dims();
                std::thread::spawn(move || {
                    let mut losses = Vec::new();
                    for batch in stream {
                        let batch = batch.expect("coordinated epoch should not fail");
                        let mut data = Vec::with_capacity(batch.len() * dims);
                        let mut labels = Vec::with_capacity(batch.len());
                        for sample in &batch.samples {
                            let (label, feats) = LabeledVectorStore::decode(&sample.data);
                            data.extend(feats);
                            labels.push(label);
                        }
                        let x = Matrix::from_vec(batch.len(), dims, data);
                        losses.push(model.train_batch(&x, &labels) as f64);
                    }
                    (model, losses)
                })
            })
            .collect();
        for (j, handle) in handles.into_iter().enumerate() {
            let (model, losses) = handle.join().expect("consumer thread should not panic");
            history[j].push(EpochAccuracy {
                epoch,
                accuracy: evaluate(&model, store),
                mean_loss: losses.iter().sum::<f64>() / losses.len().max(1) as f64,
            });
            models.push(model);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordl::{Mode, SessionConfig};
    use prep::{ExecutablePipeline, PrepPipeline};
    use std::sync::Arc;
    use std::time::Duration;

    /// A prep pipeline that leaves the payload untouched: the labelled-vector
    /// items are already "decoded" and any byte-level augmentation would
    /// corrupt the floats.  Exercising the loader machinery (fetch, cache,
    /// staging, ordering) is what matters here.
    fn identity_pipeline() -> ExecutablePipeline {
        ExecutablePipeline::new(
            PrepPipeline {
                name: "identity".into(),
                transforms: vec![],
            },
            1,
            0,
        )
    }

    fn store() -> Arc<LabeledVectorStore> {
        Arc::new(LabeledVectorStore::new(240, 8, 3, 77))
    }

    fn session_config() -> SessionConfig {
        SessionConfig {
            batch_size: 24,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 5,
            cache_capacity_bytes: 1 << 20,
            staging_window: 8,
            take_timeout: Duration::from_secs(2),
            fetch_threads: 1,
            fetch_shards: 0,
        }
    }

    fn session(store: &Arc<LabeledVectorStore>, mode: Mode) -> Session {
        Session::builder(
            Arc::clone(store) as Arc<dyn dataset::DataSource>,
            session_config(),
        )
        .mode(mode)
        .pipeline(identity_pipeline())
        .build()
        .unwrap()
    }

    #[test]
    fn model_learns_through_the_plain_loader() {
        let store = store();
        let single = session(&store, Mode::Single);
        let history = train_through_loader(&single, &store, &TrainConfig::default());
        assert_eq!(history.len(), 5);
        let final_acc = history.last().unwrap().accuracy;
        assert!(final_acc > 0.8, "final accuracy {final_acc}");
        assert!(history.last().unwrap().mean_loss < history[0].mean_loss);
    }

    #[test]
    fn coordinated_group_reaches_the_same_accuracy_as_the_plain_loader() {
        // The paper's Figure 10 claim, in miniature: CoorDL's coordination
        // changes nothing about what the model sees per epoch, so the
        // accuracy-vs-epoch curve matches the baseline loader's exactly
        // (identical seeds and sample order imply identical models).
        let store = store();
        let config = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };

        let single = session(&store, Mode::Single);
        let baseline = train_through_loader(&single, &store, &config);

        let coordinated_session = session(&store, Mode::Coordinated { jobs: 2 });
        let coordinated = train_through_coordinated_group(&coordinated_session, &store, &config);

        // Job 0 shares the baseline's model seed and sample order: the
        // trajectories must be identical epoch by epoch.
        for (b, c) in baseline.iter().zip(&coordinated[0]) {
            assert!(
                (b.accuracy - c.accuracy).abs() < 1e-9,
                "epoch {}: baseline {} vs coordinated {}",
                b.epoch,
                b.accuracy,
                c.accuracy
            );
        }
        // The other job (different init) still learns: accuracy improves over
        // its first epoch and ends well above the 1/3 chance level.
        let first = coordinated[1].first().unwrap().accuracy;
        let last = coordinated[1].last().unwrap().accuracy;
        assert!(
            last > first && last > 0.5,
            "job 1 should learn: first epoch {first}, last epoch {last}"
        );
    }
}
