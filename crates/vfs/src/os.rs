//! Real-disk [`Vfs`] implementation over `std::fs`, rooted under a
//! directory.

use crate::{validate_path, FileHandle, StatCells, Vfs, VfsError, VfsStats};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// A filesystem of real files under a root directory.
///
/// All VFS paths resolve strictly inside the root (path validation rejects
/// `..` and absolute components), so a `Session` pointed at a scratch
/// directory cannot touch anything outside it.  Bytes written through one
/// instance are visible to any later instance over the same root — the
/// property the persistent SSD tier's restart warm-up relies on.
/// Slot table entry: the VFS path a handle was opened under, plus the open
/// file (shared so reads need no lock on the table).
type HandleSlot = Option<(String, Arc<File>)>;

pub struct OsVfs {
    root: PathBuf,
    handles: Mutex<Vec<HandleSlot>>,
    stats: StatCells,
}

fn io_err(path: &str, err: io::Error) -> VfsError {
    VfsError::Io {
        path: path.to_string(),
        detail: err.to_string(),
    }
}

impl OsVfs {
    /// Open (creating if needed) a VFS rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, VfsError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root.to_string_lossy(), e))?;
        Ok(OsVfs {
            root,
            handles: Mutex::new(Vec::new()),
            stats: StatCells::default(),
        })
    }

    /// The root directory all paths resolve under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn full_path(&self, path: &str) -> Result<PathBuf, VfsError> {
        validate_path(path)?;
        Ok(self.root.join(path))
    }

    fn resolve(&self, file: FileHandle) -> Result<(String, Arc<File>), VfsError> {
        self.handles
            .lock()
            .get(file.0)
            .and_then(|slot| slot.clone())
            .ok_or(VfsError::BadHandle)
    }
}

impl Vfs for OsVfs {
    fn open(&self, path: &str, create: bool) -> Result<FileHandle, VfsError> {
        let full = self.full_path(path)?;
        if create {
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(path, e))?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(&full)
            .map_err(|e| {
                if e.kind() == io::ErrorKind::NotFound {
                    VfsError::NotFound(path.to_string())
                } else {
                    io_err(path, e)
                }
            })?;
        let mut handles = self.handles.lock();
        let slot = (path.to_string(), Arc::new(file));
        match handles.iter_mut().enumerate().find(|(_, s)| s.is_none()) {
            Some((idx, empty)) => {
                *empty = Some(slot);
                Ok(FileHandle(idx))
            }
            None => {
                handles.push(Some(slot));
                Ok(FileHandle(handles.len() - 1))
            }
        }
    }

    fn read_at(&self, file: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, VfsError> {
        let (path, file) = self.resolve(file)?;
        let mut buf = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            match file.read_at(&mut buf[filled..], offset + filled as u64) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        buf.truncate(filled);
        self.stats.record_read(filled as u64);
        Ok(buf)
    }

    fn write_at(&self, file: FileHandle, offset: u64, data: &[u8]) -> Result<(), VfsError> {
        let (path, file) = self.resolve(file)?;
        file.write_all_at(data, offset)
            .map_err(|e| io_err(&path, e))?;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&self, file: FileHandle) -> Result<(), VfsError> {
        let (path, file) = self.resolve(file)?;
        file.sync_data().map_err(|e| io_err(&path, e))?;
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self, file: FileHandle) -> Result<u64, VfsError> {
        let (path, file) = self.resolve(file)?;
        Ok(file.metadata().map_err(|e| io_err(&path, e))?.len())
    }

    fn close(&self, file: FileHandle) -> Result<(), VfsError> {
        let mut handles = self.handles.lock();
        match handles.get_mut(file.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(VfsError::BadHandle),
        }
    }

    fn exists(&self, path: &str) -> bool {
        match self.full_path(path) {
            Ok(full) => full.is_file(),
            Err(_) => false,
        }
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        let full = self.full_path(path)?;
        std::fs::remove_file(&full).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                VfsError::NotFound(path.to_string())
            } else {
                io_err(path, e)
            }
        })
    }

    fn name(&self) -> &'static str {
        "os"
    }

    fn stats(&self) -> VfsStats {
        self.stats.snapshot()
    }
}
