//! A minimal virtual filesystem: the real-bytes bottom layer of the stack.
//!
//! Every byte the runtime serves today is synthetic; this crate puts an
//! actual file layer underneath it, in the spirit of the vfs/fdtable
//! layering of OS-like runtimes.  A [`Vfs`] is a flat namespace of files
//! addressed by `/`-separated relative paths, with positional reads and
//! writes and an explicit durability barrier:
//!
//! * [`OsVfs`] — real `std::fs` I/O rooted under a directory, so spilled
//!   cache tiers and materialized datasets survive process restarts;
//! * [`MemVfs`] — a deterministic in-memory implementation with identical
//!   semantics, for tests and CI hosts without fast (or writable) disks.
//!
//! On top of the raw positional API sit the pieces the data-loading runtime
//! needs: [`Vfs::read_aligned`] (page-aligned spans with a configurable
//! readahead window), [`AlignedReader`] (a stateful reader whose sequential
//! reads hit the readahead buffer), and [`SpillStore`] (a manifest-backed
//! key→payload store that lets a cache tier persist demoted victims and a
//! restarted process warm itself back up from disk).

mod mem;
mod os;
mod spill;

pub use mem::MemVfs;
pub use os::OsVfs;
pub use spill::SpillStore;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The alignment unit of [`Vfs::read_aligned`]: physical reads start and end
/// on multiples of this many bytes, like page-cache-backed I/O.
pub const PAGE_SIZE: u64 = 4096;

/// Errors surfaced by VFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The path does not name an existing file.
    NotFound(String),
    /// The path is not a valid relative `/`-separated path.
    InvalidPath(String),
    /// The handle does not name an open file (already closed, or from
    /// another VFS instance).
    BadHandle,
    /// An underlying I/O operation failed.
    Io {
        /// The file the operation targeted.
        path: String,
        /// The OS error message.
        detail: String,
    },
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound(path) => write!(f, "file not found: {path}"),
            VfsError::InvalidPath(path) => write!(f, "invalid path: {path}"),
            VfsError::BadHandle => write!(f, "stale or foreign file handle"),
            VfsError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// An open file within one [`Vfs`] instance (an index into its fd table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(pub(crate) usize);

/// Cumulative I/O counters of one [`Vfs`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VfsStats {
    /// Positional reads issued.
    pub reads: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Positional writes issued.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Durability barriers issued.
    pub syncs: u64,
}

/// Shared atomic counters behind [`VfsStats`] (one per VFS instance).
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    reads: AtomicU64,
    bytes_read: AtomicU64,
    writes: AtomicU64,
    bytes_written: AtomicU64,
    syncs: AtomicU64,
}

impl StatCells {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> VfsStats {
        VfsStats {
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

/// Validate a `/`-separated relative path: non-empty components, no `.` or
/// `..`, no leading slash.  Both implementations share the same namespace
/// rules, so a path that works on [`MemVfs`] works on [`OsVfs`].
pub(crate) fn validate_path(path: &str) -> Result<(), VfsError> {
    if path.is_empty()
        || path
            .split('/')
            .any(|c| c.is_empty() || c == "." || c == "..")
        || path.contains('\\')
    {
        return Err(VfsError::InvalidPath(path.to_string()));
    }
    Ok(())
}

/// One page-aligned span read by [`Vfs::read_aligned`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedSpan {
    /// Absolute file offset of the first byte of `data` (a multiple of
    /// [`PAGE_SIZE`]).
    pub start: u64,
    /// The span's bytes (short only at end of file).
    pub data: Vec<u8>,
}

impl AlignedSpan {
    /// The bytes `[offset, offset + len)` if this span fully covers them.
    pub fn slice(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let rel = offset.checked_sub(self.start)? as usize;
        let end = rel.checked_add(len)?;
        self.data.get(rel..end)
    }
}

/// A flat virtual filesystem with positional I/O.
///
/// Paths are `/`-separated and relative; implementations create missing
/// parent directories on `open(path, create = true)`.  All methods are
/// thread-safe; positional reads and writes on one handle may proceed
/// concurrently.
pub trait Vfs: Send + Sync {
    /// Open `path`, creating it (and its parent directories) when `create`
    /// is set; opening a missing file without `create` is
    /// [`VfsError::NotFound`].
    fn open(&self, path: &str, create: bool) -> Result<FileHandle, VfsError>;

    /// Read up to `len` bytes at `offset`.  Returns fewer bytes only when
    /// the read crosses end of file (zero bytes at or past it).
    fn read_at(&self, file: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, VfsError>;

    /// Write `data` at `offset`, extending the file (zero-filled) when the
    /// offset is past the current end.
    fn write_at(&self, file: FileHandle, offset: u64, data: &[u8]) -> Result<(), VfsError>;

    /// Durability barrier: all writes issued on `file` so far survive a
    /// restart of the process (a no-op guarantee for [`MemVfs`], whose
    /// "restart" is reusing the same instance).
    fn sync(&self, file: FileHandle) -> Result<(), VfsError>;

    /// Current length of the file in bytes.
    fn len(&self, file: FileHandle) -> Result<u64, VfsError>;

    /// Release the handle.  Using it afterwards is [`VfsError::BadHandle`].
    fn close(&self, file: FileHandle) -> Result<(), VfsError>;

    /// Whether `path` names an existing file.
    fn exists(&self, path: &str) -> bool;

    /// Delete the file at `path` (missing files are [`VfsError::NotFound`]).
    fn remove(&self, path: &str) -> Result<(), VfsError>;

    /// Implementation name used in reports (`"os"` / `"mem"`).
    fn name(&self) -> &'static str;

    /// Cumulative I/O counters of this instance.
    fn stats(&self) -> VfsStats;

    /// Read the page-aligned span covering `[offset, offset + len)` plus a
    /// readahead window of `readahead_pages` further pages, in one physical
    /// read.  The span starts and ends on [`PAGE_SIZE`] boundaries (short
    /// only at end of file), which is what makes the I/O pattern match what
    /// a page cache would issue for the same request.
    fn read_aligned(
        &self,
        file: FileHandle,
        offset: u64,
        len: usize,
        readahead_pages: u32,
    ) -> Result<AlignedSpan, VfsError> {
        let start = (offset / PAGE_SIZE) * PAGE_SIZE;
        let logical_end = offset + len as u64;
        let span_end =
            logical_end.div_ceil(PAGE_SIZE) * PAGE_SIZE + u64::from(readahead_pages) * PAGE_SIZE;
        let data = self.read_at(file, start, (span_end - start) as usize)?;
        Ok(AlignedSpan { start, data })
    }
}

/// A stateful page-aligned reader over one open file: each miss reads one
/// aligned span (request pages + the readahead window) and keeps it, so
/// sequential readers are served from the buffered span instead of touching
/// the device again — the classic readahead win the `fs-sweep` bench grid
/// measures.
pub struct AlignedReader {
    vfs: Arc<dyn Vfs>,
    file: FileHandle,
    readahead_pages: u32,
    span: Mutex<Option<AlignedSpan>>,
    span_hits: AtomicU64,
    span_misses: AtomicU64,
}

impl AlignedReader {
    /// Wrap an open `file` of `vfs` with a readahead window of
    /// `readahead_pages` pages (0 disables readahead; reads are still
    /// page-aligned).
    pub fn new(vfs: Arc<dyn Vfs>, file: FileHandle, readahead_pages: u32) -> Self {
        AlignedReader {
            vfs,
            file,
            readahead_pages,
            span: Mutex::new(None),
            span_hits: AtomicU64::new(0),
            span_misses: AtomicU64::new(0),
        }
    }

    /// The readahead window in pages.
    pub fn readahead_pages(&self) -> u32 {
        self.readahead_pages
    }

    /// Read exactly `[offset, offset + len)`, from the buffered span when it
    /// covers the range, otherwise via one fresh aligned read.
    ///
    /// Reads that run past end of file are truncated I/O at the device; the
    /// caller sees them as a short result, exactly like [`Vfs::read_at`].
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, VfsError> {
        let mut span = self.span.lock();
        if let Some(cached) = span.as_ref() {
            if let Some(bytes) = cached.slice(offset, len) {
                self.span_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(bytes.to_vec());
            }
        }
        self.span_misses.fetch_add(1, Ordering::Relaxed);
        let fresh = self
            .vfs
            .read_aligned(self.file, offset, len, self.readahead_pages)?;
        let bytes = match fresh.slice(offset, len) {
            Some(b) => b.to_vec(),
            // Short span: the request crosses end of file.
            None => {
                let rel = (offset - fresh.start) as usize;
                fresh.data.get(rel..).unwrap_or(&[]).to_vec()
            }
        };
        *span = Some(fresh);
        Ok(bytes)
    }

    /// Reads served from the buffered span without touching the VFS.
    pub fn span_hits(&self) -> u64 {
        self.span_hits.load(Ordering::Relaxed)
    }

    /// Reads that issued a physical aligned read.
    pub fn span_misses(&self) -> u64 {
        self.span_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_both(test: impl Fn(Arc<dyn Vfs>)) {
        test(Arc::new(MemVfs::new()));
        let dir = std::env::temp_dir().join(format!(
            "coordl-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        test(Arc::new(OsVfs::new(&dir).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_read_write_len_roundtrip_on_both_impls() {
        with_both(|vfs| {
            assert!(!vfs.exists("a/b.bin"));
            let f = vfs.open("a/b.bin", true).unwrap();
            vfs.write_at(f, 0, b"hello world").unwrap();
            assert_eq!(vfs.len(f).unwrap(), 11);
            assert_eq!(vfs.read_at(f, 6, 5).unwrap(), b"world");
            assert_eq!(vfs.read_at(f, 6, 100).unwrap(), b"world", "short at EOF");
            assert_eq!(vfs.read_at(f, 100, 4).unwrap(), b"", "past EOF");
            vfs.sync(f).unwrap();
            assert!(vfs.exists("a/b.bin"));
            // Reopen sees the same bytes.
            let g = vfs.open("a/b.bin", false).unwrap();
            assert_eq!(vfs.read_at(g, 0, 11).unwrap(), b"hello world");
            vfs.close(f).unwrap();
            vfs.close(g).unwrap();
            assert_eq!(vfs.read_at(f, 0, 1), Err(VfsError::BadHandle));
            let stats = vfs.stats();
            assert!(stats.reads >= 4 && stats.writes == 1 && stats.syncs == 1);
            assert_eq!(stats.bytes_written, 11);
        });
    }

    #[test]
    fn sparse_writes_zero_fill_the_gap() {
        with_both(|vfs| {
            let f = vfs.open("sparse.bin", true).unwrap();
            vfs.write_at(f, 10, b"xy").unwrap();
            assert_eq!(vfs.len(f).unwrap(), 12);
            assert_eq!(vfs.read_at(f, 0, 12).unwrap(), b"\0\0\0\0\0\0\0\0\0\0xy");
        });
    }

    #[test]
    fn missing_files_and_bad_paths_are_typed_errors() {
        with_both(|vfs| {
            assert_eq!(
                vfs.open("nope.bin", false),
                Err(VfsError::NotFound("nope.bin".into()))
            );
            assert_eq!(
                vfs.remove("nope.bin"),
                Err(VfsError::NotFound("nope.bin".into()))
            );
            for bad in ["", "/abs", "a//b", "../up", "a/./b"] {
                assert_eq!(
                    vfs.open(bad, true),
                    Err(VfsError::InvalidPath(bad.into())),
                    "{bad:?}"
                );
            }
        });
    }

    #[test]
    fn remove_deletes_the_file() {
        with_both(|vfs| {
            let f = vfs.open("gone.bin", true).unwrap();
            vfs.write_at(f, 0, b"data").unwrap();
            vfs.close(f).unwrap();
            vfs.remove("gone.bin").unwrap();
            assert!(!vfs.exists("gone.bin"));
            assert_eq!(
                vfs.open("gone.bin", false),
                Err(VfsError::NotFound("gone.bin".into()))
            );
        });
    }

    #[test]
    fn read_aligned_spans_are_page_aligned_with_readahead() {
        with_both(|vfs| {
            let f = vfs.open("big.bin", true).unwrap();
            let content: Vec<u8> = (0..3 * PAGE_SIZE as usize).map(|i| i as u8).collect();
            vfs.write_at(f, 0, &content).unwrap();
            // A 10-byte read in the middle of page 1, readahead 1 page.
            let span = vfs.read_aligned(f, PAGE_SIZE + 100, 10, 1).unwrap();
            assert_eq!(span.start, PAGE_SIZE);
            assert_eq!(span.data.len(), 2 * PAGE_SIZE as usize, "page + readahead");
            assert_eq!(
                span.slice(PAGE_SIZE + 100, 10).unwrap(),
                &content[PAGE_SIZE as usize + 100..PAGE_SIZE as usize + 110]
            );
            // Readahead past EOF truncates instead of failing.
            let tail = vfs.read_aligned(f, 2 * PAGE_SIZE + 1, 8, 4).unwrap();
            assert_eq!(tail.start, 2 * PAGE_SIZE);
            assert_eq!(tail.data.len(), PAGE_SIZE as usize);
        });
    }

    #[test]
    fn aligned_reader_serves_sequential_reads_from_the_readahead_span() {
        with_both(|vfs| {
            let f = vfs.open("seq.bin", true).unwrap();
            let content: Vec<u8> = (0..8 * PAGE_SIZE).map(|i| (i * 7) as u8).collect();
            vfs.write_at(f, 0, &content).unwrap();
            let reads_before = vfs.stats().reads;
            let reader = AlignedReader::new(Arc::clone(&vfs), f, 3);
            // 16 sequential 1 KiB reads cover 4 pages; with a 3-page (+1
            // request page) window every 4th page boundary misses.
            for i in 0..16u64 {
                let got = reader.read(i * 1024, 1024).unwrap();
                assert_eq!(
                    got,
                    &content[(i * 1024) as usize..(i * 1024 + 1024) as usize]
                );
            }
            assert_eq!(reader.span_misses(), 1, "one physical read for 4 pages");
            assert_eq!(reader.span_hits(), 15);
            assert_eq!(vfs.stats().reads - reads_before, 1);
            // A zero-readahead reader touches the device once per page.
            let bare = AlignedReader::new(Arc::clone(&vfs), f, 0);
            for i in 0..16u64 {
                let _ = bare.read(i * 1024, 1024).unwrap();
            }
            assert_eq!(bare.span_misses(), 4, "one miss per page");
        });
    }

    #[test]
    fn os_vfs_contents_survive_reopen_from_the_same_root() {
        let dir = std::env::temp_dir().join(format!("coordl-vfs-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let vfs = OsVfs::new(&dir).unwrap();
            let f = vfs.open("state/epoch.bin", true).unwrap();
            vfs.write_at(f, 0, b"persisted").unwrap();
            vfs.sync(f).unwrap();
        }
        // A fresh instance over the same root sees the bytes: the restart
        // story every persistent tier builds on.
        let vfs = OsVfs::new(&dir).unwrap();
        assert!(vfs.exists("state/epoch.bin"));
        let f = vfs.open("state/epoch.bin", false).unwrap();
        assert_eq!(vfs.read_at(f, 0, 9).unwrap(), b"persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
