//! Deterministic in-memory [`Vfs`] implementation.

use crate::{validate_path, FileHandle, StatCells, Vfs, VfsError, VfsStats};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

type FileBytes = Arc<Mutex<Vec<u8>>>;

/// An in-memory filesystem with the same semantics as [`crate::OsVfs`].
///
/// "Persistence" is scoped to the instance: handing the same `Arc<MemVfs>`
/// to a rebuilt `Session` models a restart over a surviving disk, which is
/// exactly what the restart warm-up tests exercise on CI hosts where real
/// disk I/O would be slow or unwritable.
pub struct MemVfs {
    files: Mutex<BTreeMap<String, FileBytes>>,
    handles: Mutex<Vec<Option<(String, FileBytes)>>>,
    stats: StatCells,
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemVfs {
            files: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
            stats: StatCells::default(),
        }
    }

    fn resolve(&self, file: FileHandle) -> Result<(String, FileBytes), VfsError> {
        self.handles
            .lock()
            .get(file.0)
            .and_then(|slot| slot.clone())
            .ok_or(VfsError::BadHandle)
    }
}

impl Default for MemVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs for MemVfs {
    fn open(&self, path: &str, create: bool) -> Result<FileHandle, VfsError> {
        validate_path(path)?;
        let mut files = self.files.lock();
        let bytes = match files.get(path) {
            Some(bytes) => Arc::clone(bytes),
            None if create => {
                let bytes: FileBytes = Arc::new(Mutex::new(Vec::new()));
                files.insert(path.to_string(), Arc::clone(&bytes));
                bytes
            }
            None => return Err(VfsError::NotFound(path.to_string())),
        };
        drop(files);
        let mut handles = self.handles.lock();
        let slot = (path.to_string(), bytes);
        match handles.iter_mut().enumerate().find(|(_, s)| s.is_none()) {
            Some((idx, empty)) => {
                *empty = Some(slot);
                Ok(FileHandle(idx))
            }
            None => {
                handles.push(Some(slot));
                Ok(FileHandle(handles.len() - 1))
            }
        }
    }

    fn read_at(&self, file: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, VfsError> {
        let (_, bytes) = self.resolve(file)?;
        let bytes = bytes.lock();
        let start = (offset as usize).min(bytes.len());
        let end = start.saturating_add(len).min(bytes.len());
        let out = bytes[start..end].to_vec();
        self.stats.record_read(out.len() as u64);
        Ok(out)
    }

    fn write_at(&self, file: FileHandle, offset: u64, data: &[u8]) -> Result<(), VfsError> {
        let (_, bytes) = self.resolve(file)?;
        let mut bytes = bytes.lock();
        let end = offset as usize + data.len();
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[offset as usize..end].copy_from_slice(data);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&self, file: FileHandle) -> Result<(), VfsError> {
        self.resolve(file)?;
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self, file: FileHandle) -> Result<u64, VfsError> {
        let (_, bytes) = self.resolve(file)?;
        let len = bytes.lock().len() as u64;
        Ok(len)
    }

    fn close(&self, file: FileHandle) -> Result<(), VfsError> {
        let mut handles = self.handles.lock();
        match handles.get_mut(file.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(VfsError::BadHandle),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        validate_path(path)?;
        // Open handles keep their Arc alive, matching unlinked-but-open
        // POSIX files.
        match self.files.lock().remove(path) {
            Some(_) => Ok(()),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn name(&self) -> &'static str {
        "mem"
    }

    fn stats(&self) -> VfsStats {
        self.stats.snapshot()
    }
}
