//! [`SpillStore`]: a manifest-backed key→payload store for persistent cache
//! tiers.
//!
//! Each store owns one directory of its [`Vfs`]: an append-only `MANIFEST`
//! log plus one payload file per resident key.  Every mutation appends a
//! line to the manifest (`+ <key> <len>` on insert, `- <key>` on remove) and
//! syncs it, so a fresh process can replay the log and rebuild the exact
//! resident set — that replay is how a restarted `Session` or `Server`
//! warms its SSD tier back up without re-reading the dataset.

use crate::{FileHandle, Vfs, VfsError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A durable map from `u64` keys to byte payloads under one VFS directory.
pub struct SpillStore {
    vfs: Arc<dyn Vfs>,
    dir: String,
    manifest: FileHandle,
    manifest_end: u64,
    entries: BTreeMap<u64, u64>,
}

impl SpillStore {
    /// Open the store at `dir`, replaying an existing manifest when one is
    /// present (an empty directory yields an empty store).
    ///
    /// Replay is defensive about torn writes: a trailing line cut mid-append
    /// can fail to parse (dropped outright), but it can also parse with a
    /// *truncated length* — `+ 11 600\n` cut to `+ 11 6` — which would
    /// silently serve a 6-byte prefix of an intact 600-byte payload.  Every
    /// replayed entry is therefore checked against its payload file and
    /// dropped unless the on-disk length matches the recorded one exactly.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &str) -> Result<Self, VfsError> {
        let manifest_path = format!("{dir}/MANIFEST");
        let manifest = vfs.open(&manifest_path, true)?;
        let mut manifest_end = vfs.len(manifest)?;
        let log = vfs.read_at(manifest, 0, manifest_end as usize)?;
        if log.last().is_some_and(|&b| b != b'\n') {
            // Seal a torn tail so the next append starts a fresh line
            // instead of merging into (and corrupting) the partial one.
            vfs.write_at(manifest, manifest_end, b"\n")?;
            manifest_end += 1;
            vfs.sync(manifest)?;
        }
        let mut replayed = BTreeMap::new();
        for line in String::from_utf8_lossy(&log).lines() {
            let mut fields = line.split(' ');
            let entry = match (fields.next(), fields.next(), fields.next()) {
                (Some("+"), Some(key), Some(len)) => key
                    .parse::<u64>()
                    .ok()
                    .zip(len.parse::<u64>().ok())
                    .map(|(k, l)| (k, Some(l))),
                (Some("-"), Some(key), None) => key.parse::<u64>().ok().map(|k| (k, None)),
                _ => None,
            };
            match entry {
                Some((key, Some(len))) => {
                    replayed.insert(key, len);
                }
                Some((key, None)) => {
                    replayed.remove(&key);
                }
                None => {
                    // A torn trailing line (e.g. a crash mid-append) only
                    // loses that entry, never corrupts earlier ones.
                }
            }
        }
        let mut entries = BTreeMap::new();
        for (key, len) in replayed {
            match vfs.open(&format!("{dir}/{key}.item"), false) {
                Ok(file) => {
                    let actual = vfs.len(file)?;
                    vfs.close(file)?;
                    if actual == len {
                        entries.insert(key, len);
                    }
                    // Length mismatch: the line's length field was torn —
                    // never serve a prefix (or a short read) as a payload.
                }
                // Payloads are synced before their manifest line, so a
                // recorded key with no payload file is itself a torn line.
                Err(VfsError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(SpillStore {
            vfs,
            dir: dir.to_string(),
            manifest,
            manifest_end,
            entries,
        })
    }

    fn payload_path(&self, key: u64) -> String {
        format!("{}/{key}.item", self.dir)
    }

    fn append_manifest(&mut self, line: &str) -> Result<(), VfsError> {
        self.vfs
            .write_at(self.manifest, self.manifest_end, line.as_bytes())?;
        self.manifest_end += line.len() as u64;
        self.vfs.sync(self.manifest)
    }

    /// Keys currently resident, with their payload lengths, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&k, &l)| (k, l))
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Persist `bytes` under `key` (payload file first, then the manifest
    /// line, so a replayed manifest never references a missing payload).
    pub fn write(&mut self, key: u64, bytes: &[u8]) -> Result<(), VfsError> {
        let file = self.vfs.open(&self.payload_path(key), true)?;
        self.vfs.write_at(file, 0, bytes)?;
        self.vfs.sync(file)?;
        self.vfs.close(file)?;
        let already_recorded = self.entries.get(&key) == Some(&(bytes.len() as u64));
        self.entries.insert(key, bytes.len() as u64);
        if !already_recorded {
            self.append_manifest(&format!("+ {key} {}\n", bytes.len()))?;
        }
        Ok(())
    }

    /// Read the payload stored under `key`.
    ///
    /// The payload file must hold *exactly* the recorded byte count: a file
    /// that shrank or grew behind the store's back (external truncation, a
    /// torn manifest length) is a typed [`VfsError::Io`], never a silently
    /// served prefix.
    pub fn read(&self, key: u64) -> Result<Vec<u8>, VfsError> {
        let len = *self
            .entries
            .get(&key)
            .ok_or_else(|| VfsError::NotFound(self.payload_path(key)))?;
        let file = self.vfs.open(&self.payload_path(key), false)?;
        let actual = self.vfs.len(file)?;
        if actual != len {
            self.vfs.close(file)?;
            return Err(VfsError::Io {
                path: self.payload_path(key),
                detail: format!(
                    "torn or truncated payload: manifest records {len} bytes, file has {actual}"
                ),
            });
        }
        let bytes = self.vfs.read_at(file, 0, len as usize)?;
        self.vfs.close(file)?;
        if bytes.len() as u64 != len {
            return Err(VfsError::Io {
                path: self.payload_path(key),
                detail: format!(
                    "truncated payload: expected {len} bytes, got {}",
                    bytes.len()
                ),
            });
        }
        Ok(bytes)
    }

    /// Drop `key` from the store (no-op when absent).
    pub fn remove(&mut self, key: u64) -> Result<(), VfsError> {
        if self.entries.remove(&key).is_none() {
            return Ok(());
        }
        self.append_manifest(&format!("- {key}\n"))?;
        match self.vfs.remove(&self.payload_path(key)) {
            Ok(()) | Err(VfsError::NotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The VFS this store writes through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &str {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfs;

    fn mem() -> Arc<dyn Vfs> {
        Arc::new(MemVfs::new())
    }

    #[test]
    fn write_read_remove_roundtrip() {
        let vfs = mem();
        let mut store = SpillStore::open(Arc::clone(&vfs), "tier1").unwrap();
        assert!(store.is_empty());
        store.write(7, b"payload-seven").unwrap();
        store.write(9, b"nine").unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains(7));
        assert_eq!(store.read(7).unwrap(), b"payload-seven");
        assert_eq!(store.read(9).unwrap(), b"nine");
        store.remove(7).unwrap();
        assert!(!store.contains(7));
        assert_eq!(
            store.read(7),
            Err(VfsError::NotFound("tier1/7.item".into()))
        );
        store.remove(7).unwrap(); // idempotent
        assert_eq!(
            store.entries().collect::<Vec<_>>(),
            vec![(9, 4)],
            "survivors listed in key order"
        );
    }

    #[test]
    fn manifest_replay_rebuilds_the_resident_set() {
        let vfs = mem();
        {
            let mut store = SpillStore::open(Arc::clone(&vfs), "ssd").unwrap();
            store.write(1, b"one").unwrap();
            store.write(2, b"two").unwrap();
            store.write(3, b"three").unwrap();
            store.remove(2).unwrap();
            store.write(1, b"one").unwrap(); // rewrite: no duplicate manifest line
        }
        // A fresh store over the same directory replays the log.
        let store = SpillStore::open(Arc::clone(&vfs), "ssd").unwrap();
        assert_eq!(store.entries().collect::<Vec<_>>(), vec![(1, 3), (3, 5)]);
        assert_eq!(store.read(1).unwrap(), b"one");
        assert_eq!(store.read(3).unwrap(), b"three");
    }

    #[test]
    fn torn_trailing_manifest_line_loses_only_that_entry() {
        let vfs = mem();
        {
            let mut store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
            store.write(10, b"abcdef").unwrap();
        }
        // Simulate a crash mid-append: a half-written line without newline.
        let manifest = vfs.open("d/MANIFEST", false).unwrap();
        let end = vfs.len(manifest).unwrap();
        vfs.write_at(manifest, end, b"+ 11 6").unwrap();
        vfs.close(manifest).unwrap();
        // "+ 11 6" parses but its payload file is missing: replay drops the
        // torn entry at open, while key 10 is intact.
        let store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
        assert_eq!(store.read(10).unwrap(), b"abcdef");
        assert!(!store.contains(11), "torn entry dropped during replay");
        assert!(matches!(store.read(11), Err(VfsError::NotFound(_))));
    }

    #[test]
    fn torn_length_field_that_still_parses_never_serves_a_prefix() {
        let vfs = mem();
        {
            let mut store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
            store.write(5, b"twelve bytes").unwrap(); // manifest: "+ 5 12\n"
            store.write(6, b"intact").unwrap();
        }
        // Tear the first line's length field mid-digit: "+ 5 12\n" → "+ 5 1".
        // The torn line still parses, but now records a 1-byte length for an
        // intact 12-byte payload — replay must drop it, not serve a prefix.
        let manifest = vfs.open("d/MANIFEST", false).unwrap();
        let full = vfs
            .read_at(manifest, 0, vfs.len(manifest).unwrap() as usize)
            .unwrap();
        vfs.close(manifest).unwrap();
        vfs.remove("d/MANIFEST").unwrap();
        let torn = vfs.open("d/MANIFEST", true).unwrap();
        vfs.write_at(torn, 0, &full[..5]).unwrap();
        vfs.write_at(torn, 5, &full[6..]).unwrap(); // keep key 6's line whole
        vfs.close(torn).unwrap();
        let store = SpillStore::open(Arc::clone(&vfs), "d").unwrap();
        assert!(!store.contains(5), "length-mismatched entry dropped");
        assert_eq!(store.read(6).unwrap(), b"intact");
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let vfs = mem();
        let mut store = SpillStore::open(Arc::clone(&vfs), "t").unwrap();
        store.write(5, b"full-payload").unwrap();
        // Corrupt the payload behind the store's back.
        vfs.remove("t/5.item").unwrap();
        let short = vfs.open("t/5.item", true).unwrap();
        vfs.write_at(short, 0, b"oops").unwrap();
        vfs.close(short).unwrap();
        match store.read(5) {
            Err(VfsError::Io { detail, .. }) => assert!(detail.contains("truncated")),
            other => panic!("expected truncated-payload error, got {other:?}"),
        }
    }

    #[test]
    fn stores_in_different_dirs_do_not_interfere() {
        let vfs = mem();
        let mut a = SpillStore::open(Arc::clone(&vfs), "a").unwrap();
        let mut b = SpillStore::open(Arc::clone(&vfs), "b").unwrap();
        a.write(1, b"from-a").unwrap();
        b.write(1, b"from-b").unwrap();
        assert_eq!(a.read(1).unwrap(), b"from-a");
        assert_eq!(b.read(1).unwrap(), b"from-b");
    }
}
