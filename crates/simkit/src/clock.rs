//! Virtual time.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point (or span) in virtual time, measured in seconds.
///
/// `SimTime` is a thin wrapper over `f64` that provides total ordering
/// (NaN is rejected at construction) and a couple of saturating helpers so
/// the simulator code never has to reason about negative durations.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative: virtual time is always a
    /// non-negative real number.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        assert!(secs >= 0.0, "SimTime must be non-negative, got {secs}");
        SimTime(secs)
    }

    /// Seconds as `f64`.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns zero if `other > self`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True when the time is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction rejects NaN, so total ordering is well defined.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> Self {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_secs(), 1.5);
        assert!(!t.is_zero());
        assert!(SimTime::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 2.0).as_secs(), 4.0);
        assert_eq!((a / 2.0).as_secs(), 1.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b).as_secs(), 1.5);
    }

    #[test]
    #[should_panic]
    fn non_saturating_sub_panics_when_negative() {
        let _ = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let mut v = vec![b, a];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }

    #[test]
    fn summation() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }
}
