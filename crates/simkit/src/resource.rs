//! Fluid fair-share (processor-sharing) resources.
//!
//! A [`FairShareResource`] models a device with a fixed aggregate capacity
//! (e.g. a SATA SSD delivering 530 MB/s of random reads, or a pool of 24 CPU
//! cores) whose capacity is divided evenly among the *flows* currently using
//! it.  This is the classic fluid processor-sharing (GPS) model: whenever the
//! set of active flows changes, the per-flow service rate is recomputed and
//! the remaining work of every in-flight flow drains at the new rate.
//!
//! The input-pipeline simulator uses this to model the disk and the CPU pool
//! shared among concurrent hyper-parameter-search jobs.

use crate::SimTime;
use std::collections::HashMap;

/// Identifier of a flow admitted to a [`FairShareResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

#[derive(Debug, Clone)]
struct Flow {
    /// Remaining work, in capacity units (e.g. bytes).
    remaining: f64,
}

/// A capacity shared evenly among active flows (fluid processor sharing).
#[derive(Debug, Clone)]
pub struct FairShareResource {
    /// Aggregate capacity in work-units per second.
    capacity_per_sec: f64,
    /// Maximum number of flows that may share the capacity concurrently; any
    /// additional arrivals still get an even share (the model has no queueing,
    /// matching a bandwidth device rather than a FIFO disk scheduler).
    flows: HashMap<FlowId, Flow>,
    next_id: u64,
    now: SimTime,
    /// Total work completed since construction.
    completed_work: f64,
    /// Integral of busy time (time with at least one active flow).
    busy_time: SimTime,
}

impl FairShareResource {
    /// Create a resource with `capacity_per_sec` units of work per second.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive.
    pub fn new(capacity_per_sec: f64) -> Self {
        assert!(
            capacity_per_sec > 0.0 && capacity_per_sec.is_finite(),
            "capacity must be positive and finite, got {capacity_per_sec}"
        );
        FairShareResource {
            capacity_per_sec,
            flows: HashMap::new(),
            next_id: 0,
            now: SimTime::ZERO,
            completed_work: 0.0,
            busy_time: SimTime::ZERO,
        }
    }

    /// Aggregate capacity in work-units per second.
    pub fn capacity_per_sec(&self) -> f64 {
        self.capacity_per_sec
    }

    /// Current virtual time of the resource.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total work completed across all flows so far.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Total time during which the resource had at least one active flow.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Utilization in `[0, 1]` relative to `horizon` (e.g. the epoch length).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            (self.busy_time.as_secs() / horizon.as_secs()).min(1.0)
        }
    }

    /// Per-flow service rate right now.
    pub fn per_flow_rate(&self) -> f64 {
        if self.flows.is_empty() {
            self.capacity_per_sec
        } else {
            self.capacity_per_sec / self.flows.len() as f64
        }
    }

    /// Admit a new flow with `work` units at time `at` (must not precede the
    /// resource's current time). Returns the flow id.
    pub fn arrive(&mut self, at: SimTime, work: f64) -> FlowId {
        assert!(work >= 0.0 && work.is_finite(), "work must be >= 0");
        self.advance_to(at);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(id, Flow { remaining: work });
        id
    }

    /// Time at which the next flow (the one with the least remaining work)
    /// completes, assuming no further arrivals. `None` when idle.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let rate = self.per_flow_rate();
        self.flows
            .iter()
            .map(|(id, f)| (f.remaining / rate, *id))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("rates are finite")
                    .then_with(|| a.1.cmp(&b.1))
            })
            .map(|(dt, id)| (self.now + SimTime::from_secs(dt.max(0.0)), id))
    }

    /// Advance virtual time to `to`, draining work from all active flows at
    /// the fair-share rate. Returns the flows that completed during the
    /// interval, in completion order.
    pub fn advance_to(&mut self, to: SimTime) -> Vec<FlowId> {
        assert!(
            to >= self.now,
            "cannot advance backwards: {to:?} < {:?}",
            self.now
        );
        let mut completed = Vec::new();
        // Process piecewise: the per-flow rate changes every time a flow
        // finishes, so drain in segments until either `to` is reached or no
        // flows remain.
        while !self.flows.is_empty() {
            let rate = self.per_flow_rate();
            let (min_remaining, min_id) = self
                .flows
                .iter()
                .map(|(id, f)| (f.remaining, *id))
                .min_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite")
                        .then_with(|| a.1.cmp(&b.1))
                })
                .expect("non-empty");
            let finish_dt = min_remaining / rate;
            let span = (to - self.now).as_secs();
            if finish_dt <= span {
                // The shortest flow completes within this segment.
                let drained = finish_dt * rate;
                for f in self.flows.values_mut() {
                    f.remaining = (f.remaining - drained).max(0.0);
                }
                self.completed_work += drained * self.flows.len() as f64;
                self.flows.remove(&min_id);
                completed.push(min_id);
                self.busy_time += SimTime::from_secs(finish_dt);
                self.now += SimTime::from_secs(finish_dt);
            } else {
                // Nobody completes before `to`.
                let drained = span * rate;
                for f in self.flows.values_mut() {
                    f.remaining = (f.remaining - drained).max(0.0);
                }
                self.completed_work += drained * self.flows.len() as f64;
                self.busy_time += SimTime::from_secs(span);
                self.now = to;
                break;
            }
        }
        if self.now < to {
            self.now = to;
        }
        completed
    }

    /// Run the resource until every admitted flow has completed and return
    /// the completion time of the last one (or the current time when idle).
    pub fn drain(&mut self) -> SimTime {
        while let Some((t, id)) = self.next_completion() {
            let completed = self.advance_to(t);
            if completed.is_empty() {
                // advance_to reached `t` (it never stops short) yet nobody
                // finished: the shortest flow's remaining work is below one
                // ulp of virtual time, so the segment rounded to zero length
                // and the loop would never make progress.  Retire the flow
                // directly and account the residual work.
                if let Some(flow) = self.flows.remove(&id) {
                    self.completed_work += flow.remaining;
                }
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut r = FairShareResource::new(100.0);
        r.arrive(SimTime::ZERO, 200.0);
        let done = r.drain();
        assert!((done.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(r.active_flows(), 0);
        assert!((r.completed_work() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_flows_share_evenly() {
        let mut r = FairShareResource::new(100.0);
        r.arrive(SimTime::ZERO, 100.0);
        r.arrive(SimTime::ZERO, 100.0);
        // Each gets 50/s, so both finish at t=2.
        let done = r.drain();
        assert!((done.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut r = FairShareResource::new(100.0);
        let _long = r.arrive(SimTime::ZERO, 150.0);
        let short = r.arrive(SimTime::ZERO, 50.0);
        // Phase 1: both at 50/s; short (50 units) finishes at t=1, long has 100 left.
        let (t, id) = r.next_completion().unwrap();
        assert_eq!(id, short);
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
        let completed = r.advance_to(t);
        assert_eq!(completed, vec![short]);
        // Phase 2: long alone at 100/s, 100 units remain -> finishes at t=2.
        let done = r.drain();
        assert!((done.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut r = FairShareResource::new(100.0);
        r.arrive(SimTime::ZERO, 100.0);
        // After 0.5s the first flow has 50 left; a second arrives.
        r.arrive(secs(0.5), 50.0);
        // Both now at 50/s: both finish 1s later, at t=1.5.
        let done = r.drain();
        assert!((done.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut r = FairShareResource::new(100.0);
        r.arrive(SimTime::ZERO, 100.0);
        r.drain();
        // Idle gap, then another flow.
        r.arrive(secs(3.0), 100.0);
        r.drain();
        assert!((r.busy_time().as_secs() - 2.0).abs() < 1e-9);
        assert!((r.utilization(secs(4.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_work_flow_completes_immediately() {
        let mut r = FairShareResource::new(10.0);
        let id = r.arrive(SimTime::ZERO, 0.0);
        let (t, cid) = r.next_completion().unwrap();
        assert_eq!(cid, id);
        assert_eq!(t, SimTime::ZERO);
        let completed = r.advance_to(SimTime::ZERO);
        // Advancing zero time still completes the zero-work flow via drain().
        // advance_to with equal time performs no segment, so use drain.
        let _ = completed;
        let done = r.drain();
        assert_eq!(done, SimTime::ZERO);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn drain_terminates_when_remaining_work_is_below_time_resolution() {
        // Regression test for an infinite loop: with `now` large, a flow
        // whose remaining/rate is smaller than one ulp of `now` has a
        // completion time that rounds to `now` itself, so advance_to drains
        // a zero-length segment and never retires it.
        let mut r = FairShareResource::new(1.0);
        let late = secs(1e9);
        r.arrive(late, 1e-12); // ulp(1e9) ≈ 1.2e-7 ≫ 1e-12 of work
        let done = r.drain();
        assert_eq!(r.active_flows(), 0, "sub-ulp flow must still be retired");
        assert_eq!(done, late);
        assert!((r.completed_work() - 1e-12).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = FairShareResource::new(0.0);
    }

    #[test]
    fn conservation_of_work() {
        // Total completed work equals the sum of admitted work regardless of
        // the arrival pattern.
        let mut r = FairShareResource::new(37.0);
        let works = [10.0, 55.0, 3.0, 120.0, 42.0];
        for (i, w) in works.iter().enumerate() {
            r.arrive(secs(i as f64 * 0.3), *w);
        }
        r.drain();
        let total: f64 = works.iter().sum();
        assert!((r.completed_work() - total).abs() < 1e-6);
    }
}
