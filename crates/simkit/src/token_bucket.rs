//! A token-bucket rate limiter.
//!
//! Used by the functional (wall-clock) CoorDL loader to emulate a storage
//! device with a bounded transfer rate: a read of `n` bytes consumes `n`
//! tokens and is delayed until the bucket has refilled.

use crate::SimTime;

/// A token bucket with a refill rate and a burst capacity.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens added per second.
    rate_per_sec: f64,
    /// Maximum tokens the bucket can hold.
    burst: f64,
    /// Current token level.
    tokens: f64,
    /// Last time the bucket was updated.
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket refilled at `rate_per_sec` with capacity `burst`,
    /// initially full.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` or `burst` is not strictly positive.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst > 0.0, "burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Refill rate in tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Current token level after refilling up to `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = (now - self.last).as_secs();
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last = now;
        }
    }

    /// Request `amount` tokens at time `now`.
    ///
    /// Returns the time at which the request can be satisfied (equal to `now`
    /// if enough tokens are available, later otherwise) and debits the bucket.
    /// Requests larger than the burst capacity are allowed: the bucket simply
    /// goes negative and subsequent requests wait for it to recover, which
    /// models a device that is busy for the full transfer duration.
    pub fn request(&mut self, now: SimTime, amount: f64) -> SimTime {
        assert!(amount >= 0.0, "amount must be non-negative");
        self.refill(now);
        self.tokens -= amount;
        if self.tokens >= 0.0 {
            now
        } else {
            let wait = -self.tokens / self.rate_per_sec;
            now + SimTime::from_secs(wait)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn requests_within_burst_are_immediate() {
        let mut tb = TokenBucket::new(100.0, 50.0);
        assert_eq!(tb.request(SimTime::ZERO, 30.0), SimTime::ZERO);
        assert_eq!(tb.request(SimTime::ZERO, 20.0), SimTime::ZERO);
    }

    #[test]
    fn oversized_request_is_delayed() {
        let mut tb = TokenBucket::new(100.0, 50.0);
        // 150 tokens requested, 50 available: 100 deficit -> 1 second wait.
        let ready = tb.request(SimTime::ZERO, 150.0);
        assert!((ready.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        tb.request(SimTime::ZERO, 10.0); // drained
        assert!((tb.available(secs(0.5)) - 5.0).abs() < 1e-9);
        assert!((tb.available(secs(2.0)) - 10.0).abs() < 1e-9); // capped at burst
    }

    #[test]
    fn sustained_rate_matches_configuration() {
        // Issuing 100 requests of 10 tokens at t=0 against a 100-token/s
        // bucket: the last one should become ready at roughly t=9.x.
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = tb.request(SimTime::ZERO, 10.0);
        }
        assert!(last.as_secs() > 9.0 && last.as_secs() < 10.0, "{last:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0, 1.0);
    }
}
