//! A monotonic event queue.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (FIFO) for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO tie-breaking.
///
/// The queue enforces monotonicity: an event may not be scheduled in the past
/// relative to the last popped event (doing so is a logic error in the
/// simulator and panics in debug builds).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The virtual time of the most recently popped event (the current time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics (debug assertion) when `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest pending event, advancing the current time to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Peek at the time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), "first");
        q.pop();
        q.schedule_after(SimTime::from_secs(1.5), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "second");
        assert_eq!(t, SimTime::from_secs(3.5));
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
