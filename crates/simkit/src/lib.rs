//! Discrete-event simulation primitives used by the data-stall simulator.
//!
//! The input-pipeline simulator in `coordl-pipeline` models DNN training as a
//! pipelined sequence of *fetch → prep → compute* stages that contend for
//! shared resources (disk bandwidth, CPU cores, the NIC).  This crate provides
//! the small, well-tested building blocks that simulation is written in terms
//! of:
//!
//! * [`SimTime`] — a virtual-time newtype (seconds as `f64`) with saturating
//!   arithmetic helpers.
//! * [`EventQueue`] — a monotonic priority queue of timestamped events.
//! * [`FairShareResource`] — a fluid processor-sharing resource (e.g. a disk
//!   whose bandwidth is split evenly among the flows currently reading from
//!   it).
//! * [`TokenBucket`] — a rate limiter used to model devices with a peak
//!   transfer rate.
//! * [`PipelineRecurrence`] — the three-stage pipelined-latency recurrence
//!   used to turn per-iteration stage times into epoch time and stall
//!   attribution.
//! * [`stats`] — tiny summary-statistics helpers (mean, percentiles) and a
//!   time-series recorder used for the I/O-pattern figures.

pub mod clock;
pub mod events;
pub mod pipeline_model;
pub mod resource;
pub mod stats;
pub mod token_bucket;

pub use clock::SimTime;
pub use events::EventQueue;
pub use pipeline_model::{PipelineRecurrence, StageSample, StallBreakdown};
pub use resource::FairShareResource;
pub use stats::{Summary, TimeSeries};
pub use token_bucket::TokenBucket;
