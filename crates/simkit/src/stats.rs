//! Summary statistics and time-series recording.

use crate::SimTime;

/// Summary statistics over a set of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty set).
    pub mean: f64,
    /// Minimum observation (0 for an empty set).
    pub min: f64,
    /// Maximum observation (0 for an empty set).
    pub max: f64,
    /// Population standard deviation (0 for an empty set).
    pub std_dev: f64,
}

impl Summary {
    /// Compute summary statistics for `values`.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut var = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            var += (v - mean) * (v - mean);
        }
        Summary {
            count,
            mean,
            min,
            max,
            std_dev: (var / count as f64).sqrt(),
        }
    }
}

/// Percentile of a sample set using nearest-rank interpolation.
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// A time series of (time, value) points, used to record quantities such as
/// the disk-read rate over the course of an epoch (paper Figure 11) or memory
/// utilisation over time (Figure 20).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point.
    ///
    /// Points do not need to arrive in time order (several logical clocks may
    /// feed one series, e.g. concurrent jobs sharing a storage device);
    /// [`TimeSeries::binned_sum`] buckets by timestamp regardless of insertion
    /// order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Re-bucket the series into fixed-width time bins of `bin` seconds,
    /// summing the values that fall into each bin. Returns `(bin_start, sum)`
    /// pairs covering `[0, horizon]`.
    ///
    /// This is how the per-request disk-read log is turned into an
    /// "MB read per 10-second window" curve.
    pub fn binned_sum(&self, bin: SimTime, horizon: SimTime) -> Vec<(SimTime, f64)> {
        assert!(!bin.is_zero(), "bin width must be positive");
        let nbins = (horizon.as_secs() / bin.as_secs()).ceil() as usize;
        let mut out: Vec<(SimTime, f64)> =
            (0..nbins.max(1)).map(|i| (bin * i as f64, 0.0)).collect();
        for &(t, v) in &self.points {
            let idx = ((t.as_secs() / bin.as_secs()) as usize).min(out.len().saturating_sub(1));
            out[idx].1 += v;
        }
        out
    }

    /// Drop every recorded point, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// Sum of all values in the series.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_basics() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(5.0));
        assert_eq!(percentile(&v, 0.5), Some(3.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn timeseries_binning() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0.5), 10.0);
        ts.push(SimTime::from_secs(1.5), 20.0);
        ts.push(SimTime::from_secs(1.9), 5.0);
        ts.push(SimTime::from_secs(3.0), 7.0);
        let bins = ts.binned_sum(SimTime::from_secs(1.0), SimTime::from_secs(4.0));
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].1, 10.0);
        assert_eq!(bins[1].1, 25.0);
        assert_eq!(bins[2].1, 0.0);
        assert_eq!(bins[3].1, 7.0);
        assert!((ts.total() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_points_beyond_horizon_clamp_to_last_bin() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(10.0), 3.0);
        let bins = ts.binned_sum(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[1].1, 3.0);
    }
}
