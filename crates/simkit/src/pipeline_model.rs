//! The three-stage pipelined-latency recurrence.
//!
//! DNN training frameworks pipeline data preparation with GPU compute: while
//! the GPU works on minibatch *i*, background workers fetch and pre-process
//! minibatches *i+1 … i+k* (where *k* is the prefetch depth).  The GPU stalls
//! only when the next minibatch is not ready at the moment it finishes the
//! current one — these are the paper's *data stalls*, split into *fetch
//! stalls* (blocked on storage I/O) and *prep stalls* (blocked on CPU
//! pre-processing).
//!
//! [`PipelineRecurrence`] consumes one [`StageSample`] per iteration (the time
//! each stage would take in isolation) and evaluates the standard pipelined
//! recurrence with bounded prefetch, producing the epoch wall-clock time and
//! the unmasked stall breakdown that DS-Analyzer reports.

use crate::SimTime;

/// Per-iteration stage costs, in isolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSample {
    /// Time to fetch the minibatch's raw bytes (storage + cache + network).
    pub fetch: SimTime,
    /// Time to pre-process (decode + augment + collate) the minibatch.
    pub prep: SimTime,
    /// GPU compute time for the minibatch (forward + backward + update,
    /// including gradient synchronisation for multi-GPU jobs).
    pub compute: SimTime,
}

impl StageSample {
    /// Convenience constructor from seconds.
    pub fn from_secs(fetch: f64, prep: f64, compute: f64) -> Self {
        StageSample {
            fetch: SimTime::from_secs(fetch),
            prep: SimTime::from_secs(prep),
            compute: SimTime::from_secs(compute),
        }
    }
}

/// Accumulated result of evaluating the recurrence over an epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// Total wall-clock time of the epoch.
    pub epoch_time: SimTime,
    /// Total GPU busy time.
    pub compute_time: SimTime,
    /// Unmasked time the GPU spent waiting because the raw data had not yet
    /// been fetched from storage (the paper's *fetch stall*).
    pub fetch_stall: SimTime,
    /// Unmasked time the GPU spent waiting on pre-processing beyond the fetch
    /// stall (the paper's *prep stall*).
    pub prep_stall: SimTime,
    /// Number of iterations processed.
    pub iterations: usize,
}

impl StallBreakdown {
    /// Total unmasked data-stall time (fetch + prep).
    pub fn data_stall(&self) -> SimTime {
        self.fetch_stall + self.prep_stall
    }

    /// Fraction of the epoch spent stalled on data, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        if self.epoch_time.is_zero() {
            0.0
        } else {
            self.data_stall().as_secs() / self.epoch_time.as_secs()
        }
    }

    /// Fraction of the epoch spent stalled on fetch (I/O).
    pub fn fetch_stall_fraction(&self) -> f64 {
        if self.epoch_time.is_zero() {
            0.0
        } else {
            self.fetch_stall.as_secs() / self.epoch_time.as_secs()
        }
    }

    /// Fraction of the epoch spent stalled on prep (CPU).
    pub fn prep_stall_fraction(&self) -> f64 {
        if self.epoch_time.is_zero() {
            0.0
        } else {
            self.prep_stall.as_secs() / self.epoch_time.as_secs()
        }
    }
}

/// Evaluates the pipelined fetch → prep → compute recurrence with bounded
/// prefetch (backpressure).
///
/// With a prefetch depth of `k`, the fetch of minibatch `i` may not begin
/// until minibatch `i - k` has been consumed by the GPU, which matches the
/// bounded prefetch queues of PyTorch's DataLoader and DALI.
#[derive(Debug, Clone)]
pub struct PipelineRecurrence {
    prefetch_depth: usize,
    fetch_done: Vec<SimTime>,
    prep_done: Vec<SimTime>,
    gpu_done: Vec<SimTime>,
    breakdown: StallBreakdown,
}

impl PipelineRecurrence {
    /// Create a recurrence with the given prefetch depth (minimum 1).
    pub fn new(prefetch_depth: usize) -> Self {
        PipelineRecurrence {
            prefetch_depth: prefetch_depth.max(1),
            fetch_done: Vec::new(),
            prep_done: Vec::new(),
            gpu_done: Vec::new(),
            breakdown: StallBreakdown::default(),
        }
    }

    /// The configured prefetch depth.
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth
    }

    /// Reset to a fresh recurrence with `prefetch_depth` (minimum 1), keeping
    /// the allocated per-iteration buffers so a caller can evaluate many
    /// epochs without reallocating.
    pub fn reset(&mut self, prefetch_depth: usize) {
        self.prefetch_depth = prefetch_depth.max(1);
        self.fetch_done.clear();
        self.prep_done.clear();
        self.gpu_done.clear();
        self.breakdown = StallBreakdown::default();
    }

    /// Feed the next iteration's stage costs and return the (cumulative)
    /// virtual time at which its GPU work completes.
    pub fn push(&mut self, sample: StageSample) -> SimTime {
        let i = self.gpu_done.len();

        // Backpressure: fetch i starts only after batch i-k was consumed.
        let backpressure = if i >= self.prefetch_depth {
            self.gpu_done[i - self.prefetch_depth]
        } else {
            SimTime::ZERO
        };
        // Fetch workers are serialised with respect to each other (one shared
        // storage stream per job).
        let fetch_start = self
            .fetch_done
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(backpressure);
        let fetch_done = fetch_start + sample.fetch;

        // Prep workers are likewise modelled as a single fluid pool: prep of
        // batch i starts when its data is fetched and the pool has finished
        // batch i-1.
        let prep_start = self
            .prep_done
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(fetch_done);
        let prep_done = prep_start + sample.prep;

        let gpu_free = self.gpu_done.last().copied().unwrap_or(SimTime::ZERO);
        let gpu_start = gpu_free.max(prep_done);
        let gpu_done = gpu_start + sample.compute;

        // Stall attribution, following DS-Analyzer: the GPU was idle for
        // (gpu_start - gpu_free); the part of that idleness during which the
        // raw data had not yet arrived from storage is a fetch stall, the
        // remainder (waiting on pre-processing) is a prep stall.
        let stall = gpu_start.saturating_sub(gpu_free);
        let fetch_stall = fetch_done.saturating_sub(gpu_free).min(stall);
        let prep_stall = stall.saturating_sub(fetch_stall);

        self.breakdown.compute_time += sample.compute;
        self.breakdown.fetch_stall += fetch_stall;
        self.breakdown.prep_stall += prep_stall;
        self.breakdown.iterations += 1;
        self.breakdown.epoch_time = gpu_done;

        self.fetch_done.push(fetch_done);
        self.prep_done.push(prep_done);
        self.gpu_done.push(gpu_done);
        gpu_done
    }

    /// The stall breakdown accumulated so far.
    pub fn breakdown(&self) -> StallBreakdown {
        self.breakdown
    }

    /// Completion times of every iteration's GPU work (useful for building
    /// time series such as the disk-I/O-over-time figure).
    pub fn gpu_done_times(&self) -> &[SimTime] {
        &self.gpu_done
    }

    /// Completion times of every iteration's fetch stage.
    pub fn fetch_done_times(&self) -> &[SimTime] {
        &self.fetch_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(samples: &[(f64, f64, f64)], depth: usize) -> StallBreakdown {
        let mut p = PipelineRecurrence::new(depth);
        for &(f, pr, c) in samples {
            p.push(StageSample::from_secs(f, pr, c));
        }
        p.breakdown()
    }

    #[test]
    fn gpu_bound_pipeline_has_no_stalls_after_warmup() {
        // Fetch and prep are much faster than compute.
        let samples = vec![(0.01, 0.01, 1.0); 10];
        let b = run(&samples, 2);
        assert_eq!(b.iterations, 10);
        // Only the first iteration pays the fill latency (0.02s).
        assert!(
            b.data_stall().as_secs() < 0.03,
            "stall = {:?}",
            b.data_stall()
        );
        assert!((b.compute_time.as_secs() - 10.0).abs() < 1e-9);
        assert!(b.epoch_time.as_secs() < 10.05);
    }

    #[test]
    fn io_bound_pipeline_is_dominated_by_fetch_stalls() {
        // Fetch takes 1s, compute 0.1s.
        let samples = vec![(1.0, 0.05, 0.1); 20];
        let b = run(&samples, 2);
        // Epoch time is dominated by the 20s of serialized fetch.
        assert!(b.epoch_time.as_secs() >= 20.0);
        assert!(b.fetch_stall.as_secs() > 15.0);
        // Fetch stalls dominate prep stalls.
        assert!(b.fetch_stall > b.prep_stall);
        assert!(b.stall_fraction() > 0.8);
    }

    #[test]
    fn cpu_bound_pipeline_is_dominated_by_prep_stalls() {
        // Fetch instant, prep 1s, compute 0.2s.
        let samples = vec![(0.0, 1.0, 0.2); 20];
        let b = run(&samples, 2);
        assert!(b.prep_stall.as_secs() > 10.0);
        assert!(b.prep_stall > b.fetch_stall);
    }

    #[test]
    fn epoch_time_close_to_max_of_stage_totals() {
        // A classic pipeline property: with ample prefetch, the epoch time is
        // close to the maximum of the per-stage totals.
        let samples = vec![(0.3, 0.5, 0.4); 50];
        let b = run(&samples, 8);
        let max_total = 0.5 * 50.0;
        assert!(b.epoch_time.as_secs() >= max_total);
        assert!(b.epoch_time.as_secs() < max_total + 1.0);
    }

    #[test]
    fn bounded_prefetch_limits_lookahead() {
        // With depth 1 the fetch of batch i cannot start until batch i-1 was
        // consumed, so stages serialise much more than with a deep queue.
        let samples = vec![(0.5, 0.0, 0.5); 10];
        let shallow = run(&samples, 1);
        let deep = run(&samples, 4);
        assert!(shallow.epoch_time > deep.epoch_time);
    }

    #[test]
    fn stall_fractions_sum_to_at_most_one() {
        let samples = vec![(0.2, 0.3, 0.25); 30];
        let b = run(&samples, 2);
        let total = b.fetch_stall_fraction() + b.prep_stall_fraction();
        assert!((0.0..=1.0).contains(&total));
        assert!((b.stall_fraction() - total).abs() < 1e-9);
    }

    #[test]
    fn empty_pipeline_is_all_zero() {
        let p = PipelineRecurrence::new(4);
        let b = p.breakdown();
        assert_eq!(b.iterations, 0);
        assert_eq!(b.epoch_time, SimTime::ZERO);
        assert_eq!(b.stall_fraction(), 0.0);
    }

    #[test]
    fn reset_reproduces_a_fresh_recurrence() {
        let samples = vec![(0.3, 0.2, 0.4); 12];
        let fresh = run(&samples, 3);
        let mut p = PipelineRecurrence::new(7);
        for &(f, pr, c) in &samples {
            p.push(StageSample::from_secs(f, pr, c));
        }
        p.reset(3);
        assert_eq!(p.breakdown(), StallBreakdown::default());
        assert_eq!(p.prefetch_depth(), 3);
        for &(f, pr, c) in &samples {
            p.push(StageSample::from_secs(f, pr, c));
        }
        assert_eq!(p.breakdown(), fresh);
    }

    #[test]
    fn compute_plus_stalls_equals_epoch_time() {
        // The GPU is either computing or stalled on data (the warm-up fill of
        // the very first batch is also attributed to stalls), so the pieces
        // must add up exactly.
        let samples = vec![(0.4, 0.2, 0.3); 25];
        let b = run(&samples, 3);
        let sum = b.compute_time + b.fetch_stall + b.prep_stall;
        assert!((sum.as_secs() - b.epoch_time.as_secs()).abs() < 1e-6);
    }
}
