//! Storage substrate: devices, the OS page cache, and per-node I/O accounting.
//!
//! The paper's fetch stalls are entirely a function of how fast raw items can
//! be produced by the storage stack: the DRAM cache serves hits at memory
//! bandwidth, misses go to an SSD (~530 MB/s random reads) or a hard drive
//! (15–50 MB/s random reads).  This crate models exactly that stack:
//!
//! * [`DeviceProfile`] / [`StorageDevice`] — calibrated device throughput for
//!   random and sequential reads, with cumulative I/O statistics,
//! * [`StorageNode`] — one server's storage stack: a device plus a
//!   configurable software cache (the OS page-cache LRU whose thrashing
//!   motivates MinIO, or any other `coordl-cache` policy), reporting where
//!   every byte came from.

pub mod device;
pub mod node;
pub mod profiles;

pub use device::{AccessPattern, StorageDevice};
pub use node::{FetchSource, FetchStats, StorageNode};
pub use profiles::{dram_tier_cost, DeviceProfile, DRAM_BANDWIDTH_BYTES_PER_SEC};
