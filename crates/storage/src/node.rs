//! One server's storage stack: cache in front of a device.

use crate::{AccessPattern, DeviceProfile, StorageDevice, DRAM_BANDWIDTH_BYTES_PER_SEC};
use dcache::{build_cache, AccessOutcome, Cache, PolicyKind};
use simkit::SimTime;

/// Where a fetched unit ultimately came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Served from the node's software cache (page cache or MinIO) at DRAM
    /// bandwidth.
    Cache,
    /// Read from the local storage device.
    Disk,
}

/// Cumulative per-node fetch accounting (resettable at epoch boundaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Bytes served from the cache.
    pub bytes_from_cache: u64,
    /// Bytes read from the device.
    pub bytes_from_disk: u64,
    /// Number of unit fetches that hit the cache.
    pub cache_hits: u64,
    /// Number of unit fetches that went to the device.
    pub cache_misses: u64,
}

impl FetchStats {
    /// Fraction of fetches that missed the cache (0 when there were none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// Total bytes fetched.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_from_cache + self.bytes_from_disk
    }
}

/// A server's storage stack: a software cache (page cache / MinIO / …) in
/// front of a storage device.
///
/// The node works in terms of *fetch units* (item files or record chunks, see
/// `coordl-dataset::StorageFormat`): `fetch` looks the unit up in the cache,
/// reads it from the device on a miss, and returns how long the access takes
/// in isolation together with its source.
pub struct StorageNode {
    device: StorageDevice,
    cache: Box<dyn Cache<u64> + Send>,
    stats: FetchStats,
}

impl StorageNode {
    /// Create a node with the given device profile, cache policy and cache
    /// capacity in bytes.
    pub fn new(profile: DeviceProfile, policy: PolicyKind, cache_bytes: u64) -> Self {
        StorageNode {
            device: StorageDevice::new(profile),
            cache: build_cache(policy, cache_bytes),
            stats: FetchStats::default(),
        }
    }

    /// Fetch one unit of `bytes` bytes identified by `key`.
    ///
    /// Returns `(isolated_time, source)`.  The caller models bandwidth
    /// contention (dividing device throughput among concurrent jobs) by
    /// scaling the returned time.
    pub fn fetch(
        &mut self,
        at: SimTime,
        key: u64,
        bytes: u64,
        pattern: AccessPattern,
    ) -> (SimTime, FetchSource) {
        match self.cache.access(key, bytes) {
            AccessOutcome::Hit => {
                self.stats.bytes_from_cache += bytes;
                self.stats.cache_hits += 1;
                (
                    SimTime::from_secs(bytes as f64 / DRAM_BANDWIDTH_BYTES_PER_SEC),
                    FetchSource::Cache,
                )
            }
            AccessOutcome::Inserted | AccessOutcome::Bypassed => {
                self.stats.bytes_from_disk += bytes;
                self.stats.cache_misses += 1;
                let t = self.device.read(at, bytes, pattern);
                (t, FetchSource::Disk)
            }
        }
    }

    /// Pre-populate the cache with `key` without touching the device, used to
    /// model datasets that are already resident (DS-Analyzer's warm-cache
    /// phase) or MinIO shards populated by a prior epoch.
    pub fn preload(&mut self, key: u64, bytes: u64) {
        let _ = self.cache.access(key, bytes);
    }

    /// Whether `key` is currently cached.
    pub fn is_cached(&self, key: &u64) -> bool {
        self.cache.contains(key)
    }

    /// The underlying device (read-only access to counters/timeline).
    pub fn device(&self) -> &StorageDevice {
        &self.device
    }

    /// Cache statistics from the cache policy itself.
    pub fn cache_stats(&self) -> &dcache::CacheStats {
        self.cache.stats()
    }

    /// Bytes currently resident in the cache.
    pub fn cache_used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    /// Cache capacity in bytes.
    pub fn cache_capacity_bytes(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    /// Per-node fetch statistics since the last [`reset_epoch_stats`].
    ///
    /// [`reset_epoch_stats`]: StorageNode::reset_epoch_stats
    pub fn fetch_stats(&self) -> FetchStats {
        self.stats
    }

    /// Reset per-epoch statistics (cache contents are preserved).
    pub fn reset_epoch_stats(&mut self) {
        self.stats = FetchStats::default();
        self.cache.reset_stats();
        self.device.reset_counters();
    }
}

impl std::fmt::Debug for StorageNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageNode")
            .field("device", self.device.profile())
            .field("cache_policy", &self.cache.name())
            .field("cache_capacity", &self.cache.capacity_bytes())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut node = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 1 << 20);
        let (t1, s1) = node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        assert_eq!(s1, FetchSource::Disk);
        let (t2, s2) = node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        assert_eq!(s2, FetchSource::Cache);
        assert!(t2 < t1, "cache hits must be faster than device reads");
        assert_eq!(node.fetch_stats().cache_hits, 1);
        assert_eq!(node.fetch_stats().cache_misses, 1);
        assert_eq!(node.fetch_stats().bytes_from_disk, 1000);
        assert_eq!(node.fetch_stats().bytes_from_cache, 1000);
    }

    #[test]
    fn preload_avoids_disk_reads() {
        let mut node = StorageNode::new(DeviceProfile::hdd(), PolicyKind::MinIo, 1 << 20);
        node.preload(7, 500);
        let (_, src) = node.fetch(SimTime::ZERO, 7, 500, AccessPattern::Random);
        assert_eq!(src, FetchSource::Cache);
        assert_eq!(node.device().bytes_read(), 0);
    }

    #[test]
    fn lru_node_thrashes_but_minio_node_does_not() {
        // 100 items of 1 KB, cache of 50 KB, three random-order epochs.
        let items: Vec<u64> = (0..100).collect();
        let mut lru = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::Lru, 50_000);
        let mut minio = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 50_000);
        let order = |epoch: u64| -> Vec<u64> {
            items.iter().map(|&i| (i * 13 + epoch * 37) % 100).collect()
        };
        for &k in &order(0) {
            lru.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            minio.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
        }
        lru.reset_epoch_stats();
        minio.reset_epoch_stats();
        for epoch in 1..4 {
            for &k in &order(epoch) {
                lru.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
                minio.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            }
        }
        assert_eq!(minio.fetch_stats().cache_misses, 3 * 50);
        assert!(lru.fetch_stats().cache_misses >= minio.fetch_stats().cache_misses);
        assert!(lru.fetch_stats().bytes_from_disk >= minio.fetch_stats().bytes_from_disk);
    }

    #[test]
    fn reset_preserves_cache_contents() {
        let mut node = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 10_000);
        node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        node.reset_epoch_stats();
        assert!(node.is_cached(&1));
        assert_eq!(node.fetch_stats().total_bytes(), 0);
        assert_eq!(node.cache_used_bytes(), 1000);
    }

    #[test]
    fn debug_format_mentions_policy() {
        let node = StorageNode::new(DeviceProfile::hdd(), PolicyKind::Lru, 10);
        let s = format!("{node:?}");
        assert!(s.contains("LRU"));
        assert!(s.contains("hdd"));
    }
}
