//! One server's storage stack: a cache-tier chain in front of a device.

use crate::{AccessPattern, DeviceProfile, StorageDevice};
use dcache::{ChainSource, TierChain, TierSpec};
use simkit::SimTime;

/// Where a fetched unit ultimately came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Served from the node's topmost software cache tier (page cache or
    /// MinIO) at DRAM bandwidth.
    Cache,
    /// Served from a lower cache tier `k >= 1` of the node's tier chain
    /// (e.g. a local-SSD spill tier) at that tier's modelled cost.
    LowerTier(usize),
    /// Read from the local storage device.
    Disk,
}

/// Cumulative per-node fetch accounting (resettable at epoch boundaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Bytes served from any cache tier of the chain.
    pub bytes_from_cache: u64,
    /// Bytes read from the device.
    pub bytes_from_disk: u64,
    /// Number of unit fetches served by some cache tier.
    pub cache_hits: u64,
    /// Number of unit fetches that went to the device.
    pub cache_misses: u64,
    /// Of `bytes_from_cache`, the bytes served by tiers below the topmost
    /// one (zero on a single-tier node).
    pub bytes_from_lower_tiers: u64,
    /// Of `cache_hits`, the hits served by tiers below the topmost one.
    pub lower_tier_hits: u64,
}

impl FetchStats {
    /// Fraction of fetches that missed the cache (0 when there were none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// Total bytes fetched.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_from_cache + self.bytes_from_disk
    }
}

/// A server's storage stack: a software cache-tier chain (page cache /
/// MinIO / DRAM-plus-SSD hierarchies, see [`dcache::TierChain`]) in front of
/// a storage device.
///
/// The node works in terms of *fetch units* (item files or record chunks, see
/// `coordl-dataset::StorageFormat`): `fetch` looks the unit up through the
/// chain, reads it from the device when every tier misses, and returns how
/// long the access takes in isolation together with its source.  A node
/// built with [`StorageNode::new`] has a single DRAM tier and behaves
/// bit-identically to the pre-hierarchy node.
pub struct StorageNode {
    device: StorageDevice,
    chain: TierChain,
    stats: FetchStats,
}

impl StorageNode {
    /// Create a node with a single DRAM cache tier of the given policy and
    /// capacity in front of the device (the classic one-cache stack).
    pub fn new(profile: DeviceProfile, policy: dcache::PolicyKind, cache_bytes: u64) -> Self {
        Self::with_tiers(
            profile,
            vec![TierSpec {
                name: "dram",
                policy,
                capacity_bytes: cache_bytes,
                cost: crate::profiles::dram_tier_cost(),
            }],
        )
    }

    /// Create a node with an explicit cache-tier chain (fastest first) in
    /// front of the device.
    pub fn with_tiers(profile: DeviceProfile, tiers: Vec<TierSpec>) -> Self {
        StorageNode {
            device: StorageDevice::new(profile),
            chain: TierChain::new(tiers),
            stats: FetchStats::default(),
        }
    }

    /// Fetch one unit of `bytes` bytes identified by `key`.
    ///
    /// Returns `(isolated_time, source)`.  The caller models bandwidth
    /// contention (dividing device throughput among concurrent jobs) by
    /// scaling the returned time.
    pub fn fetch(
        &mut self,
        at: SimTime,
        key: u64,
        bytes: u64,
        pattern: AccessPattern,
    ) -> (SimTime, FetchSource) {
        match self.chain.access(key, bytes).source {
            ChainSource::Tier(k) => {
                self.stats.bytes_from_cache += bytes;
                self.stats.cache_hits += 1;
                if k > 0 {
                    self.stats.bytes_from_lower_tiers += bytes;
                    self.stats.lower_tier_hits += 1;
                }
                let secs = self.chain.tier_cost(k).access_seconds(bytes);
                let source = if k == 0 {
                    FetchSource::Cache
                } else {
                    FetchSource::LowerTier(k)
                };
                (SimTime::from_secs(secs), source)
            }
            ChainSource::Store => {
                self.stats.bytes_from_disk += bytes;
                self.stats.cache_misses += 1;
                let t = self.device.read(at, bytes, pattern);
                (t, FetchSource::Disk)
            }
        }
    }

    /// Pre-populate the chain with `key` without touching the device, used to
    /// model datasets that are already resident (DS-Analyzer's warm-cache
    /// phase) or MinIO shards populated by a prior epoch.
    pub fn preload(&mut self, key: u64, bytes: u64) {
        let _ = self.chain.access(key, bytes);
    }

    /// Whether `key` is currently cached in any tier.
    pub fn is_cached(&self, key: &u64) -> bool {
        self.chain.contains(*key)
    }

    /// Administratively drop every cached key in `[start, end)` — a departed
    /// job's key window — from all tiers, returning the bytes freed.  No
    /// statistics are recorded (this is reclamation, not eviction).
    pub fn evict_keyspace(&mut self, start: u64, end: u64) -> u64 {
        self.chain.remove_range(start..end)
    }

    /// The underlying device (read-only access to counters/timeline).
    pub fn device(&self) -> &StorageDevice {
        &self.device
    }

    /// The node's cache-tier chain.
    pub fn chain(&self) -> &TierChain {
        &self.chain
    }

    /// Fetch-path statistics of the topmost cache tier (the chain records
    /// one hit or miss per fetch there, matching the pre-hierarchy policy
    /// statistics exactly on single-tier nodes).
    pub fn cache_stats(&self) -> &dcache::CacheStats {
        self.chain.tier_stats(0)
    }

    /// Bytes currently resident across the chain's tiers.
    pub fn cache_used_bytes(&self) -> u64 {
        self.chain.used_bytes()
    }

    /// Cache capacity in bytes, summed across tiers.
    pub fn cache_capacity_bytes(&self) -> u64 {
        self.chain.capacity_bytes()
    }

    /// Per-node fetch statistics since the last [`reset_epoch_stats`].
    ///
    /// [`reset_epoch_stats`]: StorageNode::reset_epoch_stats
    pub fn fetch_stats(&self) -> FetchStats {
        self.stats
    }

    /// Reset per-epoch statistics (cache contents are preserved).
    pub fn reset_epoch_stats(&mut self) {
        self.stats = FetchStats::default();
        self.chain.reset_stats();
        self.device.reset_counters();
    }
}

impl std::fmt::Debug for StorageNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tiers: Vec<String> = (0..self.chain.num_tiers())
            .map(|k| {
                let spec = self.chain.tier_spec(k);
                format!("{}:{}", spec.name, spec.policy.name())
            })
            .collect();
        f.debug_struct("StorageNode")
            .field("device", self.device.profile())
            .field("tiers", &tiers)
            .field("cache_capacity", &self.chain.capacity_bytes())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcache::PolicyKind;

    #[test]
    fn first_access_misses_second_hits() {
        let mut node = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 1 << 20);
        let (t1, s1) = node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        assert_eq!(s1, FetchSource::Disk);
        let (t2, s2) = node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        assert_eq!(s2, FetchSource::Cache);
        assert!(t2 < t1, "cache hits must be faster than device reads");
        assert_eq!(node.fetch_stats().cache_hits, 1);
        assert_eq!(node.fetch_stats().cache_misses, 1);
        assert_eq!(node.fetch_stats().bytes_from_disk, 1000);
        assert_eq!(node.fetch_stats().bytes_from_cache, 1000);
        assert_eq!(node.fetch_stats().lower_tier_hits, 0);
    }

    #[test]
    fn preload_avoids_disk_reads() {
        let mut node = StorageNode::new(DeviceProfile::hdd(), PolicyKind::MinIo, 1 << 20);
        node.preload(7, 500);
        let (_, src) = node.fetch(SimTime::ZERO, 7, 500, AccessPattern::Random);
        assert_eq!(src, FetchSource::Cache);
        assert_eq!(node.device().bytes_read(), 0);
    }

    #[test]
    fn lru_node_thrashes_but_minio_node_does_not() {
        // 100 items of 1 KB, cache of 50 KB, three random-order epochs.
        let items: Vec<u64> = (0..100).collect();
        let mut lru = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::Lru, 50_000);
        let mut minio = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 50_000);
        let order = |epoch: u64| -> Vec<u64> {
            items.iter().map(|&i| (i * 13 + epoch * 37) % 100).collect()
        };
        for &k in &order(0) {
            lru.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            minio.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
        }
        lru.reset_epoch_stats();
        minio.reset_epoch_stats();
        for epoch in 1..4 {
            for &k in &order(epoch) {
                lru.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
                minio.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            }
        }
        assert_eq!(minio.fetch_stats().cache_misses, 3 * 50);
        assert!(lru.fetch_stats().cache_misses >= minio.fetch_stats().cache_misses);
        assert!(lru.fetch_stats().bytes_from_disk >= minio.fetch_stats().bytes_from_disk);
    }

    #[test]
    fn reset_preserves_cache_contents() {
        let mut node = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 10_000);
        node.fetch(SimTime::ZERO, 1, 1000, AccessPattern::Random);
        node.reset_epoch_stats();
        assert!(node.is_cached(&1));
        assert_eq!(node.fetch_stats().total_bytes(), 0);
        assert_eq!(node.cache_used_bytes(), 1000);
    }

    #[test]
    fn evict_keyspace_frees_one_jobs_window_and_forces_re_misses() {
        let mut node = StorageNode::new(DeviceProfile::sata_ssd(), PolicyKind::MinIo, 1 << 20);
        for k in (0..5u64).chain(1000..1005) {
            node.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
        }
        assert_eq!(node.cache_used_bytes(), 10_000);
        assert_eq!(node.evict_keyspace(1000, 2000), 5_000);
        node.reset_epoch_stats();
        for k in (0..5u64).chain(1000..1005) {
            node.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
        }
        // The surviving window still hits; the evicted one re-misses.
        assert_eq!(node.fetch_stats().cache_hits, 5);
        assert_eq!(node.fetch_stats().cache_misses, 5);
    }

    #[test]
    fn debug_format_mentions_policy() {
        let node = StorageNode::new(DeviceProfile::hdd(), PolicyKind::Lru, 10);
        let s = format!("{node:?}");
        assert!(s.contains("LRU"));
        assert!(s.contains("hdd"));
    }

    #[test]
    fn tiered_node_serves_spill_hits_from_the_ssd_tier() {
        // MinIO DRAM (3 items) over MinIO SSD (4 items), HDD durable store:
        // the chain extends reach to 7 of 10 items, and the per-source times
        // are ordered dram < ssd < hdd.
        let ssd = DeviceProfile::sata_ssd();
        let mut node = StorageNode::with_tiers(
            DeviceProfile::hdd(),
            vec![
                TierSpec {
                    name: "dram",
                    policy: PolicyKind::MinIo,
                    capacity_bytes: 3_000,
                    cost: crate::profiles::dram_tier_cost(),
                },
                TierSpec {
                    name: "ssd",
                    policy: PolicyKind::MinIo,
                    capacity_bytes: 4_000,
                    cost: ssd.tier_cost(AccessPattern::Random),
                },
            ],
        );
        for k in 0..10u64 {
            let (_, src) = node.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            assert_eq!(src, FetchSource::Disk, "cold chain");
        }
        node.reset_epoch_stats();
        let mut dram_t = SimTime::ZERO;
        let mut ssd_t = SimTime::ZERO;
        let mut disk_t = SimTime::ZERO;
        for k in 0..10u64 {
            let (t, src) = node.fetch(SimTime::ZERO, k, 1000, AccessPattern::Random);
            match src {
                FetchSource::Cache => dram_t = t,
                FetchSource::LowerTier(1) => ssd_t = t,
                FetchSource::Disk => disk_t = t,
                other => panic!("unexpected source {other:?}"),
            }
        }
        let s = node.fetch_stats();
        assert_eq!(s.cache_hits, 7);
        assert_eq!(s.lower_tier_hits, 4);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.bytes_from_cache, 7_000);
        assert_eq!(s.bytes_from_lower_tiers, 4_000);
        assert!(
            dram_t < ssd_t && ssd_t < disk_t,
            "{dram_t:?} {ssd_t:?} {disk_t:?}"
        );
        // Only real device reads touch the durable store's counters.
        assert_eq!(node.device().bytes_read(), 3_000);
    }
}
