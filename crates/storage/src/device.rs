//! A storage device with cumulative I/O accounting.

use crate::profiles::DeviceProfile;
use simkit::{SimTime, TimeSeries};

/// Whether a read is part of a sequential scan or a random small-file read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Large, contiguous reads (TFRecord chunks, DALI-seq file order).
    Sequential,
    /// Small random reads (shuffled file-per-item access).
    Random,
}

/// A storage device instance: a [`DeviceProfile`] plus counters and an
/// optional per-read time series used for the disk-I/O-over-time figure.
#[derive(Debug, Clone)]
pub struct StorageDevice {
    profile: DeviceProfile,
    bytes_read: u64,
    read_requests: u64,
    busy: SimTime,
    timeline: TimeSeries,
}

impl StorageDevice {
    /// Create a device from a profile.
    pub fn new(profile: DeviceProfile) -> Self {
        StorageDevice {
            profile,
            bytes_read: 0,
            read_requests: 0,
            busy: SimTime::ZERO,
            timeline: TimeSeries::new(),
        }
    }

    /// The device's static profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Perform a read of `bytes` at virtual time `at`, returning the time the
    /// read takes in isolation (contention is modelled by the caller, which
    /// may divide the device bandwidth among concurrent jobs).
    pub fn read(&mut self, at: SimTime, bytes: u64, pattern: AccessPattern) -> SimTime {
        let secs = self.profile.read_seconds(bytes, pattern);
        self.bytes_read += bytes;
        self.read_requests += 1;
        self.busy += SimTime::from_secs(secs);
        self.timeline.push(at, bytes as f64);
        SimTime::from_secs(secs)
    }

    /// Total bytes read from the device since construction or the last reset.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of read requests issued.
    pub fn read_requests(&self) -> u64 {
        self.read_requests
    }

    /// Total device busy time (sum of isolated read durations).
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Per-read `(time, bytes)` series, for I/O-pattern plots.
    pub fn timeline(&self) -> &TimeSeries {
        &self.timeline
    }

    /// Reset counters and the timeline (e.g. between experiments).
    pub fn reset_counters(&mut self) {
        self.bytes_read = 0;
        self.read_requests = 0;
        self.busy = SimTime::ZERO;
        self.timeline = TimeSeries::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_accumulates_counters() {
        let mut d = StorageDevice::new(DeviceProfile::sata_ssd());
        let t = d.read(SimTime::ZERO, 530_000_000, AccessPattern::Random);
        assert!((t.as_secs() - 1.0).abs() < 0.01);
        d.read(SimTime::from_secs(1.0), 1_000, AccessPattern::Random);
        assert_eq!(d.bytes_read(), 530_001_000);
        assert_eq!(d.read_requests(), 2);
        assert_eq!(d.timeline().len(), 2);
    }

    #[test]
    fn hdd_random_reads_are_much_slower_than_sequential() {
        let mut d = StorageDevice::new(DeviceProfile::hdd());
        let rand = d.read(SimTime::ZERO, 10_000_000, AccessPattern::Random);
        let seq = d.read(SimTime::ZERO, 10_000_000, AccessPattern::Sequential);
        assert!(rand.as_secs() > 5.0 * seq.as_secs());
    }

    #[test]
    fn reset_clears_counters() {
        let mut d = StorageDevice::new(DeviceProfile::hdd());
        d.read(SimTime::ZERO, 1000, AccessPattern::Random);
        d.reset_counters();
        assert_eq!(d.bytes_read(), 0);
        assert_eq!(d.read_requests(), 0);
        assert!(d.timeline().is_empty());
    }
}
