//! Calibrated device profiles.
//!
//! Throughput numbers come straight from the paper:
//! * Figure 1 / Table 2: SATA SSD random reads at 530 MB/s, hard drives at
//!   15–50 MB/s (we use 15 MB/s for random and 120 MB/s for sequential reads,
//!   matching the st1-style volumes of Config-HDD-1080Ti),
//! * §4.2: cross-node network bandwidth (10–40 Gbps) is up to 4× the SATA SSD
//!   read bandwidth,
//! * Figure 1: a 35 %-cached dataset yields an effective 802 MB/s fetch rate,
//!   which pins DRAM bandwidth far above device bandwidth.

const MB: f64 = 1_000_000.0;

/// DRAM copy bandwidth used for cache hits, in bytes/second.
///
/// The paper's DS-Analyzer appendix notes the cache fetch rate is "a few tens
/// of GBps"; 20 GB/s is a conservative single-socket figure.
pub const DRAM_BANDWIDTH_BYTES_PER_SEC: f64 = 20_000.0 * MB;

/// Static throughput characteristics of a storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Short name used in reports.
    pub name: &'static str,
    /// Sequential-read throughput in bytes/second.
    pub seq_read_bps: f64,
    /// Random-read throughput in bytes/second (small-file reads).
    pub rand_read_bps: f64,
    /// Fixed per-request latency in seconds (seek/queue overhead).
    pub request_latency_s: f64,
}

impl DeviceProfile {
    /// SATA SSD of Config-SSD-V100: 530 MB/s random reads (Table 2).
    pub fn sata_ssd() -> Self {
        DeviceProfile {
            name: "sata-ssd",
            seq_read_bps: 550.0 * MB,
            rand_read_bps: 530.0 * MB,
            request_latency_s: 100e-6,
        }
    }

    /// Magnetic hard drive of Config-HDD-1080Ti: 15–50 MB/s random reads
    /// (Table 2); sequential large-record reads reach ~120 MB/s.
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd",
            seq_read_bps: 120.0 * MB,
            rand_read_bps: 15.0 * MB,
            request_latency_s: 8e-3,
        }
    }

    /// A modern NVMe drive (not evaluated in the paper, included for what-if
    /// analysis with DS-Analyzer).
    pub fn nvme_ssd() -> Self {
        DeviceProfile {
            name: "nvme-ssd",
            seq_read_bps: 3_000.0 * MB,
            rand_read_bps: 2_500.0 * MB,
            request_latency_s: 20e-6,
        }
    }

    /// A RAM-backed store; effectively removes fetch stalls.
    pub fn ramdisk() -> Self {
        DeviceProfile {
            name: "ramdisk",
            seq_read_bps: DRAM_BANDWIDTH_BYTES_PER_SEC,
            rand_read_bps: DRAM_BANDWIDTH_BYTES_PER_SEC,
            request_latency_s: 1e-6,
        }
    }

    /// Throughput for a given access pattern, in bytes/second.
    pub fn bandwidth(&self, pattern: crate::AccessPattern) -> f64 {
        match pattern {
            crate::AccessPattern::Sequential => self.seq_read_bps,
            crate::AccessPattern::Random => self.rand_read_bps,
        }
    }

    /// Time to read `bytes` with the given access pattern, in seconds.
    pub fn read_seconds(&self, bytes: u64, pattern: crate::AccessPattern) -> f64 {
        self.request_latency_s + bytes as f64 / self.bandwidth(pattern)
    }

    /// The tier-chain access cost of serving hits from a cache tier backed
    /// by this device (`dcache::TierChain` charges it for every hit at the
    /// tier).
    pub fn tier_cost(&self, pattern: crate::AccessPattern) -> dcache::TierCost {
        dcache::TierCost {
            bandwidth_bps: self.bandwidth(pattern),
            latency_s: self.request_latency_s,
        }
    }
}

/// The tier-chain access cost of a DRAM cache tier: pure bandwidth at
/// [`DRAM_BANDWIDTH_BYTES_PER_SEC`], no per-request latency — exactly the
/// cost the pre-hierarchy simulator charged for cache hits, so a single-tier
/// chain reproduces its fetch times bit-identically.
pub fn dram_tier_cost() -> dcache::TierCost {
    dcache::TierCost {
        bandwidth_bps: DRAM_BANDWIDTH_BYTES_PER_SEC,
        latency_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessPattern;

    #[test]
    fn paper_calibration_values() {
        let ssd = DeviceProfile::sata_ssd();
        assert!((ssd.rand_read_bps / MB - 530.0).abs() < 1.0);
        let hdd = DeviceProfile::hdd();
        assert!((hdd.rand_read_bps / MB - 15.0).abs() < 1.0);
        assert!(hdd.seq_read_bps > hdd.rand_read_bps);
    }

    #[test]
    fn read_seconds_scales_with_bytes() {
        let ssd = DeviceProfile::sata_ssd();
        let t1 = ssd.read_seconds(530_000_000, AccessPattern::Random);
        assert!(
            (t1 - 1.0).abs() < 0.01,
            "530 MB at 530 MB/s ≈ 1 s, got {t1}"
        );
        let t2 = ssd.read_seconds(1_060_000_000, AccessPattern::Random);
        assert!(t2 > 1.9 && t2 < 2.1);
    }

    #[test]
    fn ordering_of_device_speeds() {
        let hdd = DeviceProfile::hdd();
        let ssd = DeviceProfile::sata_ssd();
        let nvme = DeviceProfile::nvme_ssd();
        let ram = DeviceProfile::ramdisk();
        assert!(hdd.rand_read_bps < ssd.rand_read_bps);
        assert!(ssd.rand_read_bps < nvme.rand_read_bps);
        assert!(nvme.rand_read_bps < ram.rand_read_bps + 1.0);
    }
}
