//! Dataset specifications calibrated from the paper (Table 1 and §5).

use crate::ItemId;

const KIB: u64 = 1024;
const GIB: u64 = 1024 * 1024 * 1024;

/// A dataset described by its item count and per-item size statistics.
///
/// Per-item sizes are deterministic pseudo-random values uniformly spread
/// around the average (`avg_item_bytes ± spread`), so that two simulation runs
/// and the functional loader all agree on the size of item `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name, e.g. `"imagenet-1k"`.
    pub name: String,
    /// Number of items (images / audio clips) in the dataset.
    pub num_items: u64,
    /// Average raw (encoded) item size in bytes.
    pub avg_item_bytes: u64,
    /// Relative half-width of the per-item size distribution in `[0, 1)`:
    /// sizes are uniform in `avg * (1 ± spread)`.
    pub size_spread: f64,
    /// Multiplicative blow-up of an item once decoded and pre-processed
    /// (the paper reports pre-processed items are 5–7× larger than raw).
    pub decoded_multiplier: f64,
}

impl DatasetSpec {
    /// Build a custom spec.
    ///
    /// # Panics
    /// Panics if `num_items` or `avg_item_bytes` is zero, or the spread is not
    /// in `[0, 1)`.
    pub fn new(
        name: impl Into<String>,
        num_items: u64,
        avg_item_bytes: u64,
        size_spread: f64,
        decoded_multiplier: f64,
    ) -> Self {
        assert!(num_items > 0, "dataset must have at least one item");
        assert!(avg_item_bytes > 0, "items must have non-zero size");
        assert!(
            (0.0..1.0).contains(&size_spread),
            "size spread must be in [0,1)"
        );
        assert!(decoded_multiplier >= 1.0, "decoding cannot shrink items");
        DatasetSpec {
            name: name.into(),
            num_items,
            avg_item_bytes,
            size_spread,
            decoded_multiplier,
        }
    }

    /// ImageNet-1k (ILSVRC 2012): ~1.28 M images, 146 GiB total
    /// (Table 1 of the paper), ≈120 KiB per JPEG on average.
    pub fn imagenet_1k() -> Self {
        DatasetSpec::new("imagenet-1k", 1_281_167, 146 * GIB / 1_281_167, 0.6, 6.0)
    }

    /// ImageNet-22k: ~14.2 M images, 1.3 TiB total; the appendix notes the
    /// average image is ≈90 KiB, noticeably smaller than OpenImages.
    pub fn imagenet_22k() -> Self {
        DatasetSpec::new("imagenet-22k", 14_200_000, 90 * KIB, 0.6, 6.0)
    }

    /// OpenImages (object-detection subset used for SSD-Res18): 561 GiB.
    pub fn openimages() -> Self {
        DatasetSpec::new("openimages", 1_900_000, 561 * GIB / 1_900_000, 0.5, 6.0)
    }

    /// OpenImages-Extended used for image classification: 645 GiB, the
    /// appendix cites ≈300 KiB per image.
    pub fn openimages_extended() -> Self {
        DatasetSpec::new("openimages-ext", 2_150_000, 300 * KIB, 0.5, 6.0)
    }

    /// Free Music Archive (FMA) audio dataset: 950 GiB of clips used by the
    /// M5 audio-classification model.
    pub fn fma() -> Self {
        DatasetSpec::new("fma", 106_574, 950 * GIB / 106_574, 0.3, 5.0)
    }

    /// All paper datasets, for sweeps.
    pub fn all_paper_datasets() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::imagenet_1k(),
            DatasetSpec::imagenet_22k(),
            DatasetSpec::openimages(),
            DatasetSpec::openimages_extended(),
            DatasetSpec::fma(),
        ]
    }

    /// Total raw size of the dataset in bytes.
    pub fn total_bytes(&self) -> u64 {
        // Per-item sizes average to `avg_item_bytes` by construction.
        self.num_items * self.avg_item_bytes
    }

    /// Total size in GiB (convenience for reports).
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / GIB as f64
    }

    /// Deterministic size of item `item` in bytes.
    ///
    /// Uses a splitmix64-style hash of the item id so every component of the
    /// system (simulator, caches, functional loader) agrees on item sizes
    /// without storing them.
    pub fn item_size(&self, item: ItemId) -> u64 {
        debug_assert!(item < self.num_items, "item {item} out of range");
        if self.size_spread == 0.0 {
            return self.avg_item_bytes;
        }
        let h = splitmix64(item.wrapping_add(0x9E37_79B9_7F4A_7C15));
        // Uniform in [0,1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + self.size_spread * (2.0 * u - 1.0);
        ((self.avg_item_bytes as f64) * factor).round().max(1.0) as u64
    }

    /// Size of item `item` once decoded and pre-processed, in bytes.
    pub fn decoded_size(&self, item: ItemId) -> u64 {
        (self.item_size(item) as f64 * self.decoded_multiplier).round() as u64
    }

    /// A scaled-down copy of this dataset with approximately
    /// `num_items / factor` items and identical size statistics.
    ///
    /// Simulation *shapes* (stall fractions, hit ratios, relative speedups)
    /// are invariant to this scaling as long as the cache size is expressed as
    /// a fraction of the dataset; only absolute epoch times shrink.  The
    /// benches use scaled datasets so every figure regenerates in seconds.
    pub fn scaled(&self, factor: u64) -> DatasetSpec {
        assert!(factor > 0, "scale factor must be positive");
        DatasetSpec {
            name: format!("{}/{}x", self.name, factor),
            num_items: (self.num_items / factor).max(1),
            ..self.clone()
        }
    }

    /// The number of bytes needed to cache `fraction` of the dataset.
    pub fn cache_bytes_for_fraction(&self, fraction: f64) -> u64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        (self.total_bytes() as f64 * fraction) as u64
    }
}

/// splitmix64 hash step (public-domain constant mixing).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_scale() {
        // Table 1: ImageNet-22k 1.3 TB, OpenImages-Extended 645 GB,
        // ImageNet-1k 146 GB, OpenImages 561 GB, FMA 950 GB.
        assert!((DatasetSpec::imagenet_1k().total_gib() - 146.0).abs() < 2.0);
        assert!((DatasetSpec::openimages().total_gib() - 561.0).abs() < 2.0);
        assert!((DatasetSpec::fma().total_gib() - 950.0).abs() < 2.0);
        let in22k = DatasetSpec::imagenet_22k().total_gib();
        assert!(
            in22k > 1100.0 && in22k < 1400.0,
            "ImageNet-22k = {in22k} GiB"
        );
        let oie = DatasetSpec::openimages_extended().total_gib();
        assert!(oie > 600.0 && oie < 680.0, "OpenImages-Ext = {oie} GiB");
    }

    #[test]
    fn item_sizes_are_deterministic_and_near_average() {
        let spec = DatasetSpec::imagenet_1k().scaled(1000);
        let s1 = spec.item_size(42);
        let s2 = spec.item_size(42);
        assert_eq!(s1, s2);
        let mean: f64 = (0..spec.num_items)
            .map(|i| spec.item_size(i) as f64)
            .sum::<f64>()
            / spec.num_items as f64;
        let avg = spec.avg_item_bytes as f64;
        assert!(
            (mean - avg).abs() / avg < 0.05,
            "mean {mean} deviates from avg {avg}"
        );
    }

    #[test]
    fn item_sizes_respect_spread_bounds() {
        let spec = DatasetSpec::new("t", 10_000, 1000, 0.5, 6.0);
        for i in 0..spec.num_items {
            let s = spec.item_size(i);
            assert!((500..=1500).contains(&s), "item {i} size {s} out of bounds");
        }
    }

    #[test]
    fn zero_spread_gives_constant_sizes() {
        let spec = DatasetSpec::new("t", 100, 1234, 0.0, 6.0);
        assert!((0..100).all(|i| spec.item_size(i) == 1234));
    }

    #[test]
    fn decoded_size_applies_multiplier() {
        let spec = DatasetSpec::new("t", 10, 1000, 0.0, 6.0);
        assert_eq!(spec.decoded_size(0), 6000);
    }

    #[test]
    fn scaling_preserves_item_size_statistics() {
        let full = DatasetSpec::openimages_extended();
        let small = full.scaled(10_000);
        assert_eq!(small.avg_item_bytes, full.avg_item_bytes);
        assert!(small.num_items >= 1);
        assert!(small.num_items <= full.num_items / 10_000 + 1);
    }

    #[test]
    fn cache_fraction_math() {
        let spec = DatasetSpec::new("t", 1000, 1000, 0.0, 6.0);
        assert_eq!(spec.cache_bytes_for_fraction(0.35), 350_000);
        assert_eq!(spec.cache_bytes_for_fraction(1.0), 1_000_000);
        assert_eq!(spec.cache_bytes_for_fraction(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_dataset_rejected() {
        let _ = DatasetSpec::new("t", 0, 1, 0.0, 6.0);
    }
}
