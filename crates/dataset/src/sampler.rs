//! Epoch samplers.
//!
//! DNN training visits every item of the dataset exactly once per epoch in a
//! fresh random order (§2 of the paper).  Distributed data-parallel training
//! splits each epoch's permutation into disjoint per-server shards that change
//! every epoch; coordinated prep assigns each concurrent HP-search job a
//! *static* shard of the items it is responsible for preparing.

use crate::ItemId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces the per-epoch random permutation of a dataset.
///
/// The permutation for `(seed, epoch)` is deterministic, so every component
/// (baseline loaders, CoorDL, the simulator and the accuracy experiments)
/// observes the same sample order — exactly what "CoorDL does not change the
/// randomness of sampling" requires.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    num_items: u64,
    seed: u64,
}

impl EpochSampler {
    /// Sampler over `num_items` items with a base RNG seed.
    pub fn new(num_items: u64, seed: u64) -> Self {
        assert!(num_items > 0, "cannot sample an empty dataset");
        EpochSampler { num_items, seed }
    }

    /// Number of items per epoch.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// The random visit order for `epoch`.
    pub fn permutation(&self, epoch: u64) -> Vec<ItemId> {
        let mut order = Vec::new();
        self.permutation_into(epoch, &mut order);
        order
    }

    /// Write the random visit order for `epoch` into `out`, reusing its
    /// allocation.  Bit-identical to [`EpochSampler::permutation`]; the
    /// allocation-free variant sweep engines call once per epoch.
    pub fn permutation_into(&self, epoch: u64, out: &mut Vec<ItemId>) {
        out.clear();
        out.extend(0..self.num_items);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ epoch.wrapping_mul(0x9E37_79B9));
        out.shuffle(&mut rng);
    }

    /// The visit order for `epoch` restricted to a distributed job: the
    /// epoch's permutation is cut into `num_shards` equal, disjoint,
    /// *epoch-varying* shards and shard `shard` is returned.  This mirrors
    /// `DistributedSampler`: collectively the shards cover the dataset once.
    pub fn distributed_shard(&self, epoch: u64, shard: usize, num_shards: usize) -> Vec<ItemId> {
        assert!(num_shards > 0, "need at least one shard");
        assert!(shard < num_shards, "shard {shard} out of {num_shards}");
        let perm = self.permutation(epoch);
        let base = perm.len() / num_shards;
        let rem = perm.len() % num_shards;
        // First `rem` shards get one extra item so the shards tile the epoch.
        let start = shard * base + shard.min(rem);
        let len = base + usize::from(shard < rem);
        perm[start..start + len].to_vec()
    }

    /// Static (epoch-invariant) shard assignment used by coordinated prep:
    /// item `i` belongs to job `i % num_jobs`.  Each job is responsible for
    /// fetching + pre-processing its own shard every epoch; the prepared
    /// minibatches are then shared with all jobs through the staging area.
    pub fn static_shard(&self, job: usize, num_jobs: usize) -> Vec<ItemId> {
        assert!(num_jobs > 0, "need at least one job");
        assert!(job < num_jobs, "job {job} out of {num_jobs}");
        (0..self.num_items)
            .filter(|i| (i % num_jobs as u64) as usize == job)
            .collect()
    }
}

/// Split an ordered list of items into minibatches of `batch_size`
/// (the final minibatch may be smaller).
pub fn minibatches(order: &[ItemId], batch_size: usize) -> Vec<Vec<ItemId>> {
    assert!(batch_size > 0, "batch size must be positive");
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// A full sharding plan for one epoch of a distributed or multi-job run.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// One item list per shard (server or job).
    pub shards: Vec<Vec<ItemId>>,
}

impl ShardPlan {
    /// Epoch-varying distributed plan across `num_shards` servers.
    pub fn distributed(sampler: &EpochSampler, epoch: u64, num_shards: usize) -> Self {
        ShardPlan {
            shards: (0..num_shards)
                .map(|s| sampler.distributed_shard(epoch, s, num_shards))
                .collect(),
        }
    }

    /// Static plan across `num_jobs` coordinated-prep jobs.
    pub fn coordinated(sampler: &EpochSampler, num_jobs: usize) -> Self {
        ShardPlan {
            shards: (0..num_jobs)
                .map(|j| sampler.static_shard(j, num_jobs))
                .collect(),
        }
    }

    /// Total items across all shards.
    pub fn total_items(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_visits_every_item_exactly_once() {
        let s = EpochSampler::new(1000, 7);
        let perm = s.permutation(3);
        assert_eq!(perm.len(), 1000);
        let set: HashSet<_> = perm.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn permutations_differ_across_epochs_but_are_reproducible() {
        let s = EpochSampler::new(500, 42);
        let e0 = s.permutation(0);
        let e1 = s.permutation(1);
        assert_ne!(e0, e1, "epochs should be shuffled differently");
        assert_eq!(e0, s.permutation(0), "same epoch must reproduce");
    }

    #[test]
    fn permutation_into_reuses_and_matches() {
        let s = EpochSampler::new(777, 13);
        let mut buf = vec![9u64; 4]; // stale contents must not leak through
        for epoch in 0..4 {
            s.permutation_into(epoch, &mut buf);
            assert_eq!(buf, s.permutation(epoch));
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = EpochSampler::new(200, 1).permutation(0);
        let b = EpochSampler::new(200, 2).permutation(0);
        assert_ne!(a, b);
    }

    #[test]
    fn distributed_shards_partition_the_epoch() {
        let s = EpochSampler::new(103, 9); // deliberately not divisible
        for epoch in 0..3 {
            let mut all = Vec::new();
            for shard in 0..4 {
                all.extend(s.distributed_shard(epoch, shard, 4));
            }
            assert_eq!(all.len(), 103);
            let set: HashSet<_> = all.iter().collect();
            assert_eq!(set.len(), 103, "shards must be disjoint and cover");
        }
    }

    #[test]
    fn distributed_shards_change_every_epoch() {
        let s = EpochSampler::new(1000, 5);
        let e0: HashSet<_> = s.distributed_shard(0, 0, 2).into_iter().collect();
        let e1: HashSet<_> = s.distributed_shard(1, 0, 2).into_iter().collect();
        assert_ne!(e0, e1, "a server's shard should change across epochs");
    }

    #[test]
    fn static_shards_are_epoch_invariant_and_balanced() {
        let s = EpochSampler::new(1000, 5);
        let plan = ShardPlan::coordinated(&s, 8);
        assert_eq!(plan.total_items(), 1000);
        for shard in &plan.shards {
            assert!(shard.len() == 125);
        }
        // Disjoint.
        let set: HashSet<_> = plan.shards.iter().flatten().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn minibatch_assembly() {
        let order: Vec<u64> = (0..10).collect();
        let b = minibatches(&order, 4);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], vec![0, 1, 2, 3]);
        assert_eq!(b[2], vec![8, 9]);
        let total: usize = b.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = minibatches(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn shard_index_out_of_range_rejected() {
        let s = EpochSampler::new(10, 0);
        let _ = s.distributed_shard(0, 3, 3);
    }
}
