//! Dataset substrate: the training datasets of the paper, modelled
//! synthetically.
//!
//! Data-stall behaviour depends on *how many* items a dataset has, *how large*
//! they are and *in what order* they are visited — not on pixel or waveform
//! content.  This crate therefore provides:
//!
//! * [`DatasetSpec`] — item count + size statistics for the four datasets of
//!   the paper (ImageNet-1k, ImageNet-22k, OpenImages, OpenImages-Extended,
//!   FMA), with deterministic per-item sizes and a `scaled` helper so
//!   simulations and tests can run on a laptop,
//! * [`sampler`] — the epoch samplers used by every loader: a fresh random
//!   permutation per epoch, minibatch assembly, random per-epoch shards for
//!   distributed training and static shards for coordinated prep,
//! * [`mod@format`] — on-storage layouts: one file per item (PyTorch/DALI) and
//!   chunked record files (TensorFlow's TFRecord / MXNet's RecordIO), which
//!   change the *granularity* at which the page cache operates,
//! * [`synthetic`] — functional data sources that actually materialise bytes,
//!   used by the real (multi-threaded) CoorDL loader and the mini-DNN
//!   training substrate.

pub mod format;
pub mod sampler;
pub mod specs;
pub mod synthetic;

pub use format::{FetchUnit, StorageFormat};
pub use sampler::{minibatches, EpochSampler, ShardPlan};
pub use specs::DatasetSpec;
pub use synthetic::{DataSource, InMemoryStore, LabeledVectorStore, SyntheticItemStore};

/// Identifier of a data item within a dataset (its index).
pub type ItemId = u64;
