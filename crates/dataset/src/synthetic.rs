//! Functional data sources.
//!
//! The simulator only needs item *sizes*, but the real (multi-threaded)
//! CoorDL loader and the mini-DNN training substrate need actual bytes.  The
//! sources here generate content deterministically from `(seed, item)` so
//! tests can assert exact equality of samples across loaders, which is how we
//! demonstrate that CoorDL's coordination does not change what the model sees.

use crate::{DatasetSpec, ItemId};

/// A source of raw (encoded) data items.
///
/// Implementations must be cheap to share across loader worker threads.
pub trait DataSource: Send + Sync {
    /// Number of items.
    fn len(&self) -> u64;

    /// True when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw size of item `item` in bytes (without reading it).
    fn item_bytes(&self, item: ItemId) -> u64;

    /// Read the raw bytes of item `item`.
    fn read(&self, item: ItemId) -> Vec<u8>;
}

/// Deterministic pseudo-random item bytes shaped by a [`DatasetSpec`].
///
/// Item `i` is a buffer of `spec.item_size(i)` bytes whose content is a
/// xorshift stream seeded by `(seed, i)`; the first 8 bytes encode the item id
/// so tests can verify end-to-end identity through decode/augment stages.
#[derive(Debug, Clone)]
pub struct SyntheticItemStore {
    spec: DatasetSpec,
    seed: u64,
}

impl SyntheticItemStore {
    /// Create a store for `spec` with generation seed `seed`.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        SyntheticItemStore { spec, seed }
    }

    /// The dataset specification backing this store.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Recover the item id embedded in a raw buffer produced by [`read`].
    ///
    /// [`read`]: DataSource::read
    pub fn embedded_item_id(buf: &[u8]) -> Option<ItemId> {
        if buf.len() < 8 {
            return None;
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[..8]);
        Some(u64::from_le_bytes(b))
    }
}

impl DataSource for SyntheticItemStore {
    fn len(&self) -> u64 {
        self.spec.num_items
    }

    fn item_bytes(&self, item: ItemId) -> u64 {
        self.spec.item_size(item)
    }

    fn read(&self, item: ItemId) -> Vec<u8> {
        assert!(item < self.len(), "item {item} out of range");
        let size = self.spec.item_size(item) as usize;
        let mut buf = Vec::with_capacity(size);
        buf.extend_from_slice(&item.to_le_bytes());
        let mut state = self.seed ^ item.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF;
        while buf.len() < size {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let bytes = word.to_le_bytes();
            let take = (size - buf.len()).min(8);
            buf.extend_from_slice(&bytes[..take]);
        }
        buf
    }
}

/// A data source that holds all items in memory (useful for tests and for the
/// staging/cache layers of the functional loader).
#[derive(Debug, Clone)]
pub struct InMemoryStore {
    items: Vec<Vec<u8>>,
}

impl InMemoryStore {
    /// Build a store from explicit item buffers.
    pub fn new(items: Vec<Vec<u8>>) -> Self {
        InMemoryStore { items }
    }

    /// Materialise every item of `source` into memory.
    pub fn materialize(source: &dyn DataSource) -> Self {
        InMemoryStore {
            items: (0..source.len()).map(|i| source.read(i)).collect(),
        }
    }
}

impl DataSource for InMemoryStore {
    fn len(&self) -> u64 {
        self.items.len() as u64
    }

    fn item_bytes(&self, item: ItemId) -> u64 {
        self.items[item as usize].len() as u64
    }

    fn read(&self, item: ItemId) -> Vec<u8> {
        self.items[item as usize].clone()
    }
}

/// A labelled synthetic classification dataset (Gaussian-ish class blobs),
/// encoded as raw bytes so it can flow through the same fetch → decode →
/// augment pipeline as images.
///
/// Layout of each item: `label: u32 LE` followed by `dims` little-endian
/// `f32` features.  Used by the `coordl-dnn` crate for the training-to-accuracy
/// experiment (paper Figure 10).
#[derive(Debug, Clone)]
pub struct LabeledVectorStore {
    num_items: u64,
    dims: usize,
    classes: u32,
    seed: u64,
}

impl LabeledVectorStore {
    /// Create a dataset of `num_items` vectors with `dims` features spread
    /// over `classes` classes.
    pub fn new(num_items: u64, dims: usize, classes: u32, seed: u64) -> Self {
        assert!(num_items > 0 && dims > 0 && classes > 1);
        LabeledVectorStore {
            num_items,
            dims,
            classes,
            seed,
        }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of classes.
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// The ground-truth label of item `item`.
    pub fn label_of(&self, item: ItemId) -> u32 {
        (item % self.classes as u64) as u32
    }

    /// Decode a raw buffer produced by [`read`] into `(label, features)`.
    ///
    /// [`read`]: DataSource::read
    pub fn decode(buf: &[u8]) -> (u32, Vec<f32>) {
        assert!(
            buf.len() >= 4 && (buf.len() - 4).is_multiple_of(4),
            "malformed item"
        );
        let label = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        let features = buf[4..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        (label, features)
    }

    fn feature(&self, item: ItemId, d: usize) -> f32 {
        // Class centroid + deterministic per-item jitter.
        let label = self.label_of(item) as f32;
        let sign = if d.is_multiple_of(2) { 1.0 } else { -1.0 };
        let centroid = (label + 1.0) * ((d % 7) as f32 + 1.0) / 8.0 * sign;
        let h = (self.seed ^ item.wrapping_mul(31).wrapping_add(d as u64 * 7919))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let jitter = ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        centroid + 0.3 * jitter
    }
}

impl DataSource for LabeledVectorStore {
    fn len(&self) -> u64 {
        self.num_items
    }

    fn item_bytes(&self, _item: ItemId) -> u64 {
        4 + 4 * self.dims as u64
    }

    fn read(&self, item: ItemId) -> Vec<u8> {
        assert!(item < self.num_items, "item {item} out of range");
        let mut buf = Vec::with_capacity(4 + 4 * self.dims);
        buf.extend_from_slice(&self.label_of(item).to_le_bytes());
        for d in 0..self.dims {
            buf.extend_from_slice(&self.feature(item, d).to_le_bytes());
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_items_are_deterministic_and_sized() {
        let spec = DatasetSpec::new("t", 100, 4096, 0.4, 6.0);
        let store = SyntheticItemStore::new(spec.clone(), 7);
        for i in [0u64, 13, 99] {
            let a = store.read(i);
            let b = store.read(i);
            assert_eq!(a, b, "reads must be deterministic");
            assert_eq!(a.len() as u64, spec.item_size(i));
            assert_eq!(SyntheticItemStore::embedded_item_id(&a), Some(i));
        }
    }

    #[test]
    fn different_items_have_different_content() {
        let spec = DatasetSpec::new("t", 10, 1024, 0.0, 6.0);
        let store = SyntheticItemStore::new(spec, 7);
        assert_ne!(store.read(1), store.read(2));
    }

    #[test]
    fn different_seeds_give_different_content() {
        let spec = DatasetSpec::new("t", 10, 1024, 0.0, 6.0);
        let a = SyntheticItemStore::new(spec.clone(), 1).read(3);
        let b = SyntheticItemStore::new(spec, 2).read(3);
        // The embedded id prefix is equal, but the payload differs.
        assert_eq!(&a[..8], &b[..8]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let spec = DatasetSpec::new("t", 5, 64, 0.0, 6.0);
        SyntheticItemStore::new(spec, 0).read(5);
    }

    #[test]
    fn in_memory_store_round_trips() {
        let spec = DatasetSpec::new("t", 20, 256, 0.2, 6.0);
        let synth = SyntheticItemStore::new(spec, 3);
        let mem = InMemoryStore::materialize(&synth);
        assert_eq!(mem.len(), 20);
        for i in 0..20 {
            assert_eq!(mem.read(i), synth.read(i));
            assert_eq!(mem.item_bytes(i), synth.item_bytes(i));
        }
    }

    #[test]
    fn labeled_store_encodes_and_decodes() {
        let store = LabeledVectorStore::new(50, 8, 5, 11);
        for i in 0..50 {
            let buf = store.read(i);
            assert_eq!(buf.len() as u64, store.item_bytes(i));
            let (label, feats) = LabeledVectorStore::decode(&buf);
            assert_eq!(label, store.label_of(i));
            assert_eq!(feats.len(), 8);
            assert!(feats.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn labeled_store_classes_are_separable_on_average() {
        // Items of different classes should have distinct mean feature
        // vectors — the mini-DNN experiments rely on the task being learnable.
        let store = LabeledVectorStore::new(200, 4, 2, 3);
        let mut mean = [[0.0f64; 4]; 2];
        let mut counts = [0usize; 2];
        for i in 0..200 {
            let (label, feats) = LabeledVectorStore::decode(&store.read(i));
            counts[label as usize] += 1;
            for (d, f) in feats.iter().enumerate() {
                mean[label as usize][d] += *f as f64;
            }
        }
        for (m, c) in mean.iter_mut().zip(counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let dist: f64 = (0..4)
            .map(|d| (mean[0][d] - mean[1][d]).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "class centroids too close: {dist}");
    }
}
