//! On-storage data layouts.
//!
//! PyTorch and DALI read one small file per item; TensorFlow serialises
//! shuffled items into ~100–200 MB TFRecord chunk files (and MXNet uses the
//! similar RecordIO).  The layout matters for two reasons the paper calls out
//! (§3.3.3):
//!
//! * the *unit of caching* becomes the chunk, so a cache hit/miss is decided
//!   per chunk rather than per item, and a streaming scan of large sequential
//!   chunks is a pathological access pattern for LRU;
//! * reads become more sequential, which changes the effective storage
//!   bandwidth (sequential vs random throughput).

use crate::{DatasetSpec, ItemId};

/// How the dataset is laid out on the storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageFormat {
    /// One file per item (PyTorch / DALI file reader).
    FilePerItem,
    /// Items packed into fixed-size record chunks (TFRecord / RecordIO).
    ChunkedRecords {
        /// Target chunk size in bytes (TFRecords are typically 100–200 MB).
        chunk_bytes: u64,
    },
}

impl StorageFormat {
    /// TFRecord-like chunks of 150 MB, the midpoint of the 100–200 MB range
    /// quoted in the paper.
    pub fn tfrecord_default() -> Self {
        StorageFormat::ChunkedRecords {
            chunk_bytes: 150 * 1024 * 1024,
        }
    }

    /// True when reads of consecutive items within a chunk are sequential on
    /// the device.
    pub fn is_sequential_within_unit(self) -> bool {
        matches!(self, StorageFormat::ChunkedRecords { .. })
    }

    /// Number of items that share one fetch unit (1 for file-per-item).
    pub fn items_per_unit(self, spec: &DatasetSpec) -> u64 {
        match self {
            StorageFormat::FilePerItem => 1,
            StorageFormat::ChunkedRecords { chunk_bytes } => {
                (chunk_bytes / spec.avg_item_bytes).max(1)
            }
        }
    }

    /// Total number of fetch units in the dataset.
    pub fn num_units(self, spec: &DatasetSpec) -> u64 {
        match self {
            StorageFormat::FilePerItem => spec.num_items,
            StorageFormat::ChunkedRecords { .. } => {
                let per = self.items_per_unit(spec);
                spec.num_items.div_ceil(per)
            }
        }
    }

    /// The fetch unit that item `item` lives in.
    ///
    /// For chunked records, items are packed in id order, matching how the
    /// TFRecord writer serialises the (pre-shuffled) dataset once.
    pub fn unit_of(self, item: ItemId, spec: &DatasetSpec) -> FetchUnit {
        match self {
            StorageFormat::FilePerItem => FetchUnit {
                key: item,
                bytes: spec.item_size(item),
                items: 1,
            },
            StorageFormat::ChunkedRecords { chunk_bytes } => {
                let per = self.items_per_unit(spec);
                let key = item / per;
                let first = key * per;
                let last = (first + per).min(spec.num_items);
                FetchUnit {
                    key,
                    bytes: chunk_bytes.min((last - first) * spec.avg_item_bytes),
                    items: last - first,
                }
            }
        }
    }
}

/// The unit of storage I/O and caching for a given item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchUnit {
    /// Cache key of the unit (item id, or chunk id for record formats).
    pub key: u64,
    /// Size of the unit in bytes.
    pub bytes: u64,
    /// Number of items contained in the unit.
    pub items: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec::new("t", 1000, 100 * 1024, 0.0, 6.0)
    }

    #[test]
    fn file_per_item_units_are_items() {
        let s = spec();
        let f = StorageFormat::FilePerItem;
        assert_eq!(f.num_units(&s), 1000);
        assert_eq!(f.items_per_unit(&s), 1);
        let u = f.unit_of(7, &s);
        assert_eq!(u.key, 7);
        assert_eq!(u.items, 1);
        assert_eq!(u.bytes, s.item_size(7));
    }

    #[test]
    fn chunked_records_group_items() {
        let s = spec();
        let f = StorageFormat::ChunkedRecords {
            chunk_bytes: 1024 * 1024, // 1 MiB -> 10 items of 100 KiB each
        };
        assert_eq!(f.items_per_unit(&s), 10);
        assert_eq!(f.num_units(&s), 100);
        let u0 = f.unit_of(0, &s);
        let u9 = f.unit_of(9, &s);
        let u10 = f.unit_of(10, &s);
        assert_eq!(u0.key, u9.key);
        assert_ne!(u0.key, u10.key);
        assert_eq!(u0.items, 10);
    }

    #[test]
    fn final_partial_chunk_has_fewer_items() {
        let s = DatasetSpec::new("t", 25, 100, 0.0, 6.0);
        let f = StorageFormat::ChunkedRecords { chunk_bytes: 1000 }; // 10 items/chunk
        assert_eq!(f.num_units(&s), 3);
        let last = f.unit_of(24, &s);
        assert_eq!(last.items, 5);
        assert_eq!(last.bytes, 500);
    }

    #[test]
    fn tfrecord_default_is_sequential() {
        assert!(StorageFormat::tfrecord_default().is_sequential_within_unit());
        assert!(!StorageFormat::FilePerItem.is_sequential_within_unit());
    }

    #[test]
    fn every_item_maps_to_a_valid_unit() {
        let s = spec();
        let f = StorageFormat::ChunkedRecords {
            chunk_bytes: 333 * 1024,
        };
        let n_units = f.num_units(&s);
        for item in 0..s.num_items {
            let u = f.unit_of(item, &s);
            assert!(u.key < n_units);
            assert!(u.bytes > 0);
        }
    }
}
