//! Table 5: DS-Analyzer's predicted training speed vs the empirical value at
//! 25 %, 35 % and 50 % cache (AlexNet on Config-SSD-V100, ImageNet-1k).
//!
//! The what-if model assumes an efficient (MinIO-like) cache, so the
//! empirical side runs the simulator with CoorDL's cache, exactly as the
//! paper's tool does.  Predictions should land within a few percent.

use benchkit::Table;
use dataset::DatasetSpec;
use dsanalyzer::{ProfiledRates, WhatIfAnalysis};
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig, ServerConfig};

fn main() {
    let model = ModelKind::AlexNet;
    let dataset = DatasetSpec::imagenet_1k().scaled(16);
    let probe_server =
        ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let probe = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&probe_server, &probe));

    let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::coordl_best(model));
    let mut table = Table::new(
        "Table 5: DS-Analyzer predicted vs empirical training speed (samples/s)",
        &["% dataset cached", "F predicted", "F empirical", "error"],
    )
    .with_caption("AlexNet, Config-SSD-V100, ImageNet-1k (paper reports <=4% error)");

    let mut max_err: f64 = 0.0;
    for cache_pct in [25u32, 35, 50] {
        let frac = cache_pct as f64 / 100.0;
        let predicted = whatif.predicted_speed(frac);
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), frac);
        let empirical = Experiment::on(&server)
            .job(job.clone())
            .epochs(3)
            .run()
            .steady_samples_per_sec();
        let err = (predicted - empirical).abs() / empirical;
        max_err = max_err.max(err);
        table.row(&[
            format!("{cache_pct}%"),
            format!("{predicted:.0}"),
            format!("{empirical:.0}"),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    table.print();
    println!(
        "\nmax prediction error: {:.1}% (paper: at most 4%)",
        max_err * 100.0
    );
}
