//! Table 6: cache misses and disk I/O for DALI-seq, DALI-shuffle and CoorDL
//! (ShuffleNetv2 on OpenImages, Config-SSD-V100, 65 % of the dataset cached).
//!
//! CoorDL's MinIO cache reduces misses to the 35 % capacity floor; the page
//! cache wastes 18–31 extra points of the dataset on thrashing, which turns
//! directly into extra disk I/O.

use benchkit::{fmt_gb, fmt_pct, scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, LoaderKind};
use prep::PrepBackend;

fn main() {
    let model = ModelKind::ShuffleNetV2;
    let dataset = scaled(DatasetSpec::openimages_extended());
    let server = server_ssd(&dataset, 0.65);
    // Scale the per-epoch disk I/O back up to full-dataset terms so the GB
    // column is comparable to the paper's (the miss ratios need no scaling).
    let scale_up = benchkit::SCALE;

    let mut table = Table::new(
        "Table 6: impact on fetch misses and disk I/O (65% cache)",
        &[
            "loader",
            "cache miss %",
            "disk I/O per epoch",
            "paper miss %",
            "paper I/O",
        ],
    )
    .with_caption("ShuffleNetv2 on OpenImages(-Extended), Config-SSD-V100");

    let paper = [
        (LoaderKind::DaliSeq, "66%", "422 GB"),
        (LoaderKind::DaliShuffle, "53%", "340 GB"),
        (LoaderKind::CoorDl, "35%", "225 GB"),
    ];
    for (kind, paper_miss, paper_io) in paper {
        let prep = PrepBackend::DaliGpu;
        let loader = match kind {
            LoaderKind::DaliSeq => LoaderConfig::dali_seq(prep),
            LoaderKind::DaliShuffle => LoaderConfig::dali_shuffle(prep),
            _ => LoaderConfig::coordl(prep),
        };
        let epoch = steady(&single_run(&server, model, &dataset, loader, 8));
        table.row(&[
            kind.name().to_string(),
            fmt_pct(epoch.miss_ratio()),
            fmt_gb(epoch.bytes_from_disk * scale_up),
            paper_miss.to_string(),
            paper_io.to_string(),
        ]);
    }
    table.print();
    println!("\n(disk I/O scaled back up by the bench's dataset scale factor of {scale_up} for comparability)");
}
