//! Figure 1: throughput of each component of the ResNet18 data pipeline.
//!
//! The paper's motivating figure: on a server with 8 V100s and 24 CPU cores,
//! raw data comes off an HDD at 15 MB/s or an SSD at 530 MB/s, the cache-mix
//! (35 % of the dataset in DRAM) delivers an effective 802 MB/s, 24-core DALI
//! pre-processing sustains 735 MB/s (≈1062 MB/s with GPU offload), while the
//! GPUs want 2283 MB/s — so the pipeline stalls.

use benchkit::Table;
use dataset::DatasetSpec;
use gpu::{aggregate_samples_per_sec, GpuGeneration, ModelKind};
use prep::{PrepBackend, PrepCostModel, PrepPipeline};
use storage::{AccessPattern, DeviceProfile, DRAM_BANDWIDTH_BYTES_PER_SEC};

fn main() {
    let dataset = DatasetSpec::imagenet_1k();
    let avg_item = dataset.avg_item_bytes as f64;
    let model = ModelKind::ResNet18.profile();

    let hdd = DeviceProfile::hdd().bandwidth(AccessPattern::Random);
    let ssd = DeviceProfile::sata_ssd().bandwidth(AccessPattern::Random);
    let cache_fraction = 0.35;
    // Effective fetch rate with 35 % of the dataset in DRAM (paper: 802 MB/s).
    let mix = 1.0 / (cache_fraction / DRAM_BANDWIDTH_BYTES_PER_SEC + (1.0 - cache_fraction) / ssd);

    let pipeline = PrepPipeline::image_classification();
    let prep_cpu =
        PrepCostModel::for_pipeline(&pipeline, PrepBackend::DaliCpu).throughput_bps(24.0, 0.0);
    let prep_gpu =
        PrepCostModel::for_pipeline(&pipeline, PrepBackend::DaliGpu).throughput_bps(24.0, 8.0);

    let gpu_samples =
        aggregate_samples_per_sec(&model, GpuGeneration::V100, 8, model.reference_batch);
    let gpu_bytes = gpu_samples * avg_item;

    let mb = |bps: f64| format!("{:.0} MB/s", bps / 1e6);
    let mut table = Table::new(
        "Figure 1: ResNet18 data-pipeline component rates",
        &["component", "measured", "paper"],
    )
    .with_caption("8xV100, 24 CPU cores, ImageNet-1k, 35% of the dataset cached");
    table.row(&["HDD random read".into(), mb(hdd), "15 MB/s".into()]);
    table.row(&["SATA SSD random read".into(), mb(ssd), "530 MB/s".into()]);
    table.row(&["fetch (35% cache + SSD)".into(), mb(mix), "802 MB/s".into()]);
    table.row(&[
        "prep, DALI-CPU, 24 cores".into(),
        mb(prep_cpu),
        "735 MB/s".into(),
    ]);
    table.row(&[
        "prep, DALI-GPU offload".into(),
        mb(prep_gpu),
        "1062 MB/s".into(),
    ]);
    table.row(&[
        "GPU ingestion demand (8xV100)".into(),
        mb(gpu_bytes),
        "2283 MB/s".into(),
    ]);
    table.print();

    let bottleneck = mix.min(prep_cpu.max(prep_gpu));
    println!(
        "\npipeline delivers {:.0} MB/s of the {:.0} MB/s the GPUs demand -> data stalls ({}% of demand unmet)",
        bottleneck / 1e6,
        gpu_bytes / 1e6,
        ((1.0 - bottleneck / gpu_bytes) * 100.0).round()
    );
}
