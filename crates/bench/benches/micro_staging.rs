//! Criterion microbenchmark: the functional CoorDL machinery — MinIO byte
//! cache fetches, executable prep, and a full coordinated epoch with
//! concurrent consumers.

use coordl::{MinIoByteCache, Mode, Session, SessionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use prep::{ExecutablePipeline, PrepPipeline};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_byte_cache(c: &mut Criterion) {
    let spec = DatasetSpec::new("micro", 4_096, 4_096, 0.0, 4.0);
    let store = SyntheticItemStore::new(spec.clone(), 1);
    let cache = MinIoByteCache::new(spec.total_bytes());
    for item in 0..spec.num_items {
        cache.insert(item, Arc::new(store.read(item)));
    }
    let mut group = c.benchmark_group("minio_byte_cache");
    group.throughput(Throughput::Elements(spec.num_items));
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            for item in 0..spec.num_items {
                black_box(cache.get(item));
            }
        });
    });
    group.finish();
}

fn bench_executable_prep(c: &mut Criterion) {
    let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 4, 7);
    let raw = vec![0xABu8; 64 * 1024];
    let mut group = c.benchmark_group("executable_prep");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("prepare_64KiB_item", |b| {
        let mut item = 0u64;
        b.iter(|| {
            item += 1;
            black_box(pipeline.prepare(0, item, &raw))
        });
    });
    group.finish();
}

fn bench_coordinated_epoch(c: &mut Criterion) {
    let spec = DatasetSpec::new("micro", 1_024, 2_048, 0.0, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 1));
    let mut group = c.benchmark_group("coordinated_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(spec.num_items));
    for jobs in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let session = Session::builder(
                Arc::clone(&store),
                SessionConfig {
                    batch_size: 64,
                    staging_window: 8,
                    seed: 5,
                    cache_capacity_bytes: 64 << 20,
                    take_timeout: Duration::from_secs(10),
                    ..SessionConfig::default()
                },
            )
            .mode(Mode::Coordinated { jobs })
            .pipeline(ExecutablePipeline::new(
                PrepPipeline::image_classification(),
                4,
                3,
            ))
            .build()
            .expect("coordinated config");
            let mut epoch = 0u64;
            b.iter(|| {
                epoch += 1;
                let run = session.epoch(epoch);
                let handles: Vec<_> = (0..jobs)
                    .map(|job| {
                        let stream = run.stream(job);
                        std::thread::spawn(move || {
                            stream.map(|b| b.expect("batch").len()).sum::<usize>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_byte_cache,
    bench_executable_prep,
    bench_coordinated_epoch
);
criterion_main!(benches);
