//! Figure 13 (appendix B.2): epoch time with the native PyTorch DataLoader vs
//! DALI's CPU and GPU pipelines, for the seven image-classification models
//! (ImageNet-1k fully cached).
//!
//! DALI's optimized decode beats Pillow even on the CPU; GPU offload helps
//! the light models further but *hurts* ResNet50 and VGG11, whose GPUs have
//! no idle cycles to spare for pre-processing.

use benchkit::{scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::LoaderConfig;
use prep::PrepBackend;

fn main() {
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let server = server_ssd(&dataset, 1.1);

    let mut table = Table::new(
        "Figure 13: epoch time (s) with PyTorch-DL vs DALI-CPU vs DALI-GPU",
        &["model", "PyTorch-DL", "DALI-CPU", "DALI-GPU", "best"],
    )
    .with_caption("ImageNet-1k fully cached, 8 V100s, 24 CPU cores");

    for model in ModelKind::image_models() {
        let time = |loader: LoaderConfig| {
            steady(&single_run(&server, model, &dataset, loader, 8)).epoch_seconds()
        };
        let pytorch = time(LoaderConfig::pytorch_dl());
        let dali_cpu = time(LoaderConfig::dali_shuffle(PrepBackend::DaliCpu));
        let dali_gpu = time(LoaderConfig::dali_shuffle(PrepBackend::DaliGpu));
        let best = if dali_cpu <= dali_gpu {
            "DALI-CPU"
        } else {
            "DALI-GPU"
        };
        table.row(&[
            model.name().to_string(),
            format!("{pytorch:.1}"),
            format!("{dali_cpu:.1}"),
            format!("{dali_gpu:.1}"),
            best.to_string(),
        ]);
    }
    table.print();
    println!("\npaper: DALI always beats the native loader; GPU prep wins for light models but loses for ResNet50/VGG11.");
}
