//! Figure 6: prep stalls across DNNs when the dataset is fully cached.
//!
//! With 8 GPUs and 3 CPU cores per GPU on Config-SSD-V100, DNNs spend 5–65 %
//! of their epoch time blocked on pre-processing — the lighter the model's
//! GPU compute, the worse the prep stall.

use benchkit::{fmt_pct, scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::LoaderConfig;

fn dataset_for(model: ModelKind) -> DatasetSpec {
    match model {
        ModelKind::SsdRes18 => DatasetSpec::openimages(),
        ModelKind::AudioM5 => DatasetSpec::fma(),
        _ => DatasetSpec::imagenet_1k(),
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 6: prep stalls with the dataset fully cached",
        &["model", "prep stall %", "samples/s"],
    )
    .with_caption("Config-SSD-V100, 8 GPUs, 3 cores/GPU, best of DALI CPU/GPU prep");

    for model in ModelKind::paper_models() {
        let dataset = scaled(dataset_for(model));
        let server = server_ssd(&dataset, 1.1);
        let run = single_run(&server, model, &dataset, LoaderConfig::dali_best(model), 8);
        let epoch = steady(&run);
        table.row(&[
            model.name().to_string(),
            fmt_pct(epoch.prep_stall_fraction()),
            format!("{:.0}", epoch.samples_per_sec()),
        ]);
    }
    table.print();
    println!(
        "\npaper: DNNs spend 5-65% of epoch time on blocking prep; lighter models stall more."
    );
}
