//! Figure 9(e): HP-search job shapes — 8×1-GPU, 4×2-GPU, 2×4-GPU and 1×8-GPU
//! AlexNet jobs on one Config-SSD-V100 server.
//!
//! With one job the benefit comes from the MinIO cache alone; with several
//! concurrent jobs coordinated prep removes the redundant fetch+prep work and
//! the speedup grows with the job count.

use benchkit::{fmt_speedup, hp_pair, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::ServerConfig;

fn main() {
    let model = ModelKind::AlexNet;
    let dataset = scaled(DatasetSpec::openimages_extended());
    let server = ServerConfig::config_ssd_v100();

    let mut table = Table::new(
        "Figure 9e: AlexNet HP-search configurations on Config-SSD-V100",
        &[
            "configuration",
            "DALI samples/s/job",
            "CoorDL samples/s/job",
            "speedup",
        ],
    )
    .with_caption("OpenImages, 65% cacheable; jobs × GPUs-per-job always uses all 8 GPUs");

    for (num_jobs, gpus) in [(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
        let _ = gpus; // hp_pair derives GPUs per job from the job count.
        let (dali, coordl) = hp_pair(&server, model, &dataset, 0.65, num_jobs);
        table.row(&[
            format!("{num_jobs} jobs x {} GPU(s)", 8 / num_jobs),
            format!("{:.0}", dali.steady_per_job_samples_per_sec()),
            format!("{:.0}", coordl.steady_per_job_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(&dali)),
        ]);
    }
    table.print();
    println!("\npaper: the single-job case benefits from MinIO only; multi-job cases add coordinated prep and the gain grows with concurrency.");
}
