//! Figure 9(e): HP-search job shapes — 8×1-GPU, 4×2-GPU, 2×4-GPU and 1×8-GPU
//! AlexNet jobs on one Config-SSD-V100 server.
//!
//! With one job the benefit comes from the MinIO cache alone; with several
//! concurrent jobs coordinated prep removes the redundant fetch+prep work and
//! the speedup grows with the job count.
//!
//! The grid is the `hp-width` preset suite (width × loader, cartesian) run
//! through [`SweepRunner`]; each row pairs the DALI and CoorDL points of one
//! width.

use benchkit::{fmt_speedup, Table, HP_WIDTHS};
use pipeline::SweepRunner;

fn main() {
    let suite = benchkit::find_suite("hp-width").expect("hp-width preset");
    let report = SweepRunner::new().run(&suite.spec(1));

    let mut table = Table::new(
        "Figure 9e: AlexNet HP-search configurations on Config-SSD-V100",
        &[
            "configuration",
            "DALI samples/s/job",
            "CoorDL samples/s/job",
            "speedup",
        ],
    )
    .with_caption("OpenImages, 65% cacheable; jobs × GPUs-per-job always uses all 8 GPUs");

    // Cartesian order: the width axis is slowest, the loader axis fastest
    // (dali then coordl), so each width occupies two adjacent points.
    for (num_jobs, pair) in HP_WIDTHS.iter().zip(report.points.chunks(2)) {
        let [dali, coordl] = pair else {
            panic!("loader axis must contribute two points per width");
        };
        let dali = dali.report().expect("dali point failed");
        let coordl = coordl.report().expect("coordl point failed");
        table.row(&[
            format!("{num_jobs} jobs x {} GPU(s)", 8 / num_jobs),
            format!("{:.0}", dali.steady_per_job_samples_per_sec()),
            format!("{:.0}", coordl.steady_per_job_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(dali)),
        ]);
    }
    table.print();
    println!("\npaper: the single-job case benefits from MinIO only; multi-job cases add coordinated prep and the gain grows with concurrency.");
}
