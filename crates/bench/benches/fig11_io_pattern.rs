//! Figure 11: disk-I/O rate over time for two training epochs — DALI vs
//! CoorDL (ResNet18 on OpenImages, Config-SSD-V100).
//!
//! With the page cache, hits cluster at the start of each epoch and the rest
//! of the epoch runs at disk bandwidth; MinIO's hits are spread uniformly, so
//! the I/O rate is lower and steady and the epoch ends sooner.

use benchkit::{scaled, server_ssd, single_run, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, SimReport};
use prep::PrepBackend;

/// Average disk-read rate (MB/s) in `buckets` equal slices of the epoch.
fn io_profile(run: &SimReport, epoch: usize, buckets: usize) -> Vec<f64> {
    let metrics = &run.single().epochs[epoch];
    let horizon = metrics.epoch_seconds();
    let mut out = vec![0.0f64; buckets];
    for &(t, bytes) in &metrics.io_timeline {
        let idx = ((t / horizon) * buckets as f64).min(buckets as f64 - 1.0) as usize;
        out[idx] += bytes;
    }
    let slice = horizon / buckets as f64;
    out.iter().map(|b| b / slice / 1e6).collect()
}

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::openimages_extended());
    let server = server_ssd(&dataset, 0.65);

    let dali = single_run(
        &server,
        model,
        &dataset,
        LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        8,
    );
    let coordl = single_run(
        &server,
        model,
        &dataset,
        LoaderConfig::coordl(PrepBackend::DaliGpu),
        8,
    );

    const BUCKETS: usize = 10;
    let mut table = Table::new(
        "Figure 11: disk I/O rate across a steady-state epoch (MB/s)",
        &["epoch position", "DALI", "CoorDL"],
    )
    .with_caption("ResNet18 on OpenImages, Config-SSD-V100, 65% cache; epoch split into 10 slices");
    let d = io_profile(&dali, 1, BUCKETS);
    let c = io_profile(&coordl, 1, BUCKETS);
    for i in 0..BUCKETS {
        table.row(&[
            format!(
                "{:.0}-{:.0}%",
                i as f64 * 100.0 / BUCKETS as f64,
                (i + 1) as f64 * 100.0 / BUCKETS as f64
            ),
            format!("{:.0}", d[i]),
            format!("{:.0}", c[i]),
        ]);
    }
    table.print();

    println!(
        "\nepoch time: DALI {:.1}s vs CoorDL {:.1}s; total disk I/O per epoch: DALI {:.1} GiB vs CoorDL {:.1} GiB",
        dali.single().epochs[1].epoch_seconds(),
        coordl.single().epochs[1].epoch_seconds(),
        dali.single().epochs[1].bytes_from_disk as f64 / (1u64 << 30) as f64,
        coordl.single().epochs[1].bytes_from_disk as f64 / (1u64 << 30) as f64,
    );
    println!("paper: DALI saturates the disk for most of the epoch; CoorDL's I/O is uniform, lower, and the epoch ends earlier.");
}
