//! Figure 21 (appendix E): Py-CoorDL's MinIO cache inside the *native*
//! PyTorch DataLoader — epoch time vs cache size on hard drives and SSDs.
//!
//! On hard drives the reduced, regularized I/O is a 2–3× win; on SSDs the
//! native loader is bottlenecked on Pillow pre-processing, so better caching
//! barely moves the needle (the gain reappears once DALI's faster prep is
//! used, which is the main paper's setting).

use benchkit::{fmt_speedup, scaled, steady, Table};
use dataset::DatasetSpec;
use dcache::PolicyKind;
use gpu::ModelKind;
use pipeline::{Experiment, FetchOrder, JobSpec, LoaderConfig, LoaderKind, ServerConfig};
use prep::PrepBackend;

/// The native PyTorch DataLoader with its page-cache reliance replaced by a
/// MinIO cache (appendix E's Py-CoorDL, MinIO only).
fn py_coordl_minio() -> LoaderConfig {
    LoaderConfig {
        cache_policy: PolicyKind::MinIo,
        kind: LoaderKind::CoorDl,
        ..LoaderConfig::pytorch_dl()
    }
}

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());

    for (base_server, label) in [
        (ServerConfig::config_hdd_1080ti(), "HDD"),
        (ServerConfig::config_ssd_v100(), "SSD"),
    ] {
        let mut table = Table::new(
            format!("Figure 21 ({label}): native PyTorch DL vs Py-CoorDL (MinIO), epoch time"),
            &["cache %", "PyTorch-DL s", "Py-CoorDL s", "speedup"],
        )
        .with_caption("ResNet18 on ImageNet-1k, 8 GPUs, Pillow-speed CPU prep");

        for cache_pct in [25u32, 50, 75] {
            let frac = cache_pct as f64 / 100.0;
            let server = base_server.with_cache_fraction(dataset.total_bytes(), frac);
            let run = |loader: LoaderConfig| {
                let job = JobSpec::new(model, dataset.clone(), 8, loader);
                Experiment::on(&server).job(job).epochs(3).run()
            };
            let pytorch = run(LoaderConfig::pytorch_dl());
            let pycoordl = run(py_coordl_minio());
            table.row(&[
                format!("{cache_pct}%"),
                format!("{:.1}", steady(&pytorch).epoch_seconds()),
                format!("{:.1}", steady(&pycoordl).epoch_seconds()),
                fmt_speedup(pycoordl.speedup_over(&pytorch)),
            ]);
        }
        table.print();
    }
    println!(
        "\npaper: 2.1-3.3x on HDDs; ~1.07x on SSDs because the native loader is prep-bound there."
    );
    // Silence the unused-variant lint for FetchOrder / PrepBackend which are
    // part of this bench's conceptual surface even though the presets set them.
    let _ = (FetchOrder::Shuffled, PrepBackend::PytorchCpu);
}
