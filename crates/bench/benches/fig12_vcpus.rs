//! Figure 12 (appendix B.1): ResNet18 epoch time as vCPUs per GPU grow —
//! hyper-threading does not scale pre-processing linearly.
//!
//! Pre-processing scales linearly only up to the number of *physical* cores;
//! beyond that, extra hardware threads add ~30 % at best, so even 8 vCPUs per
//! GPU leaves ResNet18 with ~37 % prep stalls on V100s.
//!
//! The grid is the `vcpu-sweep` preset suite run through [`SweepRunner`], so
//! all configurations simulate in parallel.

use benchkit::{fmt_pct, vcpu_effective_cores, Table, VCPUS_PER_GPU};
use pipeline::SweepRunner;

fn main() {
    let suite = benchkit::find_suite("vcpu-sweep").expect("vcpu-sweep preset");
    let report = SweepRunner::new().run(&suite.spec(1));

    let mut table = Table::new(
        "Figure 12: ResNet18 epoch time vs vCPUs per GPU (fully cached)",
        &[
            "vCPUs/GPU",
            "effective cores/GPU",
            "epoch s",
            "prep stall %",
        ],
    )
    .with_caption("8 V100s, 32 physical cores (64 vCPUs); hyper-threads count ~30% of a core");

    for (vcpus_per_gpu, point) in VCPUS_PER_GPU.iter().zip(&report.points) {
        let epoch = point
            .report()
            .unwrap_or_else(|| panic!("{} failed", point.label))
            .steady_state();
        table.row(&[
            format!("{vcpus_per_gpu}"),
            format!("{:.1}", vcpu_effective_cores(*vcpus_per_gpu) / 8.0),
            format!("{:.1}", epoch.epoch_seconds()),
            fmt_pct(epoch.prep_stall_fraction()),
        ]);
    }
    table.print();
    println!("\npaper: epoch time keeps improving with more vCPUs but 8 vCPUs/GPU still leaves ~37% prep stalls.");
}
