//! Figure 12 (appendix B.1): ResNet18 epoch time as vCPUs per GPU grow —
//! hyper-threading does not scale pre-processing linearly.
//!
//! Pre-processing scales linearly only up to the number of *physical* cores;
//! beyond that, extra hardware threads add ~30 % at best, so even 8 vCPUs per
//! GPU leaves ResNet18 with ~37 % prep stalls on V100s.

use benchkit::{fmt_pct, scaled, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};
use prep::{PrepBackend, PrepCostModel, PrepPipeline};

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let cost =
        PrepCostModel::for_pipeline(&PrepPipeline::image_classification(), PrepBackend::DaliCpu);

    let mut table = Table::new(
        "Figure 12: ResNet18 epoch time vs vCPUs per GPU (fully cached)",
        &[
            "vCPUs/GPU",
            "effective cores/GPU",
            "epoch s",
            "prep stall %",
        ],
    )
    .with_caption("8 V100s, 32 physical cores (64 vCPUs); hyper-threads count ~30% of a core");

    for vcpus_per_gpu in [2usize, 3, 4, 6, 8] {
        let vcpus = (vcpus_per_gpu * 8) as f64;
        // The server has 32 physical cores; extra vCPUs are hyper-threads.
        let effective = cost.effective_cores(vcpus, 32.0);
        let server = ServerConfig::config_highcpu_v100()
            .with_cpu_cores(effective.round().max(1.0) as usize)
            .with_cache_fraction(dataset.total_bytes(), 1.1);
        let epoch = steady(&single_run(
            &server,
            model,
            &dataset,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
            8,
        ));
        table.row(&[
            format!("{vcpus_per_gpu}"),
            format!("{:.1}", effective / 8.0),
            format!("{:.1}", epoch.epoch_seconds()),
            fmt_pct(epoch.prep_stall_fraction()),
        ]);
    }
    table.print();
    println!("\npaper: epoch time keeps improving with more vCPUs but 8 vCPUs/GPU still leaves ~37% prep stalls.");
}
