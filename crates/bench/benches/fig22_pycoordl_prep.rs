//! Figure 22 (appendix E.2.2): coordinated prep inside the native PyTorch
//! DataLoader — 4 and 8 concurrent ResNet18 HP-search jobs with the dataset
//! fully cached.
//!
//! As concurrency grows each job gets fewer CPU workers and the prep stall
//! explodes; a single shared prep sweep restores almost all of it.

use benchkit::{fmt_speedup, hp_jobs, hp_run, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};

/// The native loader with coordinated prep bolted on (appendix E's
/// Py-CoorDL without MinIO — the dataset is fully cached here anyway).
fn py_coordl_prep() -> LoaderConfig {
    LoaderConfig {
        coordinated_prep: true,
        ..LoaderConfig::pytorch_dl()
    }
}

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let server = ServerConfig::config_ssd_v100();

    let mut table = Table::new(
        "Figure 22: coordinated prep in the native PyTorch loader (fully cached)",
        &[
            "concurrent jobs",
            "PyTorch-DL samples/s/job",
            "Py-CoorDL samples/s/job",
            "speedup",
        ],
    )
    .with_caption("ResNet18 on ImageNet-1k in memory; 24 CPU workers shared across jobs");

    for num_jobs in [4usize, 8] {
        let gpus_per_job = 8 / num_jobs;
        let pytorch = hp_run(
            &server.with_cache_fraction(dataset.total_bytes(), 1.1),
            hp_jobs(
                model,
                &dataset,
                LoaderConfig::pytorch_dl(),
                num_jobs,
                gpus_per_job,
            ),
            3,
        );
        let pycoordl = hp_run(
            &server.with_cache_fraction(dataset.total_bytes(), 1.1),
            hp_jobs(model, &dataset, py_coordl_prep(), num_jobs, gpus_per_job),
            3,
        );
        table.row(&[
            format!("{num_jobs}"),
            format!("{:.0}", pytorch.steady_per_job_samples_per_sec()),
            format!("{:.0}", pycoordl.steady_per_job_samples_per_sec()),
            fmt_speedup(pycoordl.speedup_over(&pytorch)),
        ]);
    }
    table.print();
    println!(
        "\npaper: prep stalls grow with job count; shared prep removes them (1.8x at 8 jobs)."
    );
}
