//! Figure 18 (appendix D.3): scalability of partitioned caching — ResNet50 on
//! OpenImages across 1–4 Config-HDD-1080Ti servers, plus the per-server disk
//! I/O table.
//!
//! DALI's per-server disk I/O shrinks as servers are added (each processes a
//! smaller shard) but the job stays I/O bound; CoorDL reaches zero disk I/O
//! from two servers on and scales with GPU parallelism.
//!
//! The grid is the `scalability` preset suite (servers × loader, cartesian)
//! run through [`SweepRunner`].

use benchkit::{fmt_speedup, Table, SCALABILITY_SERVERS};
use pipeline::SweepRunner;

fn main() {
    let suite = benchkit::find_suite("scalability").expect("scalability preset");
    let report = SweepRunner::new().run(&suite.spec(1));

    let mut table = Table::new(
        "Figure 18: distributed scalability, ResNet50 on OpenImages (HDD servers)",
        &[
            "servers",
            "DALI samples/s",
            "CoorDL samples/s",
            "speedup",
            "DALI disk GiB/srv",
            "CoorDL disk GiB/srv",
        ],
    )
    .with_caption("65% of the dataset cacheable per server; per-epoch disk I/O per server");

    let gib =
        |bytes: &[u64]| bytes.iter().sum::<u64>() as f64 / bytes.len() as f64 / (1u64 << 30) as f64;
    // Cartesian order: the servers axis is slowest, the loader axis fastest
    // (dali then coordl), so each server count occupies two adjacent points.
    for (servers, pair) in SCALABILITY_SERVERS.iter().zip(report.points.chunks(2)) {
        let [dali, coordl] = pair else {
            panic!("loader axis must contribute two points per server count");
        };
        let dali = dali.report().expect("dali point failed");
        let coordl = coordl.report().expect("coordl point failed");
        table.row(&[
            format!("{servers}"),
            format!("{:.0}", dali.steady_samples_per_sec()),
            format!("{:.0}", coordl.steady_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(dali)),
            format!("{:.2}", gib(&dali.disk_bytes_per_server(2))),
            format!("{:.2}", gib(&coordl.disk_bytes_per_server(2))),
        ]);
    }
    table.print();
    println!("\npaper: DALI's per-server I/O falls as servers are added but stays I/O bound; CoorDL hits zero disk I/O from 2 servers on.");
}
