//! Figure 18 (appendix D.3): scalability of partitioned caching — ResNet50 on
//! OpenImages across 1–4 Config-HDD-1080Ti servers, plus the per-server disk
//! I/O table.
//!
//! DALI's per-server disk I/O shrinks as servers are added (each processes a
//! smaller shard) but the job stays I/O bound; CoorDL reaches zero disk I/O
//! from two servers on and scales with GPU parallelism.

use benchkit::{fmt_speedup, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig};

fn main() {
    let model = ModelKind::ResNet50;
    let dataset = scaled(DatasetSpec::openimages_extended());
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    // Keep several iterations per epoch on the scaled dataset even with 4
    // servers' worth of GPUs.
    let batch = 128;

    let mut table = Table::new(
        "Figure 18: distributed scalability, ResNet50 on OpenImages (HDD servers)",
        &[
            "servers",
            "DALI samples/s",
            "CoorDL samples/s",
            "speedup",
            "DALI disk GiB/srv",
            "CoorDL disk GiB/srv",
        ],
    )
    .with_caption("65% of the dataset cacheable per server; per-epoch disk I/O per server");

    for servers in 1..=4usize {
        let dali = Experiment::on(&server)
            .job(
                JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model))
                    .with_batch(batch),
            )
            .scenario(Scenario::Distributed { servers })
            .epochs(3)
            .run();
        let coordl = Experiment::on(&server)
            .job(
                JobSpec::new(model, dataset.clone(), 8, LoaderConfig::coordl_best(model))
                    .with_batch(batch),
            )
            .scenario(Scenario::Distributed { servers })
            .epochs(3)
            .run();
        let gib = |bytes: &[u64]| {
            bytes.iter().sum::<u64>() as f64 / bytes.len() as f64 / (1u64 << 30) as f64
        };
        table.row(&[
            format!("{servers}"),
            format!("{:.0}", dali.steady_samples_per_sec()),
            format!("{:.0}", coordl.steady_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(&dali)),
            format!("{:.2}", gib(&dali.disk_bytes_per_server(2))),
            format!("{:.2}", gib(&coordl.disk_bytes_per_server(2))),
        ]);
    }
    table.print();
    println!("\npaper: DALI's per-server I/O falls as servers are added but stays I/O bound; CoorDL hits zero disk I/O from 2 servers on.");
}
