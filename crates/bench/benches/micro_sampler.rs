//! Criterion microbenchmark: epoch-sampler and minibatch-assembly throughput.
//!
//! Every loader draws a fresh permutation per epoch and slices it into
//! minibatches; this must stay negligible next to fetch and prep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{minibatches, EpochSampler};
use std::hint::black_box;

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_permutation");
    for items in [10_000u64, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(items));
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, &items| {
            let sampler = EpochSampler::new(items, 7);
            let mut epoch = 0u64;
            b.iter(|| {
                epoch += 1;
                black_box(sampler.permutation(epoch))
            });
        });
    }
    group.finish();
}

fn bench_minibatch_assembly(c: &mut Criterion) {
    let sampler = EpochSampler::new(500_000, 7);
    let order = sampler.permutation(0);
    let mut group = c.benchmark_group("minibatch_assembly");
    for batch in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(order.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| black_box(minibatches(&order, batch)));
        });
    }
    group.finish();
}

fn bench_distributed_shard(c: &mut Criterion) {
    let sampler = EpochSampler::new(500_000, 7);
    let mut group = c.benchmark_group("distributed_shard");
    group.throughput(Throughput::Elements(500_000));
    group.bench_function("4_shards", |b| {
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            (0..4)
                .map(|s| sampler.distributed_shard(epoch, s, 4).len())
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_permutation,
    bench_minibatch_assembly,
    bench_distributed_shard
);
criterion_main!(benches);
