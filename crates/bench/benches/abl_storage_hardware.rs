//! Ablation (related work, §6): can you buy your way out of fetch stalls with
//! faster storage instead of a smarter loader?
//!
//! The paper argues hardware fixes (NVMe arrays, Magnum IO, AIRI) mask fetch
//! stalls but cost more and do nothing for prep stalls, while CoorDL gets
//! there on commodity hardware.  This ablation trains ResNet18 and ResNet50
//! on OpenImages (65 % cacheable) with DALI on progressively faster devices
//! and compares against CoorDL on the plain SATA SSD.

use benchkit::{fmt_pct, scaled, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};
use storage::DeviceProfile;

fn main() {
    let dataset = scaled(DatasetSpec::openimages_extended());

    for model in [ModelKind::ResNet18, ModelKind::ResNet50] {
        let mut table = Table::new(
            format!("Ablation: faster storage vs CoorDL ({})", model.name()),
            &[
                "configuration",
                "samples/s",
                "fetch stall %",
                "prep stall %",
            ],
        )
        .with_caption("OpenImages, 65% cacheable, 8 V100s, 24 cores");

        let mut base = ServerConfig::config_ssd_v100();
        base.dram_cache_bytes = (dataset.total_bytes() as f64 * 0.65) as u64;

        let mut run = |label: &str, device: DeviceProfile, loader: LoaderConfig| {
            let server = ServerConfig {
                device,
                ..base.clone()
            };
            let epoch = steady(&single_run(&server, model, &dataset, loader, 8));
            table.row(&[
                label.to_string(),
                format!("{:.0}", epoch.samples_per_sec()),
                fmt_pct(epoch.fetch_stall_fraction()),
                fmt_pct(epoch.prep_stall_fraction()),
            ]);
        };

        run(
            "DALI + HDD",
            DeviceProfile::hdd(),
            LoaderConfig::dali_best(model),
        );
        run(
            "DALI + SATA SSD",
            DeviceProfile::sata_ssd(),
            LoaderConfig::dali_best(model),
        );
        run(
            "DALI + NVMe SSD",
            DeviceProfile::nvme_ssd(),
            LoaderConfig::dali_best(model),
        );
        run(
            "DALI + RAM-class storage",
            DeviceProfile::ramdisk(),
            LoaderConfig::dali_best(model),
        );
        run(
            "CoorDL + SATA SSD",
            DeviceProfile::sata_ssd(),
            LoaderConfig::coordl_best(model),
        );

        table.print();
    }
    println!("\ntakeaway: NVMe-class storage masks fetch stalls but leaves prep stalls; CoorDL reaches comparable throughput on the commodity SATA SSD.");
}
