//! Figure 4: training throughput vs CPU cores per GPU (dataset fully cached).
//!
//! DNNs need 3–24 cores per GPU to mask prep stalls: computationally heavy
//! models (ResNet50, VGG11) saturate at 3–4 cores/GPU, light models
//! (ResNet18, AlexNet, ShuffleNet) keep scaling to 12–24.

use benchkit::{scaled, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};
use prep::PrepBackend;

fn main() {
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let models = [
        ModelKind::ResNet18,
        ModelKind::AlexNet,
        ModelKind::ShuffleNetV2,
        ModelKind::ResNet50,
    ];
    let cores_per_gpu = [1usize, 3, 6, 12, 24];

    let headers: Vec<String> = std::iter::once("cores/GPU".to_string())
        .chain(models.iter().map(|m| format!("{} samples/s", m.name())))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 4: throughput vs CPU cores per GPU (fully cached)",
        &header_refs,
    )
    .with_caption("Config-SSD-V100 variant, 8 GPUs, CPU-only DALI prep, ImageNet-1k in memory");

    for cpg in cores_per_gpu {
        let server = ServerConfig::config_ssd_v100()
            .with_cpu_cores(cpg * 8)
            .with_cache_fraction(dataset.total_bytes(), 1.1);
        let mut cells = vec![format!("{cpg}")];
        for model in models {
            let run = single_run(
                &server,
                model,
                &dataset,
                LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
                8,
            );
            cells.push(format!("{:.0}", steady(&run).samples_per_sec()));
        }
        table.row(&cells);
    }
    table.print();
    println!("\npaper: ResNet50 saturates at 3-4 cores/GPU; ResNet18/AlexNet need 12-24.");
}
