//! Figure 9(d): hyper-parameter search with eight concurrent single-GPU jobs
//! — coordinated prep vs independent DALI pipelines.
//!
//! Uncoordinated HP search fetches and pre-processes the dataset once per
//! job; coordinated prep does it once per epoch for all jobs, lifting
//! per-job throughput by 3× for light CPU-bound models and up to 5.6× for
//! the audio model on Config-SSD-V100.

use benchkit::{fmt_speedup, hp_pair, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::ServerConfig;

fn workload(model: ModelKind) -> (DatasetSpec, f64) {
    match model {
        ModelKind::AudioM5 => (DatasetSpec::fma(), 0.45),
        ModelKind::SsdRes18 => (DatasetSpec::openimages(), 0.65),
        _ => (DatasetSpec::openimages_extended(), 0.65),
    }
}

fn main() {
    for (server, label) in [
        (ServerConfig::config_ssd_v100(), "Config-SSD-V100"),
        (ServerConfig::config_hdd_1080ti(), "Config-HDD-1080Ti"),
    ] {
        let mut table = Table::new(
            format!("Figure 9d: 8-job HP search, per-job speedup of CoorDL over DALI ({label})"),
            &[
                "model",
                "DALI samples/s/job",
                "CoorDL samples/s/job",
                "speedup",
                "DALI read amp",
                "CoorDL read amp",
            ],
        )
        .with_caption("8 concurrent 1-GPU jobs on one server, 45-65% of the dataset cached");

        for model in ModelKind::paper_models() {
            let (dataset, frac) = workload(model);
            let dataset = scaled(dataset);
            let (dali, coordl) = hp_pair(&server, model, &dataset, frac, 8);
            table.row(&[
                model.name().to_string(),
                format!("{:.0}", dali.steady_per_job_samples_per_sec()),
                format!("{:.0}", coordl.steady_per_job_samples_per_sec()),
                fmt_speedup(coordl.speedup_over(&dali)),
                format!("{:.2}x", dali.read_amplification(dataset.total_bytes(), 1)),
                format!(
                    "{:.2}x",
                    coordl.read_amplification(dataset.total_bytes(), 1)
                ),
            ]);
        }
        table.print();
    }
    println!("\npaper: ~3x for AlexNet/ShuffleNet, 1.9x ResNet50, 5.6x Audio-M5 on SSD-V100; 5.3x audio / 4.5x ResNet50 on HDD-1080Ti.");
}
