//! Figure 5: 8-GPU ResNet18 prep stalls with DALI's CPU vs GPU pipelines on
//! 1080Ti vs V100.
//!
//! DALI's GPU-offloaded prep eliminates prep stalls on the slower 1080Ti but
//! still leaves ~50 % prep stalls on the faster V100 with 3 CPU cores per
//! GPU: faster GPUs outrun the pre-processing pipeline.

use benchkit::{fmt_pct, scaled, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};
use prep::PrepBackend;

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());

    let mut table = Table::new(
        "Figure 5: 8-GPU ResNet18 prep stalls, DALI CPU vs GPU prep",
        &["server", "prep backend", "prep stall %", "samples/s"],
    )
    .with_caption("dataset fully cached, 3 CPU cores per GPU");

    for (server, label) in [
        (ServerConfig::config_hdd_1080ti(), "1080Ti"),
        (ServerConfig::config_ssd_v100(), "V100"),
    ] {
        let server = server.with_cache_fraction(dataset.total_bytes(), 1.1);
        for backend in [PrepBackend::DaliCpu, PrepBackend::DaliGpu] {
            let run = single_run(
                &server,
                model,
                &dataset,
                LoaderConfig::dali_shuffle(backend),
                8,
            );
            let epoch = steady(&run);
            table.row(&[
                label.to_string(),
                backend.name().to_string(),
                fmt_pct(epoch.prep_stall_fraction()),
                format!("{:.0}", epoch.samples_per_sec()),
            ]);
        }
    }
    table.print();
    println!("\npaper: GPU prep removes the stall on 1080Ti but V100 still sees ~50% prep stalls.");
}
