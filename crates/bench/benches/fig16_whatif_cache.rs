//! Figure 16 (appendix C.2): DS-Analyzer's predicted training speed vs cache
//! size, with the empirical curve alongside and the recommended cache size.
//!
//! At small caches AlexNet is I/O bound; past ~55 % of the dataset the
//! bottleneck flips to pre-processing and additional DRAM buys nothing.

use benchkit::Table;
use dataset::DatasetSpec;
use dsanalyzer::{Bottleneck, ProfiledRates, WhatIfAnalysis};
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig, ServerConfig};

fn main() {
    let model = ModelKind::AlexNet;
    let dataset = DatasetSpec::imagenet_1k().scaled(16);
    let probe_server =
        ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let probe = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&probe_server, &probe));
    let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::coordl_best(model));

    let mut table = Table::new(
        "Figure 16: predicted vs empirical training speed across cache sizes",
        &[
            "cache %",
            "predicted samples/s",
            "empirical samples/s",
            "bottleneck",
        ],
    )
    .with_caption("AlexNet on Config-SSD-V100, ImageNet-1k, MinIO-style cache");

    for cache_pct in (0..=100).step_by(10) {
        let frac = cache_pct as f64 / 100.0;
        let predicted = whatif.predicted_speed(frac);
        let empirical = if cache_pct == 0 {
            // A zero-byte cache is not constructible in the simulator; report
            // the prediction's floor instead.
            whatif.rates().storage_rate
        } else {
            let server =
                ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), frac);
            Experiment::on(&server)
                .job(job.clone())
                .epochs(3)
                .run()
                .steady_samples_per_sec()
        };
        let bottleneck = match whatif.bottleneck(frac) {
            Bottleneck::Io => "I/O",
            Bottleneck::Cpu => "CPU",
            Bottleneck::Gpu => "GPU",
        };
        table.row(&[
            format!("{cache_pct}%"),
            format!("{predicted:.0}"),
            format!("{empirical:.0}"),
            bottleneck.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nrecommended cache size: {:.0}% of the dataset (paper: ~55%); beyond it the job is CPU-bound and more DRAM is wasted.",
        whatif.recommended_cache_fraction() * 100.0
    );
}
