//! Figure 16 (appendix C.2): DS-Analyzer's predicted training speed vs cache
//! size, with the empirical curve alongside and the recommended cache size.
//!
//! At small caches AlexNet is I/O bound; past ~55 % of the dataset the
//! bottleneck flips to pre-processing and additional DRAM buys nothing.
//!
//! The empirical side is [`WhatIfAnalysis::validate_speed_curve`], which runs
//! the whole cache-fraction grid as one parallel sweep through
//! [`SweepRunner`].

use benchkit::Table;
use dataset::DatasetSpec;
use dsanalyzer::{Bottleneck, ProfiledRates, WhatIfAnalysis};
use gpu::ModelKind;
use pipeline::{JobSpec, LoaderConfig, ServerConfig, SweepRunner};

fn main() {
    let model = ModelKind::AlexNet;
    let dataset = DatasetSpec::imagenet_1k().scaled(16);
    let probe_server =
        ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
    let probe = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
    let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&probe_server, &probe));
    let job = probe.with_loader(LoaderConfig::coordl_best(model));

    let fractions: Vec<f64> = (0..=100)
        .step_by(10)
        .map(|pct| pct as f64 / 100.0)
        .collect();
    let curve =
        whatif.validate_speed_curve(&probe_server, &job, &fractions, 3, &SweepRunner::new());

    let mut table = Table::new(
        "Figure 16: predicted vs empirical training speed across cache sizes",
        &[
            "cache %",
            "predicted samples/s",
            "empirical samples/s",
            "bottleneck",
        ],
    )
    .with_caption("AlexNet on Config-SSD-V100, ImageNet-1k, MinIO-style cache");

    for point in &curve {
        let bottleneck = match point.bottleneck {
            Bottleneck::Io => "I/O",
            Bottleneck::Cpu => "CPU",
            Bottleneck::Gpu => "GPU",
        };
        table.row(&[
            format!("{:.0}%", point.cache_fraction * 100.0),
            format!("{:.0}", point.predicted),
            format!("{:.0}", point.empirical),
            bottleneck.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nrecommended cache size: {:.0}% of the dataset (paper: ~55%); beyond it the job is CPU-bound and more DRAM is wasted.",
        whatif.recommended_cache_fraction() * 100.0
    );
}
