//! Figure 10: top-1 accuracy during training — CoorDL reaches the same
//! accuracy in a quarter of the wall-clock time.
//!
//! Two halves, as in DESIGN.md:
//!
//! 1. *equivalence*: a real (small) model is trained through the plain loader
//!    and through a coordinated job group with the same seeds; the
//!    accuracy-vs-epoch trajectories must be identical, because CoorDL does
//!    not change sampling or augmentation randomness;
//! 2. *time axis*: the pipeline simulator supplies seconds-per-epoch for the
//!    paper's setting (ResNet50 / ImageNet-1k on 2× Config-HDD-1080Ti, 50 %
//!    cache per server), which converts the shared trajectory into the two
//!    accuracy-vs-time curves of Figure 10.

use benchkit::{scaled, Table};
use coordl::{Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, LabeledVectorStore};
use dnn::{train_through_coordinated_group, train_through_loader, TrainConfig};
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig};
use prep::{ExecutablePipeline, PrepPipeline};
use std::sync::Arc;
use std::time::Duration;

fn identity_pipeline() -> ExecutablePipeline {
    ExecutablePipeline::new(
        PrepPipeline {
            name: "identity".into(),
            transforms: vec![],
        },
        1,
        0,
    )
}

fn main() {
    // --- 1. Accuracy equivalence on a real learner -------------------------
    let store = Arc::new(LabeledVectorStore::new(480, 8, 3, 99));
    let config = TrainConfig {
        hidden: 32,
        epochs: 5,
        seed: 21,
    };
    let session_config = SessionConfig {
        batch_size: 32,
        num_workers: 2,
        prefetch_depth: 4,
        seed: 4,
        cache_capacity_bytes: 8 << 20,
        staging_window: 8,
        take_timeout: Duration::from_secs(5),
        fetch_threads: 1,
        fetch_shards: 0,
    };
    let single = Session::builder(
        Arc::clone(&store) as Arc<dyn DataSource>,
        session_config.clone(),
    )
    .pipeline(identity_pipeline())
    .build()
    .expect("loader config");
    let baseline = train_through_loader(&single, &store, &config);

    let coordinated_session =
        Session::builder(Arc::clone(&store) as Arc<dyn DataSource>, session_config)
            .mode(Mode::Coordinated { jobs: 2 })
            .pipeline(identity_pipeline())
            .build()
            .expect("coordinated config");
    let coordinated = train_through_coordinated_group(&coordinated_session, &store, &config);

    // --- 2. Wall-clock scaling from the simulator ---------------------------
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let model = ModelKind::ResNet50;
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.5);
    let dali = Experiment::on(&server)
        .job(JobSpec::new(
            model,
            dataset.clone(),
            8,
            LoaderConfig::dali_best(model),
        ))
        .scenario(Scenario::Distributed { servers: 2 })
        .epochs(3)
        .run();
    let coordl = Experiment::on(&server)
        .job(JobSpec::new(
            model,
            dataset,
            8,
            LoaderConfig::coordl_best(model),
        ))
        .scenario(Scenario::Distributed { servers: 2 })
        .epochs(3)
        .run();
    let dali_epoch = dali.steady_epoch_seconds();
    let coordl_epoch = coordl.steady_epoch_seconds();

    let mut table = Table::new(
        "Figure 10: accuracy during training (identical per-epoch trajectory, different clock)",
        &["epoch", "accuracy", "DALI wall-clock s", "CoorDL wall-clock s"],
    )
    .with_caption("trajectory from the functional mini-DNN; seconds/epoch from ResNet50 on 2x Config-HDD-1080Ti");
    for (b, c) in baseline.iter().zip(&coordinated[0]) {
        assert!(
            (b.accuracy - c.accuracy).abs() < 1e-9,
            "trajectories must match"
        );
        table.row(&[
            format!("{}", b.epoch + 1),
            format!("{:.1}%", b.accuracy * 100.0),
            format!("{:.1}", dali_epoch * (b.epoch + 1) as f64),
            format!("{:.1}", coordl_epoch * (b.epoch + 1) as f64),
        ]);
    }
    table.print();
    println!(
        "\ntime-to-accuracy improvement: {:.1}x (paper: 4x, from 2 days to 12 hours)",
        dali_epoch / coordl_epoch
    );
}
