//! Figures 19 & 20 (§5.5, appendix D.6): resource utilization — CPU time goes
//! to useful pre-processing instead of waiting on I/O, network use stays a
//! fraction of the link, and coordinated prep's staging memory is small.

use benchkit::{fmt_bytes, fmt_pct, scaled, server_ssd, single_run, steady, Table};
use coordl::{Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig};
use prep::{ExecutablePipeline, PrepBackend, PrepCostModel, PrepPipeline};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- CPU utilization (Figure 19) ---------------------------------------
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::openimages_extended());
    let server = server_ssd(&dataset, 0.65);
    let cost =
        PrepCostModel::for_pipeline(&PrepPipeline::image_classification(), PrepBackend::DaliGpu);

    let mut table = Table::new(
        "Figure 19: CPU utilization during ResNet18 training (OpenImages, SSD-V100)",
        &[
            "loader",
            "epoch s",
            "prep work s",
            "CPU busy %",
            "fetch stall %",
        ],
    )
    .with_caption("CPU busy = pre-processing work divided by epoch time x cores");
    for (label, loader) in [
        (
            "DALI-shuffle",
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        ),
        ("CoorDL", LoaderConfig::coordl(PrepBackend::DaliGpu)),
    ] {
        let epoch = steady(&single_run(&server, model, &dataset, loader, 8));
        let raw_bytes = epoch.bytes_from_cache + epoch.bytes_from_disk + epoch.bytes_from_remote;
        let prep_work =
            cost.prep_seconds(raw_bytes, server.cpu_cores as f64, 8.0) * server.cpu_cores as f64;
        let busy = (prep_work / (epoch.epoch_seconds() * server.cpu_cores as f64)).min(1.0);
        table.row(&[
            label.to_string(),
            format!("{:.1}", epoch.epoch_seconds()),
            format!("{:.1}", prep_work),
            fmt_pct(busy),
            fmt_pct(epoch.fetch_stall_fraction()),
        ]);
    }
    table.print();

    // --- Network utilization (§5.5) -----------------------------------------
    let dist_server =
        ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let coordl = Experiment::on(&dist_server)
        .job(JobSpec::new(
            ModelKind::ResNet50,
            dataset.clone(),
            8,
            LoaderConfig::coordl_best(ModelKind::ResNet50),
        ))
        .scenario(Scenario::Distributed { servers: 2 })
        .epochs(3)
        .run();
    println!(
        "\nnetwork: CoorDL uses {:.1} Gbps of the 40 Gbps link per server during 2-server ResNet50 training (paper: 5.7 Gbps, 14%).",
        coordl.avg_network_gbps(2)
    );

    // --- Staging-area memory overhead (Figure 20) ---------------------------
    let spec = DatasetSpec::new("staging-probe", 16_384, 4096, 0.2, 4.0);
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 11));
    let staging_session = Session::builder(
        Arc::clone(&store),
        SessionConfig {
            batch_size: 64,
            staging_window: 4,
            seed: 3,
            cache_capacity_bytes: 256 << 20,
            take_timeout: Duration::from_secs(10),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Coordinated { jobs: 8 })
    .pipeline(ExecutablePipeline::new(
        PrepPipeline::image_classification(),
        4,
        1,
    ))
    .build()
    .expect("coordinated config");
    let run = staging_session.epoch(0);
    let handles: Vec<_> = (0..8)
        .map(|job| {
            let stream = run.stream(job);
            std::thread::spawn(move || stream.inspect(|b| assert!(b.is_ok(), "batch")).count())
        })
        .collect();
    for h in handles {
        let _ = h.join().expect("consumer");
    }
    let staging = run.staging().expect("coordinated mode").stats();
    let dataset_bytes: u64 = (0..store.len()).map(|i| store.item_bytes(i)).sum();
    println!(
        "staging memory: peak {} for 8 concurrent jobs vs {} of raw data — a bounded window, not a second copy of the dataset (paper: ~5 GB, repaid by shrinking the cache by 5 GB).",
        fmt_bytes(staging.peak_bytes),
        fmt_bytes(dataset_bytes),
    );
}
