//! Figure 2: fetch stalls across nine DNNs with 35 % of the dataset cached.
//!
//! The paper reports that on Config-SSD-V100 with 35 % of each model's
//! dataset cached, DNNs spend 10–70 % of their epoch time blocked on I/O
//! despite prefetching and pipelining.  Each model trains on its own dataset
//! (Table 1).

use benchkit::{fmt_pct, scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::LoaderConfig;

/// The dataset each model trains on in the paper's analysis (Table 1).
fn dataset_for(model: ModelKind) -> DatasetSpec {
    match model {
        ModelKind::ShuffleNetV2 | ModelKind::AlexNet | ModelKind::ResNet18 => {
            DatasetSpec::imagenet_22k().scaled(4)
        }
        ModelKind::SqueezeNet | ModelKind::MobileNetV2 => DatasetSpec::openimages_extended(),
        ModelKind::ResNet50 | ModelKind::Vgg11 => DatasetSpec::imagenet_1k(),
        ModelKind::SsdRes18 => DatasetSpec::openimages(),
        ModelKind::AudioM5 => DatasetSpec::fma(),
        ModelKind::BertLarge | ModelKind::Gnmt => DatasetSpec::imagenet_1k(),
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 2: fetch stalls with 35% of the dataset cached",
        &[
            "model",
            "dataset",
            "fetch stall %",
            "prep stall %",
            "epoch s",
        ],
    )
    .with_caption("Config-SSD-V100, DALI baseline, 8 GPUs, steady-state epoch");

    for model in ModelKind::paper_models() {
        let dataset = scaled(dataset_for(model));
        let server = server_ssd(&dataset, 0.35);
        let run = single_run(&server, model, &dataset, LoaderConfig::dali_best(model), 8);
        let epoch = steady(&run);
        table.row(&[
            model.name().to_string(),
            dataset.name.clone(),
            fmt_pct(epoch.fetch_stall_fraction()),
            fmt_pct(epoch.prep_stall_fraction()),
            format!("{:.1}", epoch.epoch_seconds()),
        ]);
    }
    table.print();
    println!("\npaper: DNNs spend 10-70% of epoch time on blocking I/O at 35% cache.");
}
