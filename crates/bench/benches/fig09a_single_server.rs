//! Figure 9(a): single-server multi-GPU training — CoorDL vs DALI-seq and
//! DALI-shuffle on both server SKUs.
//!
//! MinIO alone (no coordination applies to a single job) speeds training up
//! by up to ~1.8× on Config-SSD-V100 and ~2.1× on Config-HDD-1080Ti by
//! eliminating page-cache thrashing.

use benchkit::{fmt_speedup, scaled, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig};

fn dataset_for(model: ModelKind) -> (DatasetSpec, f64) {
    // §5.1: image/detection models use OpenImages (65 % cacheable), the audio
    // model uses FMA (45 % cacheable).
    match model {
        ModelKind::AudioM5 => (DatasetSpec::fma(), 0.45),
        ModelKind::SsdRes18 => (DatasetSpec::openimages(), 0.65),
        _ => (DatasetSpec::openimages_extended(), 0.65),
    }
}

fn main() {
    for (server, label) in [
        (ServerConfig::config_ssd_v100(), "Config-SSD-V100"),
        (ServerConfig::config_hdd_1080ti(), "Config-HDD-1080Ti"),
    ] {
        let mut table = Table::new(
            format!("Figure 9a: single-server training speedup over DALI-shuffle ({label})"),
            &[
                "model",
                "DALI-seq",
                "DALI-shuffle",
                "CoorDL",
                "CoorDL speedup",
            ],
        )
        .with_caption("samples/s, 8 GPUs, OpenImages / FMA, 45-65% of the dataset cached");

        for model in ModelKind::paper_models() {
            let (dataset, frac) = dataset_for(model);
            let dataset = scaled(dataset);
            let server = server.with_cache_fraction(dataset.total_bytes(), frac);
            let prep = LoaderConfig::best_prep_for(model);
            let seq = single_run(&server, model, &dataset, LoaderConfig::dali_seq(prep), 8);
            let shuffle = single_run(
                &server,
                model,
                &dataset,
                LoaderConfig::dali_shuffle(prep),
                8,
            );
            let coordl = single_run(&server, model, &dataset, LoaderConfig::coordl(prep), 8);
            table.row(&[
                model.name().to_string(),
                format!("{:.0}", steady(&seq).samples_per_sec()),
                format!("{:.0}", steady(&shuffle).samples_per_sec()),
                format!("{:.0}", steady(&coordl).samples_per_sec()),
                fmt_speedup(coordl.speedup_over(&shuffle)),
            ]);
        }
        table.print();
    }
    println!("\npaper: up to 1.8x over DALI-seq / 1.5x over DALI-shuffle on SSD-V100, and 2.1x / 1.53x for ResNet50 on HDD-1080Ti.");
}
