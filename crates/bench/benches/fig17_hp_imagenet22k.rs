//! Figure 17 (appendix D.1): HP search on ImageNet-22k — up to 2.5× speedup.
//!
//! ImageNet-22k's images are small (~90 KB), so the storage device delivers
//! more samples per second and fetch stalls are milder than on OpenImages;
//! the coordinated-prep win is correspondingly smaller but still substantial.

use benchkit::{fmt_speedup, hp_pair, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::ServerConfig;

fn main() {
    // ImageNet-22k is 14.2M items; scale it harder than the other benches so
    // the 8-job sweep over 7 models stays fast.
    let dataset = DatasetSpec::imagenet_22k().scaled(256);
    let server = ServerConfig::config_ssd_v100();
    // 500 GiB DRAM holds ~35% of the 1.3 TiB dataset (§3.3.1).
    let cache_fraction = 0.35;

    let mut table = Table::new(
        "Figure 17: 8-job HP search on ImageNet-22k, per-job speedup over DALI",
        &[
            "model",
            "DALI samples/s/job",
            "CoorDL samples/s/job",
            "speedup",
        ],
    )
    .with_caption("Config-SSD-V100, 35% of the dataset cacheable, 8 concurrent 1-GPU jobs");

    for model in ModelKind::image_models() {
        let (dali, coordl) = hp_pair(&server, model, &dataset, cache_fraction, 8);
        table.row(&[
            model.name().to_string(),
            format!("{:.0}", dali.steady_per_job_samples_per_sec()),
            format!("{:.0}", coordl.steady_per_job_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(&dali)),
        ]);
    }
    table.print();
    println!("\npaper: up to 2.5x; smaller than OpenImages because the small images keep storage samples/s high.");
}
