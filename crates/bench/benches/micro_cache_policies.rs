//! Criterion microbenchmark: cache-policy access throughput.
//!
//! The MinIO cache's pitch includes simplicity: no recency bookkeeping means
//! the per-access cost should be at or below the page-cache stand-ins even
//! though it wins on hit rate.  This benchmark measures accesses/second for
//! one steady-state epoch of the DNN access pattern on each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{DatasetSpec, EpochSampler};
use dcache::{build_cache, PolicyKind};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let spec = DatasetSpec::new("micro", 50_000, 1_000, 0.0, 4.0);
    let sampler = EpochSampler::new(spec.num_items, 1);
    let warmup = sampler.permutation(0);
    let epoch = sampler.permutation(1);

    let mut group = c.benchmark_group("cache_policy_access");
    group.throughput(Throughput::Elements(epoch.len() as u64));
    for policy in [
        PolicyKind::MinIo,
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || {
                        let mut cache = build_cache(policy, spec.cache_bytes_for_fraction(0.5));
                        for &item in &warmup {
                            cache.access(item, spec.item_size(item));
                        }
                        cache
                    },
                    |mut cache| {
                        for &item in &epoch {
                            black_box(cache.access(item, spec.item_size(item)));
                        }
                        cache
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
