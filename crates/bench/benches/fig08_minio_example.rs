//! Figure 8: the worked MinIO-vs-page-cache example, plus the same experiment
//! at dataset scale.
//!
//! The paper illustrates thrashing with a dataset of four items {A,B,C,D} and
//! a two-item cache: LRU can miss 2–4 times per epoch, MinIO always exactly 2
//! (the capacity misses).  We replay that trace and then repeat the
//! comparison on a full-size (scaled) dataset.

use benchkit::{fmt_pct, Table};
use dataset::{DatasetSpec, EpochSampler};
use dcache::{build_cache, Cache, LruCache, MinIoCache, PolicyKind};

fn main() {
    // --- The 4-item / 2-slot trace from Figure 8 --------------------------
    // Items: A=0, B=1, C=2, D=3.  Cache warmed with D and B.
    let warmup = [3u64, 1];
    let epochs = [[2u64, 1, 0, 3], [0, 3, 2, 1]];

    let mut lru = LruCache::new(2);
    let mut minio = MinIoCache::new(2);
    for &item in &warmup {
        lru.access(item, 1);
        minio.access(item, 1);
    }

    let mut table = Table::new(
        "Figure 8: cache misses on the 4-item example (cache holds 2)",
        &[
            "epoch access order",
            "page cache (LRU) misses",
            "MinIO misses",
        ],
    );
    for epoch in epochs {
        lru.reset_stats();
        minio.reset_stats();
        for item in epoch {
            lru.access(item, 1);
            minio.access(item, 1);
        }
        let order: Vec<&str> = epoch
            .iter()
            .map(|i| ["A", "B", "C", "D"][*i as usize])
            .collect();
        table.row(&[
            order.join(" "),
            format!("{}", lru.stats().misses),
            format!("{}", minio.stats().misses),
        ]);
    }
    table.print();

    // --- The same comparison at dataset scale ------------------------------
    let spec = DatasetSpec::imagenet_1k().scaled(32);
    let sampler = EpochSampler::new(spec.num_items, 3);
    let mut table = Table::new(
        "Figure 8 (scaled up): steady-state miss ratio, 50% cache",
        &["policy", "miss ratio", "ideal"],
    )
    .with_caption(format!(
        "{} items, fresh random permutation per epoch",
        spec.num_items
    ));
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::MinIo,
    ] {
        let mut cache = build_cache(policy, spec.cache_bytes_for_fraction(0.5));
        for epoch in 0..3u64 {
            cache.reset_stats();
            for item in sampler.permutation(epoch) {
                cache.access(item, spec.item_size(item));
            }
        }
        table.row(&[
            format!("{policy:?}"),
            fmt_pct(cache.stats().miss_ratio()),
            "50.0%".to_string(),
        ]);
    }
    table.print();
    println!("\npaper: MinIO incurs only capacity misses; the page cache loses ~20% of the dataset to thrashing.");
}
