//! Table 3: data stalls exist in TensorFlow's TFRecord pipeline too.
//!
//! TFRecord stores items in large (~150 MB) chunked record files read
//! sequentially; that access pattern is a pathological case for the page
//! cache's LRU policy, so an 8-GPU training job sees higher-than-ideal cache
//! misses, and 8 uncoordinated HP-search jobs amplify disk reads ~6–7×.

use benchkit::{fmt_gb, fmt_pct, hp_jobs, hp_run, scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::LoaderConfig;

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let loader = LoaderConfig::tfrecord();

    let mut table = Table::new(
        "Table 3: data stalls in the TensorFlow/TFRecord pipeline",
        &[
            "% dataset cached",
            "8-GPU cache miss %",
            "HP-search disk IO",
            "HP read amplification",
        ],
    )
    .with_caption("ResNet18 on ImageNet-1k, Config-SSD-V100, TFRecord chunked format, 8 HP jobs");

    for cache_pct in [50u32, 35, 25] {
        let frac = cache_pct as f64 / 100.0;
        let server = server_ssd(&dataset, frac);

        let training = steady(&single_run(&server, model, &dataset, loader.clone(), 8));
        let hp = hp_run(&server, hp_jobs(model, &dataset, loader.clone(), 8, 1), 3);

        // TFRecord fetches whole ~150 MB chunks, so the meaningful miss rate
        // is the fraction of the dataset that had to come off storage during
        // the epoch (the paper reports page-cache misses, which are
        // page-granular for the same reason), not the per-sample hit ratio.
        let byte_miss = training.bytes_from_disk as f64 / dataset.total_bytes() as f64;
        table.row(&[
            format!("{cache_pct}%"),
            fmt_pct(byte_miss),
            fmt_gb(hp.disk_bytes_per_epoch[1]),
            format!("{:.2}x", hp.read_amplification(dataset.total_bytes(), 1)),
        ]);
    }
    table.print();
    println!("\npaper (Table 3): 91-97% cache misses and 6.1-7.3x read amplification as the cache shrinks from 50% to 25%.");
}
