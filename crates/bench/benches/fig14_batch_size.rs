//! Figure 14 (appendix B.3): batch-size sweep for MobileNetv2 — bigger
//! batches make the GPU compute faster, but prep stalls eat the benefit.
//!
//! As the per-GPU batch grows, per-sample GPU time drops (better parallelism,
//! fewer gradient syncs) yet the epoch time barely moves because training is
//! already bottlenecked on pre-processing.

use benchkit::{fmt_pct, scaled, server_ssd, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{Experiment, JobSpec, LoaderConfig};

fn main() {
    let model = ModelKind::MobileNetV2;
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let server = server_ssd(&dataset, 1.1);

    let mut table = Table::new(
        "Figure 14: MobileNetv2 epoch time vs per-GPU batch size (fully cached)",
        &["batch/GPU", "compute s", "epoch s", "prep stall %"],
    )
    .with_caption("Config-SSD-V100, 8 GPUs, best DALI prep");

    for batch in [128usize, 256, 512, 1024] {
        let job = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model))
            .with_batch(batch);
        let epoch = steady(&Experiment::on(&server).job(job).epochs(3).run());
        table.row(&[
            format!("{batch}"),
            format!("{:.1}", epoch.breakdown.compute_time.as_secs()),
            format!("{:.1}", epoch.epoch_seconds()),
            fmt_pct(epoch.prep_stall_fraction()),
        ]);
    }
    table.print();
    println!("\npaper: GPU compute time falls with batch size but epoch time stays flat — prep stalls mask the gain.");
}
