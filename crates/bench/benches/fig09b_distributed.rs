//! Figure 9(b): distributed training across two servers (16 GPUs) — CoorDL's
//! partitioned caching vs DALI-shuffle.
//!
//! With 65 % of the dataset cacheable per server, two servers can hold the
//! whole dataset; partitioned caching turns every steady-state fetch into a
//! local- or remote-DRAM hit and moves the job from I/O bound to GPU bound.
//! The win is largest on hard drives (up to 15× for AlexNet).

use benchkit::{distributed_pair, fmt_speedup, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::ServerConfig;

fn workload(model: ModelKind) -> (DatasetSpec, f64) {
    match model {
        ModelKind::AudioM5 => (DatasetSpec::fma(), 0.45),
        ModelKind::ShuffleNetV2 | ModelKind::ResNet18 | ModelKind::AlexNet => {
            (DatasetSpec::openimages_extended(), 0.65)
        }
        _ => (DatasetSpec::openimages_extended(), 0.65),
    }
}

fn main() {
    for (server, label) in [
        (ServerConfig::config_hdd_1080ti(), "Config-HDD-1080Ti"),
        (ServerConfig::config_ssd_v100(), "Config-SSD-V100"),
    ] {
        let mut table = Table::new(
            format!("Figure 9b: 2-server distributed training, CoorDL vs DALI ({label})"),
            &[
                "model",
                "DALI samples/s",
                "CoorDL samples/s",
                "speedup",
                "DALI disk GiB/srv/epoch",
                "CoorDL disk GiB/srv/epoch",
                "CoorDL net Gbps",
            ],
        )
        .with_caption("16 GPUs across 2 servers, 45-65% of the dataset cached per server");

        for model in [
            ModelKind::AlexNet,
            ModelKind::ShuffleNetV2,
            ModelKind::ResNet18,
            ModelKind::ResNet50,
            ModelKind::AudioM5,
        ] {
            let (dataset, frac) = workload(model);
            let dataset = scaled(dataset);
            let (dali, coordl) = distributed_pair(&server, model, &dataset, frac, 2);
            let gib = |per_server: &[u64]| {
                per_server.iter().sum::<u64>() as f64
                    / per_server.len() as f64
                    / (1u64 << 30) as f64
            };
            table.row(&[
                model.name().to_string(),
                format!("{:.0}", dali.steady_samples_per_sec()),
                format!("{:.0}", coordl.steady_samples_per_sec()),
                fmt_speedup(coordl.speedup_over(&dali)),
                format!("{:.2}", gib(&dali.disk_bytes_per_server(2))),
                format!("{:.2}", gib(&coordl.disk_bytes_per_server(2))),
                format!("{:.2}", coordl.avg_network_gbps(2)),
            ]);
        }
        table.print();
    }
    println!(
        "\npaper: up to 15x on hard drives (AlexNet), 1.3x ShuffleNet / 2.9x Audio-M5 on SSDs."
    );
}
