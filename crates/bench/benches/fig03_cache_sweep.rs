//! Figure 3: ResNet18 epoch time vs cache size, split into compute, the
//! *ideal* fetch stall (capacity misses only), and the extra stall caused by
//! page-cache thrashing.
//!
//! The paper's point: an effective cache of size x should produce x hits per
//! epoch; the OS page cache produces fewer, and the difference shows up as
//! avoidable fetch-stall time.

use benchkit::{fmt_pct, scaled, server_ssd, single_run, steady, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::LoaderConfig;
use prep::PrepBackend;

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());

    let mut table = Table::new(
        "Figure 3: ResNet18 epoch-time split vs cache size",
        &[
            "cache %",
            "compute s",
            "ideal fetch stall s",
            "thrashing extra s",
            "page-cache miss %",
            "ideal miss %",
        ],
    )
    .with_caption("Config-SSD-V100, 8 GPUs, ImageNet-1k; ideal = MinIO (capacity misses only)");

    for cache_pct in [20u32, 35, 50, 65, 80, 100] {
        let frac = cache_pct as f64 / 100.0;
        let server = server_ssd(&dataset, frac);
        // Page cache (LRU) baseline vs the ideal never-evict cache.
        let lru = steady(&single_run(
            &server,
            model,
            &dataset,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
            8,
        ));
        let ideal = steady(&single_run(
            &server,
            model,
            &dataset,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
            8,
        ));
        let compute = lru.breakdown.compute_time.as_secs();
        let ideal_stall = ideal.breakdown.fetch_stall.as_secs();
        let extra = (lru.breakdown.fetch_stall.as_secs() - ideal_stall).max(0.0);
        table.row(&[
            format!("{cache_pct}%"),
            format!("{compute:.1}"),
            format!("{ideal_stall:.1}"),
            format!("{extra:.1}"),
            fmt_pct(lru.miss_ratio()),
            fmt_pct(ideal.miss_ratio()),
        ]);
    }
    table.print();
    println!("\npaper: at 35% cache the page cache fetches ~85% of the dataset per epoch instead of the ideal 65%.");
}
