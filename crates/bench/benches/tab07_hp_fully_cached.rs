//! Table 7: HP search on a fully-cached dataset — coordinated prep alone.
//!
//! With ImageNet-1k entirely in memory there are no fetch stalls, so any win
//! comes purely from eliminating redundant pre-processing across the eight
//! concurrent jobs: up to 1.87× for AlexNet, 1.2× for ResNet50.

use benchkit::{fmt_speedup, hp_pair, scaled, Table};
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::ServerConfig;

fn main() {
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let server = ServerConfig::config_ssd_v100();

    let paper: &[(ModelKind, &str)] = &[
        (ModelKind::ShuffleNetV2, "1.81x"),
        (ModelKind::AlexNet, "1.87x"),
        (ModelKind::ResNet18, "1.53x"),
        (ModelKind::SqueezeNet, "1.50x"),
        (ModelKind::MobileNetV2, "1.35x"),
        (ModelKind::ResNet50, "1.21x"),
        (ModelKind::Vgg11, "1.22x"),
    ];

    let mut table = Table::new(
        "Table 7: 8-job HP search with a fully cached dataset",
        &[
            "model",
            "DALI samples/s/job",
            "CoorDL samples/s/job",
            "speedup",
            "paper",
        ],
    )
    .with_caption("ImageNet-1k fully in memory, Config-SSD-V100, 8 concurrent 1-GPU jobs");

    for &(model, paper_speedup) in paper {
        let (dali, coordl) = hp_pair(&server, model, &dataset, 1.1, 8);
        table.row(&[
            model.name().to_string(),
            format!("{:.0}", dali.steady_per_job_samples_per_sec()),
            format!("{:.0}", coordl.steady_per_job_samples_per_sec()),
            fmt_speedup(coordl.speedup_over(&dali)),
            paper_speedup.to_string(),
        ]);
    }
    table.print();
    println!("\npaper: the ordering follows compute intensity — the lighter the model, the bigger the win from shared prep.");
}
