//! Figure 23 (appendix E.2.3): end-to-end HP search (Ray-Tune-style, 8 jobs,
//! one epoch per trial) with the native PyTorch loader on hard drives and
//! SSDs, showing the contribution of each Py-CoorDL technique.
//!
//! On HDDs coordinated prep alone is ~2.5× (less disk traffic), and adding
//! MinIO reaches ~5.5×; on SSDs the loader is prep-bound, so coordinated prep
//! captures almost all of the win and MinIO adds little.

use benchkit::{fmt_speedup, hp_jobs, hp_run, scaled, Table};
use dataset::DatasetSpec;
use dcache::PolicyKind;
use gpu::ModelKind;
use pipeline::{LoaderConfig, ServerConfig, SimReport};

fn coordinated_prep_only() -> LoaderConfig {
    LoaderConfig {
        coordinated_prep: true,
        ..LoaderConfig::pytorch_dl()
    }
}

fn full_py_coordl() -> LoaderConfig {
    LoaderConfig {
        coordinated_prep: true,
        cache_policy: PolicyKind::MinIo,
        ..LoaderConfig::pytorch_dl()
    }
}

fn main() {
    let model = ModelKind::ResNet18;
    let dataset = scaled(DatasetSpec::imagenet_1k());
    let cache_fraction = 0.75; // the appendix caps the cache at ~75% of the dataset

    for (base, label) in [
        (ServerConfig::config_hdd_1080ti(), "HDD"),
        (ServerConfig::config_ssd_v100(), "SSD"),
    ] {
        let server = base.with_cache_fraction(dataset.total_bytes(), cache_fraction);
        let search = |loader: LoaderConfig| -> SimReport {
            hp_run(&server, hp_jobs(model, &dataset, loader, 8, 1), 3)
        };
        let baseline = search(LoaderConfig::pytorch_dl());
        let coord = search(coordinated_prep_only());
        let full = search(full_py_coordl());

        let search_time = |r: &SimReport| r.steady_epoch_seconds();
        let mut table = Table::new(
            format!("Figure 23 ({label}): end-to-end HP search time, 8 trials in parallel"),
            &["configuration", "search time s", "speedup", "disk GB/epoch"],
        )
        .with_caption("ResNet18 on ImageNet-1k, 75% cache, one epoch per trial");
        for (name, result) in [
            ("PyTorch-DL", &baseline),
            ("+ coordinated prep", &coord),
            ("Py-CoorDL (coord prep + MinIO)", &full),
        ] {
            table.row(&[
                name.to_string(),
                format!("{:.1}", search_time(result)),
                fmt_speedup(search_time(&baseline) / search_time(result)),
                format!("{:.1}", result.disk_bytes_per_epoch[1] as f64 / 1e9),
            ]);
        }
        table.print();
    }
    println!("\npaper: ~2.5x from coordinated prep and ~5.5x with MinIO on HDDs; on SSDs coordinated prep dominates the gain.");
}
