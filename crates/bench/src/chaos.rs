//! The fault-injection preset over the *runtime* partitioned cluster
//! (`coordl::PartitionedCacheCluster` under a seeded `coordl::FaultPlan`):
//! the preset behind `dstool sweep chaos` and part of `dstool smoke`.
//!
//! A chaos run trains one partitioned session twice: once fault-free and
//! once under a deterministic membership schedule (kills, graceful leaves,
//! rejoins) fired on the cluster's shared fetch-step axis.  Four contracts
//! come out of a run:
//!
//! * **a healthy-prefix gate** — every epoch before the first scheduled
//!   fault must be bit-identical to the fault-free twin (hashed into
//!   `chaos_prefix_digest` / `healthy_prefix_digest`): fault plumbing that
//!   is not armed must cost nothing and change nothing;
//! * **an exactly-once gate** — every epoch of both runs delivers each
//!   dataset item exactly once across the node shards, faults or not: a
//!   consumer stream never loses or duplicates a sample;
//! * **a no-lost-shard gate** — after the run, every directory entry is
//!   owned by an alive server (dead owners must have been re-homed onto
//!   survivors in rendezvous order or dropped);
//! * **a recovery gate** — the final epoch's cache-served byte fraction
//!   must be no worse than the worst post-fault epoch and stay within a
//!   configured fraction of the fault-free twin's: rebalancing plus lazy
//!   re-registration win the hit ratio back (§5.2's partitioned claims
//!   under churn).
//!
//! Worker counts ride along exactly as in the other runtime presets: every
//! worker count must deliver byte-identical streams, faults included.

use coordl::{FaultPlan, Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use pipeline::json::{write_f64, write_string};
use std::sync::Arc;

/// CLI name of the runtime preset (`dstool sweep chaos`).
pub const CHAOS_NAME: &str = "chaos";

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Servers in the partitioned cluster.
    pub nodes: usize,
    /// Membership events to schedule (kills, leaves, rejoins).
    pub faults: usize,
    /// Seed of the fault schedule (`dcache::fault_schedule`).
    pub fault_seed: u64,
    /// Worker counts every run is repeated at (bit-equality across them).
    pub worker_counts: Vec<usize>,
    /// Items in the synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes.
    pub avg_item_bytes: u64,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Epochs per run (epoch 0 is the cold warm-up; faults fire on epoch
    /// boundaries 1..epochs).
    pub epochs: u64,
    /// Per-node cache capacity as percent of the dataset.
    pub cache_percent: u32,
    /// Shuffle + augmentation seed shared by both runs.
    pub seed: u64,
    /// Recovery gate: the final chaos epoch's cache-served byte fraction
    /// must be at least this multiple of the fault-free twin's.
    pub recovery_fraction: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 3,
            faults: 3,
            fault_seed: 0xC0DA,
            worker_counts: vec![1, 2],
            items: 600,
            avg_item_bytes: 600,
            batch_size: 25,
            epochs: 6,
            cache_percent: 65,
            seed: 0xFA17,
            recovery_fraction: 0.5,
        }
    }
}

impl ChaosConfig {
    /// The default preset with its dataset shrunk by `extra_scale` (pass 1
    /// for full fidelity; `dstool smoke` passes its CI scale).
    pub fn scaled(extra_scale: u64) -> Self {
        let base = ChaosConfig::default();
        ChaosConfig {
            items: (base.items / extra_scale.max(1)).max(150),
            ..base
        }
    }
}

/// One scheduled membership event, as reported.
#[derive(Debug, Clone, Copy)]
pub struct ChaosFault {
    /// Epoch boundary the event fires at.
    pub at_epoch: u64,
    /// The server it applies to.
    pub node: usize,
    /// `"kill"`, `"leave"` or `"join"`.
    pub kind: &'static str,
}

/// The result of one chaos run (both twins, all worker counts).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The configuration that produced it.
    pub config: ChaosConfig,
    /// The seeded schedule both engines share, sorted by boundary epoch.
    pub faults: Vec<ChaosFault>,
    /// Epochs strictly before the first scheduled fault.
    pub prefix_epochs: u64,
    /// Stream digest of the chaos run's healthy prefix.
    pub chaos_prefix_digest: u64,
    /// Stream digest of the same epochs in the fault-free twin.
    pub healthy_prefix_digest: u64,
    /// Full-run stream digest of the chaos run.
    pub chaos_digest: u64,
    /// Full-run stream digest of the fault-free twin.
    pub healthy_digest: u64,
    /// Samples delivered per epoch, summed over nodes, chaos run.
    pub chaos_epoch_samples: Vec<u64>,
    /// Samples delivered per epoch, summed over nodes, fault-free twin.
    pub healthy_epoch_samples: Vec<u64>,
    /// Per-epoch fraction of fetched bytes served by a cache tier (local or
    /// remote) in the chaos run.
    pub chaos_epoch_cached_fraction: Vec<f64>,
    /// The fault-free twin's final-epoch cache-served byte fraction.
    pub healthy_final_cached_fraction: f64,
    /// Directory entries owned by a dead server after the run (must be 0).
    pub dead_owned_entries: usize,
    /// Directory size after the chaos run.
    pub directory_entries: usize,
    /// Cluster membership after the run, per server.
    pub alive_at_end: Vec<bool>,
}

impl ChaosReport {
    /// The digest `dstool` pins in `ci/bench_baseline.json` — the full
    /// chaos stream, faults included.
    pub fn digest(&self) -> u64 {
        self.chaos_digest
    }

    /// Check the run's four contracts (see the [module docs](self)).
    pub fn verify(&self) -> Result<(), String> {
        if self.faults.is_empty() {
            return Err("chaos run scheduled no faults — nothing was tested".to_string());
        }
        if self.chaos_prefix_digest != self.healthy_prefix_digest {
            return Err(format!(
                "healthy prefix diverged: chaos {:016x} vs fault-free {:016x} over \
                 the first {} epoch(s) — an unarmed fault plan changed the stream",
                self.chaos_prefix_digest, self.healthy_prefix_digest, self.prefix_epochs
            ));
        }
        for (name, samples) in [
            ("chaos", &self.chaos_epoch_samples),
            ("fault-free", &self.healthy_epoch_samples),
        ] {
            for (e, &s) in samples.iter().enumerate() {
                if s != self.config.items {
                    return Err(format!(
                        "{name} epoch {e}: {s} samples delivered, want exactly {} — \
                         a fault lost or duplicated samples",
                        self.config.items
                    ));
                }
            }
        }
        if self.dead_owned_entries > 0 {
            return Err(format!(
                "{} directory entrie(s) still owned by a dead server — \
                 rebalancing lost a shard",
                self.dead_owned_entries
            ));
        }
        let first_fault = self.prefix_epochs as usize;
        let post = &self.chaos_epoch_cached_fraction
            [first_fault.min(self.chaos_epoch_cached_fraction.len().saturating_sub(1))..];
        let worst = post.iter().copied().fold(f64::INFINITY, f64::min);
        let last = *post.last().expect("at least one post-fault epoch");
        if last + 1e-9 < worst {
            return Err(format!(
                "hit ratio never recovered: final epoch serves {last:.3} of bytes \
                 from cache, worse than the degraded trough {worst:.3}"
            ));
        }
        let floor = self.config.recovery_fraction * self.healthy_final_cached_fraction;
        if last < floor {
            return Err(format!(
                "post-rebalance recovery too weak: final cached fraction {last:.3} \
                 below {floor:.3} ({}% of the fault-free twin's {:.3})",
                (self.config.recovery_fraction * 100.0) as u32,
                self.healthy_final_cached_fraction
            ));
        }
        Ok(())
    }

    /// Serialise through the shared `pipeline::json` emitter (digests as hex
    /// strings, like the other runtime presets).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"preset\":");
        write_string(&mut out, CHAOS_NAME);
        out.push_str(",\"nodes\":");
        out.push_str(&self.config.nodes.to_string());
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"prefix_epochs\":");
        out.push_str(&self.prefix_epochs.to_string());
        out.push_str(",\"stream_digest\":");
        write_string(&mut out, &format!("{:016x}", self.chaos_digest));
        out.push_str(",\"healthy_digest\":");
        write_string(&mut out, &format!("{:016x}", self.healthy_digest));
        out.push_str(",\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"at_epoch\":");
            out.push_str(&f.at_epoch.to_string());
            out.push_str(",\"node\":");
            out.push_str(&f.node.to_string());
            out.push_str(",\"kind\":");
            write_string(&mut out, f.kind);
            out.push('}');
        }
        out.push_str("],\"epoch_cached_fraction\":[");
        for (i, &v) in self.chaos_epoch_cached_fraction.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(&mut out, v);
        }
        out.push_str("],\"healthy_final_cached_fraction\":");
        write_f64(&mut out, self.healthy_final_cached_fraction);
        out.push_str(",\"directory_entries\":");
        out.push_str(&self.directory_entries.to_string());
        out.push_str(",\"alive_at_end\":[");
        for (i, &a) in self.alive_at_end.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if a { "true" } else { "false" });
        }
        out.push_str("]}");
        out
    }
}

/// Run the preset: the chaos run and its fault-free twin at every worker
/// count, with bit-equality enforced across worker counts.
///
/// # Panics
/// Panics when a worker count delivers a different stream — the
/// single-fetch-thread determinism contract, not a tolerance.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    assert!(cfg.nodes >= 2, "chaos needs at least two nodes");
    assert!(
        cfg.epochs >= 2,
        "chaos needs a boundary for faults to fire on"
    );
    let plan = FaultPlan::seeded(cfg.nodes, cfg.epochs, cfg.faults, cfg.fault_seed, cfg.items);
    let prefix_epochs = plan
        .first_fault_step()
        .map(|s| s / cfg.items)
        .unwrap_or(cfg.epochs);

    let mut report: Option<ChaosReport> = None;
    for &workers in &cfg.worker_counts {
        let chaos = run_once(cfg, Some(plan.clone()), prefix_epochs, workers);
        let healthy = run_once(cfg, None, prefix_epochs, workers);
        let faults = plan
            .steps()
            .iter()
            .map(|s| ChaosFault {
                at_epoch: s.at_step / cfg.items,
                node: s.node,
                kind: s.kind.name(),
            })
            .collect();
        let this = ChaosReport {
            config: cfg.clone(),
            faults,
            prefix_epochs,
            chaos_prefix_digest: chaos.prefix_digest,
            healthy_prefix_digest: healthy.prefix_digest,
            chaos_digest: chaos.digest,
            healthy_digest: healthy.digest,
            chaos_epoch_samples: chaos.epoch_samples,
            healthy_epoch_samples: healthy.epoch_samples,
            chaos_epoch_cached_fraction: chaos.epoch_cached_fraction,
            healthy_final_cached_fraction: *healthy
                .epoch_cached_fraction
                .last()
                .expect("at least one epoch"),
            dead_owned_entries: chaos.dead_owned_entries,
            directory_entries: chaos.directory_entries,
            alive_at_end: chaos.alive_at_end,
        };
        match &report {
            None => report = Some(this),
            Some(first) => {
                assert_eq!(
                    (this.chaos_digest, this.healthy_digest),
                    (first.chaos_digest, first.healthy_digest),
                    "chaos: workers={workers} delivered a different stream"
                );
            }
        }
    }
    report.expect("worker_counts must not be empty")
}

/// Per-run observations shared by the chaos run and its twin.
struct RunObs {
    digest: u64,
    prefix_digest: u64,
    epoch_samples: Vec<u64>,
    epoch_cached_fraction: Vec<f64>,
    dead_owned_entries: usize,
    directory_entries: usize,
    alive_at_end: Vec<bool>,
}

fn run_once(
    cfg: &ChaosConfig,
    plan: Option<FaultPlan>,
    prefix_epochs: u64,
    workers: usize,
) -> RunObs {
    let spec = DatasetSpec::new("chaos", cfg.items, cfg.avg_item_bytes, 0.2, 4.0);
    let total_bytes = spec.total_bytes();
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 31));
    let mut builder = Session::builder(
        store,
        SessionConfig {
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            num_workers: workers,
            cache_capacity_bytes: total_bytes * cfg.cache_percent as u64 / 100,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes: cfg.nodes });
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let session = builder.build().expect("valid chaos session");

    let mut digest = Fnv::new();
    let mut prefix_digest = 0u64;
    let mut epoch_samples = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        let mut samples = 0u64;
        // One node stream at a time: cluster fetches stay sequential, so the
        // fault plan's step axis is identical for every worker count.
        for node in 0..cfg.nodes {
            for batch in run.stream(node) {
                let mb = batch.expect("chaos epochs never fail a consumer");
                samples += mb.len() as u64;
                digest.u64(mb.epoch);
                digest.u64(mb.index as u64);
                for s in &mb.samples {
                    digest.u64(s.item);
                    digest.u64(s.augmentation_seed);
                    digest.bytes(&s.data);
                }
            }
        }
        epoch_samples.push(samples);
        if epoch + 1 == prefix_epochs {
            prefix_digest = digest.finish();
        }
    }

    let report = session.report();
    let epoch_cached_fraction = report
        .epochs
        .iter()
        .map(|e| {
            let cached = e.bytes_from_cache + e.bytes_from_remote;
            let total = cached + e.bytes_from_storage;
            if total == 0 {
                1.0
            } else {
                cached as f64 / total as f64
            }
        })
        .collect();
    let cluster = session
        .partitioned_cluster()
        .expect("partitioned session has a cluster");
    let snapshot = cluster.directory_snapshot();
    let dead_owned_entries = snapshot
        .iter()
        .filter(|&&(_, owner)| !cluster.is_alive(owner))
        .count();
    RunObs {
        digest: digest.finish(),
        prefix_digest,
        epoch_samples,
        epoch_cached_fraction,
        dead_owned_entries,
        directory_entries: snapshot.len(),
        alive_at_end: (0..cfg.nodes).map(|n| cluster.is_alive(n)).collect(),
    }
}

/// FNV-1a over 8-byte words (the same digest the other runtime sweeps use).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> ChaosConfig {
        ChaosConfig {
            items: 200,
            avg_item_bytes: 256,
            batch_size: 20,
            worker_counts: vec![1, 2],
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn default_run_passes_all_gates() {
        let report = run_chaos(&tiny());
        assert!(!report.faults.is_empty(), "schedule must not be empty");
        assert!(report.prefix_epochs >= 1, "epoch 0 is always healthy");
        report.verify().expect("chaos contract");
        // The faults were not a no-op: the full streams differ even though
        // the healthy prefixes match.
        assert_eq!(report.chaos_prefix_digest, report.healthy_prefix_digest);
    }

    #[test]
    fn verify_rejects_a_diverged_prefix() {
        let mut report = run_chaos(&tiny());
        report.chaos_prefix_digest ^= 1;
        let err = report.verify().unwrap_err();
        assert!(err.contains("healthy prefix diverged"), "{err}");
    }

    #[test]
    fn verify_rejects_lost_samples_and_lost_shards() {
        let mut report = run_chaos(&tiny());
        report.chaos_epoch_samples[1] -= 1;
        let err = report.verify().unwrap_err();
        assert!(err.contains("lost or duplicated"), "{err}");

        let mut report = run_chaos(&tiny());
        report.dead_owned_entries = 2;
        let err = report.verify().unwrap_err();
        assert!(err.contains("lost a shard"), "{err}");
    }

    #[test]
    fn json_round_trips_with_hex_digest() {
        let report = run_chaos(&ChaosConfig {
            worker_counts: vec![1],
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest()));
        let faults = doc.get("faults").and_then(Value::as_array).unwrap();
        assert_eq!(faults.len(), report.faults.len());
        assert!(doc
            .get("epoch_cached_fraction")
            .and_then(Value::as_array)
            .is_some());
    }

    #[test]
    fn scaled_config_shrinks_items_only() {
        let scaled = ChaosConfig::scaled(4);
        assert!(scaled.items < ChaosConfig::default().items);
        assert!(scaled.items >= 150);
        assert_eq!(scaled.nodes, ChaosConfig::default().nodes);
    }
}
