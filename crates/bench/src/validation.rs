//! Predicted-vs-empirical validation: the same workload through the
//! simulator (`pipeline::Experiment`) and the runtime (`coordl::Session`).
//!
//! This is the paper's Table 5 / Figure 16 methodology applied to the
//! reproduction itself: the simulator *predicts* cache hit ratios, storage
//! traffic and stalls from the device/cache model, the functional loader
//! *measures* them on real bytes, and `dstool validate` reports the deltas.
//! Both sides share the epoch sampler, the per-item size function and the
//! cache-policy code, so hit-ratio and storage-byte predictions should land
//! within a small tolerance; the stall comparison (simulated fetch-stall
//! seconds vs the runtime's modelled device-busy seconds) is reported but
//! not gated, because the simulator accounts pipelining overlap that a
//! functional loader cannot observe.

use coordl::{FetchBackend, FsBackend, Mode, Session, SessionConfig, TenantHandle, TenantSpec};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use dcache::PolicyKind;
use pipeline::json::{write_f64, write_string};
use pipeline::{
    churn_schedule, CacheSpec, Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig, SimReport,
};
use prep::PrepBackend;
use std::sync::Arc;
use std::time::Duration;
use storage::AccessPattern;
use vfs::{MemVfs, Vfs};

/// Shuffle seed shared by the simulator job and the runtime session, so both
/// sweep identical per-epoch permutations.
const VALIDATION_SEED: u64 = 0xC0DA;

/// Synthetic-store content seed (irrelevant to the comparison; bytes only).
const STORE_SEED: u64 = 7;

/// Tenants in the elastic-churn scenario.
const CHURN_TENANTS: usize = 3;

/// Seed of the churn schedule shared by the simulator's
/// `Scenario::ElasticCluster` and the runtime `coordl::Server` replay.
const CHURN_SEED: u64 = 0xE1A5;

/// Per-tenant sample-count metric labels of the churn scenario.
const CHURN_SAMPLE_METRICS: [&str; CHURN_TENANTS] =
    ["tenant0_samples", "tenant1_samples", "tenant2_samples"];

/// Servers in the partitioned-chaos scenario.
const CHAOS_SERVERS: usize = 3;

/// Membership faults scheduled over a partitioned-chaos run.
const CHAOS_FAULTS: usize = 2;

/// Seed of the fault schedule shared by the simulator's
/// `Scenario::PartitionedChaos` and the runtime session's
/// [`coordl::FaultPlan`].
const CHAOS_FAULT_SEED: u64 = 0xFA11;

/// Configuration of one validation run.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Dataset scale-down applied to ImageNet-1k (larger = smaller run).
    pub scale: u64,
    /// DRAM cache capacity as a fraction of the dataset.
    pub cache_fraction: f64,
    /// Concurrent jobs in the coordinated scenario.
    pub jobs: usize,
    /// Epochs per run (epoch 0 is the cold-cache warm-up).
    pub epochs: u64,
    /// Gate tolerance: absolute for hit ratios, relative for byte counts.
    pub tolerance: f64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            scale: 4000,
            cache_fraction: 0.35,
            jobs: 4,
            epochs: 3,
            tolerance: 0.05,
        }
    }
}

/// How a row's predicted/empirical pair is compared against the tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateKind {
    /// `|predicted - empirical| <= tolerance`.
    Absolute,
    /// `|predicted - empirical| / max(predicted, epsilon) <= tolerance`.
    Relative,
    /// A one-sided tripwire for wall-clock measurements compared against
    /// modelled predictions: fails only when
    /// `empirical > predicted * factor + slack_seconds`.  Coarse by design —
    /// it catches stuck consumers and lost wakeups, not scheduler noise.
    WallClock {
        /// Multiplicative headroom over the prediction.
        factor: f64,
        /// Additive headroom covering fixed thread/startup overhead that
        /// dominates tiny validation runs.
        slack_seconds: f64,
    },
    /// Reported only, never gated.
    Informational,
}

/// One predicted-vs-empirical comparison.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Scenario label (`single-minio`, `single-lru`, `single-tiered`,
    /// `hp-coordinated`, `elastic-churn`, `fs-real`, `partitioned-chaos`).
    pub scenario: &'static str,
    /// Metric label (`steady_hit_ratio`, `steady_disk_bytes`, ...).
    pub metric: &'static str,
    /// The simulator's prediction.
    pub predicted: f64,
    /// The runtime's measurement.
    pub empirical: f64,
    /// How the pair is gated.
    pub gate: GateKind,
}

impl ValidationRow {
    /// Absolute delta.
    pub fn delta(&self) -> f64 {
        (self.predicted - self.empirical).abs()
    }

    /// Delta relative to the prediction (Table 5's error metric).
    pub fn relative_delta(&self) -> f64 {
        self.delta() / self.predicted.abs().max(1e-9)
    }

    /// Whether the row passes under `tolerance`.
    pub fn passes(&self, tolerance: f64) -> bool {
        match self.gate {
            GateKind::Absolute => self.delta() <= tolerance,
            GateKind::Relative => {
                // Two near-zero values agree regardless of their ratio.
                self.delta() <= 1e-6 || self.relative_delta() <= tolerance
            }
            GateKind::WallClock {
                factor,
                slack_seconds,
            } => self.empirical <= self.predicted * factor + slack_seconds,
            GateKind::Informational => true,
        }
    }
}

/// The result of one validation run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// The configuration that produced it.
    pub config: ValidationConfig,
    /// All comparisons, in scenario order.
    pub rows: Vec<ValidationRow>,
}

impl ValidationReport {
    /// Rows that fail the gate under the configured tolerance.
    pub fn failures(&self) -> Vec<&ValidationRow> {
        self.rows
            .iter()
            .filter(|r| !r.passes(self.config.tolerance))
            .collect()
    }

    /// True when every gated row is within tolerance.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Serialise through the shared `pipeline::json` emitter.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":\"datastalls-validate/v1\",\"scale\":");
        out.push_str(&self.config.scale.to_string());
        out.push_str(",\"cache_fraction\":");
        write_f64(&mut out, self.config.cache_fraction);
        out.push_str(",\"jobs\":");
        out.push_str(&self.config.jobs.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"tolerance\":");
        write_f64(&mut out, self.config.tolerance);
        out.push_str(",\"passed\":");
        out.push_str(if self.passed() { "true" } else { "false" });
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"scenario\":");
            write_string(&mut out, row.scenario);
            out.push_str(",\"metric\":");
            write_string(&mut out, row.metric);
            out.push_str(",\"predicted\":");
            write_f64(&mut out, row.predicted);
            out.push_str(",\"empirical\":");
            write_f64(&mut out, row.empirical);
            out.push_str(",\"delta\":");
            write_f64(&mut out, row.delta());
            out.push_str(",\"relative_delta\":");
            write_f64(&mut out, row.relative_delta());
            out.push_str(",\"gated\":");
            out.push_str(if row.gate == GateKind::Informational {
                "false"
            } else {
                "true"
            });
            out.push_str(",\"pass\":");
            out.push_str(if row.passes(self.config.tolerance) {
                "true"
            } else {
                "false"
            });
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

struct ScenarioOutcome {
    predicted_hit_ratio: f64,
    empirical_hit_ratio: f64,
    predicted_disk_bytes: f64,
    empirical_disk_bytes: f64,
    predicted_stall_secs: f64,
    empirical_device_secs: f64,
    predicted_data_stall_secs: f64,
    /// Consumer wait per consuming job (coordinated sessions sum their
    /// consumers' waits, which would scale with the job count).
    empirical_consumer_wait_secs: f64,
    /// Per-tier hit ratios, present for tiered scenarios:
    /// `(predicted_dram, empirical_dram, predicted_ssd, empirical_ssd)`.
    tier_ratios: Option<(f64, f64, f64, f64)>,
}

/// The coordinated consumer-wait tripwire: the prediction is
/// modelled-hardware seconds while the measurement is wall time on the test
/// host, so the gate allows 10x the prediction plus ten seconds of fixed
/// overhead before failing — enough headroom even for an oversubscribed
/// single-core host running sibling tests, and still an order of magnitude
/// below what a stuck consumer produces (take-timeout-bound waits are 30s+).
pub const CONSUMER_WAIT_GATE: GateKind = GateKind::WallClock {
    factor: 10.0,
    slack_seconds: 10.0,
};

fn push_rows(
    rows: &mut Vec<ValidationRow>,
    scenario: &'static str,
    o: ScenarioOutcome,
    gate_consumer_wait: bool,
) {
    rows.push(ValidationRow {
        scenario,
        metric: "steady_hit_ratio",
        predicted: o.predicted_hit_ratio,
        empirical: o.empirical_hit_ratio,
        gate: GateKind::Absolute,
    });
    rows.push(ValidationRow {
        scenario,
        metric: "steady_disk_bytes",
        predicted: o.predicted_disk_bytes,
        empirical: o.empirical_disk_bytes,
        gate: GateKind::Relative,
    });
    if let Some((p_dram, e_dram, p_ssd, e_ssd)) = o.tier_ratios {
        rows.push(ValidationRow {
            scenario,
            metric: "steady_dram_hit_ratio",
            predicted: p_dram,
            empirical: e_dram,
            gate: GateKind::Absolute,
        });
        rows.push(ValidationRow {
            scenario,
            metric: "steady_ssd_hit_ratio",
            predicted: p_ssd,
            empirical: e_ssd,
            gate: GateKind::Absolute,
        });
    }
    rows.push(ValidationRow {
        scenario,
        metric: "steady_fetch_stall_vs_device_seconds",
        predicted: o.predicted_stall_secs,
        empirical: o.empirical_device_secs,
        gate: GateKind::Informational,
    });
    // The simulator's fetch+prep stall prediction is on modelled hardware;
    // the runtime's consumer-wait is wall time on the test host.  The pair
    // is reported so per-stage trends stay comparable.  For the coordinated
    // scenario — whose counter rows match the simulator exactly — it is
    // additionally gated, coarsely (see [`CONSUMER_WAIT_GATE`]), as a
    // stuck-consumer tripwire.
    rows.push(ValidationRow {
        scenario,
        metric: "steady_data_stall_vs_consumer_wait_seconds",
        predicted: o.predicted_data_stall_secs,
        empirical: o.empirical_consumer_wait_secs,
        gate: if gate_consumer_wait {
            CONSUMER_WAIT_GATE
        } else {
            GateKind::Informational
        },
    });
}

fn sim_steady(report: &SimReport) -> (f64, f64, f64, f64) {
    // Unit 0 carries the byte/hit accounting in coordinated runs.
    let steady = report.per_job()[0].steady_state();
    let fetch_stall = steady.breakdown.fetch_stall.as_secs();
    let prep_stall = steady.breakdown.prep_stall.as_secs();
    (
        steady.cache_hits as f64 / (steady.cache_hits + steady.cache_misses).max(1) as f64,
        steady.bytes_from_disk as f64,
        fetch_stall,
        fetch_stall + prep_stall,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    cfg: &ValidationConfig,
    spec: &DatasetSpec,
    server: &ServerConfig,
    loader: LoaderConfig,
    scenario: Scenario,
    mode: Mode,
    cache_policy: PolicyKind,
    tiers: Option<(u64, u64)>,
) -> ScenarioOutcome {
    // --- Predicted: the simulator. -----------------------------------------
    let job =
        JobSpec::new(gpu::ModelKind::ResNet18, spec.clone(), 1, loader).with_seed(VALIDATION_SEED);
    let sim = Experiment::on(server)
        .job(job)
        .scenario(scenario)
        .cache(match tiers {
            None => CacheSpec::DramOnly,
            Some((dram_bytes, ssd_bytes)) => CacheSpec::Tiered {
                dram_bytes,
                ssd_bytes,
            },
        })
        .epochs(cfg.epochs)
        .run();
    let (predicted_hit_ratio, predicted_disk_bytes, predicted_stall_secs, predicted_data_stall) =
        sim_steady(&sim);
    let sim_tier_ratios = tiers.map(|_| {
        let steady = sim.per_job()[0].steady_state();
        (steady.dram_hit_ratio(), steady.lower_tier_hit_ratio())
    });

    // --- Empirical: the runtime session on real bytes. ---------------------
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), STORE_SEED));
    let mut builder = Session::builder(
        store,
        SessionConfig {
            batch_size: 64,
            // One worker keeps the cache access order identical to the
            // simulator's sequential sweep, so LRU decisions line up exactly.
            num_workers: 1,
            seed: VALIDATION_SEED,
            cache_capacity_bytes: server.dram_cache_bytes,
            take_timeout: Duration::from_secs(30),
            ..SessionConfig::default()
        },
    )
    .mode(mode)
    .device_profile(server.device);
    builder = match tiers {
        None => builder.cache_policy(cache_policy),
        Some((dram_bytes, ssd_bytes)) => builder.cache_tiers(vec![
            coordl::ByteTierSpec::dram(cache_policy, dram_bytes),
            coordl::ByteTierSpec::sata_ssd(cache_policy, ssd_bytes),
        ]),
    };
    let session = builder.build().expect("valid validation session");
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        let handles: Vec<_> = (0..session.num_jobs())
            .map(|j| {
                let stream = run.stream(j);
                std::thread::spawn(move || {
                    for batch in stream {
                        let _ = batch.expect("validation epoch should complete");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("validation consumer");
        }
    }
    let report = session.report();
    let tail = report.steady_epochs();
    let hits: u64 = tail.iter().map(|e| e.cache_hits).sum();
    let misses: u64 = tail.iter().map(|e| e.cache_misses).sum();

    ScenarioOutcome {
        predicted_hit_ratio,
        empirical_hit_ratio: hits as f64 / (hits + misses).max(1) as f64,
        predicted_disk_bytes,
        empirical_disk_bytes: report.steady_storage_bytes(),
        predicted_stall_secs,
        empirical_device_secs: report.steady_device_seconds(),
        predicted_data_stall_secs: predicted_data_stall,
        empirical_consumer_wait_secs: report.steady_consumer_wait_seconds()
            / session.num_jobs() as f64,
        tier_ratios: sim_tier_ratios.map(|(p_dram, p_ssd)| {
            (
                p_dram,
                report.steady_dram_hit_ratio(),
                p_ssd,
                report.steady_lower_tier_hit_ratio(),
            )
        }),
    }
}

/// Predicted-vs-empirical comparison of the elastic-churn scenario: the
/// simulator's `Scenario::ElasticCluster` against a multi-tenant
/// `coordl::Server` replaying the *identical* deterministic churn schedule
/// (same `churn_schedule(tenants, epochs, seed)` on both sides).
///
/// The shared hierarchy is sized to hold one dataset copy per tenant and
/// every tenant's quota covers its dataset, so the quota mechanism — which
/// the simulator does not model — never binds; what is compared is the
/// churn dynamics themselves: arrival cold misses, steady-state hits and
/// departure-time reclamation.
fn run_churn_scenario(
    cfg: &ValidationConfig,
    spec: &DatasetSpec,
    server: &ServerConfig,
) -> Vec<ValidationRow> {
    let tenants = CHURN_TENANTS;
    // Exact dataset footprint: `DatasetSpec::total_bytes` is the *average*
    // (`num_items × avg_item_bytes`), but the hash-derived per-item sizes sum
    // to slightly more or less.  Quotas and the shared capacity must cover
    // the exact sum, or the never-evict tail of a tenant's dataset is refused
    // admission and re-read from storage every epoch — a steady-state miss
    // stream the simulator (sized the same way) never predicts.
    let per_tenant: u64 = (0..spec.num_items).map(|i| spec.item_size(i)).sum();
    let cap = per_tenant * tenants as u64;

    // --- Predicted: the simulator. -----------------------------------------
    let job = JobSpec::new(
        gpu::ModelKind::ResNet18,
        spec.clone(),
        1,
        LoaderConfig::coordl(PrepBackend::DaliCpu),
    )
    .with_seed(VALIDATION_SEED);
    let sim = Experiment::on(&server.with_cache_bytes(cap))
        .job(job)
        .scenario(Scenario::ElasticCluster {
            tenants,
            seed: CHURN_SEED,
        })
        .epochs(cfg.epochs)
        .run();
    let mut p_hits = 0u64;
    let mut p_misses = 0u64;
    let mut p_disk = 0u64;
    let mut p_samples = vec![0u64; tenants];
    for (j, unit) in sim.per_job().iter().enumerate() {
        for e in &unit.epochs {
            p_samples[j] += e.samples;
            if e.epoch >= 1 {
                p_hits += e.cache_hits;
                p_misses += e.cache_misses;
                p_disk += e.bytes_from_disk;
            }
        }
    }

    // --- Empirical: the multi-tenant server on real bytes. -----------------
    let schedule = churn_schedule(tenants, cfg.epochs, CHURN_SEED);
    // One lock shard: sharding splits the MinIO capacity per shard, and with
    // the cache sized exactly to the active datasets that imbalance causes
    // admission refusals the simulator's single shared cache never predicts.
    // The unsharded server is the bit-exact configuration the model maps to;
    // shard-count behaviour is gated separately by the multi-tenant preset.
    let rt = coordl::Server::new(coordl::ServerConfig::minio(cap, 1))
        .expect("valid churn server config");
    let mut handles: Vec<Option<TenantHandle>> = (0..tenants).map(|_| None).collect();
    let mut e_hits = 0u64;
    let mut e_misses = 0u64;
    let mut e_disk = 0u64;
    let mut e_samples = vec![0u64; tenants];
    // Fold a departing (or run-surviving) tenant's per-epoch trajectory
    // into the aggregates, mapping its local epochs to server epochs.
    let mut collect = |j: usize, handle: &TenantHandle| {
        for e in &handle.report().epochs {
            e_samples[j] += e.samples_delivered;
            if schedule[j].arrival + e.epoch >= 1 {
                e_hits += e.cache_hits;
                e_misses += e.cache_misses;
                e_disk += e.bytes_from_storage;
            }
        }
    };
    for epoch in 0..cfg.epochs {
        for j in 0..tenants {
            if schedule[j].departure == epoch {
                if let Some(handle) = handles[j].take() {
                    collect(j, &handle);
                    handle.depart();
                }
            }
            if schedule[j].arrival == epoch {
                let store: Arc<dyn DataSource> =
                    Arc::new(SyntheticItemStore::new(spec.clone(), STORE_SEED + j as u64));
                let handle = rt
                    .submit(TenantSpec {
                        name: format!("tenant-{j}"),
                        dataset: store,
                        quota_bytes: per_tenant,
                        session: SessionConfig {
                            batch_size: 64,
                            num_workers: 1,
                            seed: VALIDATION_SEED + j as u64,
                            ..SessionConfig::default()
                        },
                        profile: None,
                    })
                    .expect("valid churn tenant");
                handles[j] = Some(handle);
            }
        }
        for (j, slot) in handles.iter().enumerate() {
            let Some(handle) = slot else { continue };
            let run = handle.session().epoch(epoch - schedule[j].arrival);
            for batch in run.stream(0) {
                let _ = batch.expect("churn epoch should complete");
            }
        }
    }
    for (j, slot) in handles.iter().enumerate() {
        if let Some(handle) = slot {
            collect(j, handle);
        }
    }
    drop(handles);

    let mut rows = vec![
        ValidationRow {
            scenario: "elastic-churn",
            metric: "aggregate_steady_hit_ratio",
            predicted: p_hits as f64 / (p_hits + p_misses).max(1) as f64,
            empirical: e_hits as f64 / (e_hits + e_misses).max(1) as f64,
            gate: GateKind::Absolute,
        },
        ValidationRow {
            scenario: "elastic-churn",
            metric: "steady_disk_bytes",
            predicted: p_disk as f64,
            empirical: e_disk as f64,
            gate: GateKind::Relative,
        },
    ];
    for (j, metric) in CHURN_SAMPLE_METRICS.iter().enumerate() {
        rows.push(ValidationRow {
            scenario: "elastic-churn",
            metric,
            predicted: p_samples[j] as f64,
            empirical: e_samples[j] as f64,
            gate: GateKind::Relative,
        });
    }
    rows
}

/// Readahead window, in pages, of the fs-real scenario's backend.
const FS_REAL_READAHEAD: u32 = 4;

/// Real-bytes validation: the same single-job MinIO workload as
/// `single-minio`, but the dataset is materialized as a page-aligned packed
/// file on a deterministic in-memory VFS and every fetch is a real
/// positional read through [`FsBackend`].  Three timing columns line up:
/// the simulator's *predicted* fetch stall, the backend's *modelled* device
/// seconds (the same profile arithmetic, charged per real read), and the
/// *measured* wall-clock seconds those reads actually took.  The counter
/// rows are gated like `single-minio`; the measured row is a one-sided
/// wall-clock tripwire — real reads on an in-memory VFS must stay far below
/// the modelled SSD, so only a pathological I/O path (or a stuck reader)
/// trips it.
fn run_fs_real_scenario(
    cfg: &ValidationConfig,
    spec: &DatasetSpec,
    server: &ServerConfig,
) -> Vec<ValidationRow> {
    // --- Predicted: the simulator (identical to single-minio). -------------
    let job = JobSpec::new(
        gpu::ModelKind::ResNet18,
        spec.clone(),
        1,
        LoaderConfig::coordl(PrepBackend::DaliCpu),
    )
    .with_seed(VALIDATION_SEED);
    let sim = Experiment::on(server)
        .job(job)
        .scenario(Scenario::SingleServer)
        .cache(CacheSpec::DramOnly)
        .epochs(cfg.epochs)
        .run();
    let (p_hit, p_disk, p_stall, _) = sim_steady(&sim);

    // --- Empirical: the runtime over real bytes on a VFS. ------------------
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), STORE_SEED));
    let fs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let backend = Arc::new(
        FsBackend::new(Arc::clone(&fs), "data", store.as_ref(), FS_REAL_READAHEAD)
            .expect("fs-real materialization must succeed")
            .with_profile(server.device, AccessPattern::Random),
    );
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: 64,
            num_workers: 1,
            seed: VALIDATION_SEED,
            cache_capacity_bytes: server.dram_cache_bytes,
            take_timeout: Duration::from_secs(30),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .cache_policy(PolicyKind::MinIo)
    .fetch_backend(backend as Arc<dyn FetchBackend>)
    .build()
    .expect("valid fs-real session");
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let _ = batch.expect("fs-real epoch should complete");
        }
    }
    let report = session.report();
    let tail = report.steady_epochs();
    let hits: u64 = tail.iter().map(|e| e.cache_hits).sum();
    let misses: u64 = tail.iter().map(|e| e.cache_misses).sum();

    vec![
        ValidationRow {
            scenario: "fs-real",
            metric: "steady_hit_ratio",
            predicted: p_hit,
            empirical: hits as f64 / (hits + misses).max(1) as f64,
            gate: GateKind::Absolute,
        },
        ValidationRow {
            scenario: "fs-real",
            metric: "steady_disk_bytes",
            predicted: p_disk,
            empirical: report.steady_storage_bytes(),
            gate: GateKind::Relative,
        },
        ValidationRow {
            scenario: "fs-real",
            metric: "steady_fetch_stall_vs_device_seconds",
            predicted: p_stall,
            empirical: report.steady_device_seconds(),
            gate: GateKind::Informational,
        },
        ValidationRow {
            scenario: "fs-real",
            metric: "modelled_vs_measured_device_seconds",
            predicted: report.device_seconds,
            empirical: report.measured_device_seconds,
            gate: CONSUMER_WAIT_GATE,
        },
    ]
}

/// Failure-injection validation: the simulator's
/// `Scenario::PartitionedChaos` against a runtime partitioned [`Session`]
/// replaying the *identical* membership-fault schedule.  Both sides derive
/// it from the same `fault_schedule(servers, epochs, faults, seed)` call:
/// the simulator applies each event at its epoch boundary, and
/// [`coordl::FaultPlan::seeded`] scales the same boundaries by the dataset
/// length so the runtime's fetch-step clock fires each event before the
/// same epoch.  Node streams are consumed sequentially in node order — the
/// order the simulator sweeps its shards — so the shared directory and the
/// per-node MinIO caches evolve identically on both sides, kills, leaves
/// and rejoins included.
fn run_partitioned_chaos_scenario(
    cfg: &ValidationConfig,
    spec: &DatasetSpec,
    server: &ServerConfig,
) -> Vec<ValidationRow> {
    let servers = CHAOS_SERVERS;
    let schedule = pipeline::fault_schedule(servers, cfg.epochs, CHAOS_FAULTS, CHAOS_FAULT_SEED);
    assert!(
        !schedule.is_empty(),
        "the chaos validation seed must schedule at least one fault"
    );

    // --- Predicted: the simulator under the fault schedule. ----------------
    let job = JobSpec::new(
        gpu::ModelKind::ResNet18,
        spec.clone(),
        1,
        LoaderConfig::coordl(PrepBackend::DaliCpu),
    )
    .with_seed(VALIDATION_SEED);
    let sim = Experiment::on(server)
        .job(job)
        .scenario(Scenario::PartitionedChaos {
            servers,
            faults: CHAOS_FAULTS,
            seed: CHAOS_FAULT_SEED,
        })
        .epochs(cfg.epochs)
        .run();
    let mut p_hits = 0u64;
    let mut p_misses = 0u64;
    let mut p_disk = 0u64;
    let mut p_remote = 0u64;
    let mut p_samples = 0u64;
    for unit in sim.per_server() {
        for e in &unit.epochs {
            p_samples += e.samples;
            if e.epoch >= 1 {
                p_hits += e.cache_hits;
                p_misses += e.cache_misses;
                p_disk += e.bytes_from_disk;
                p_remote += e.bytes_from_remote;
            }
        }
    }

    // --- Empirical: the partitioned runtime under the same schedule. -------
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), STORE_SEED));
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: 64,
            num_workers: 1,
            seed: VALIDATION_SEED,
            cache_capacity_bytes: server.dram_cache_bytes,
            take_timeout: Duration::from_secs(30),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Partitioned { nodes: servers })
    .cache_policy(PolicyKind::MinIo)
    .device_profile(server.device)
    .fault_plan(coordl::FaultPlan::seeded(
        servers,
        cfg.epochs,
        CHAOS_FAULTS,
        CHAOS_FAULT_SEED,
        spec.num_items,
    ))
    .build()
    .expect("valid chaos validation session");
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for node in 0..servers {
            for batch in run.stream(node) {
                let _ = batch.expect("chaos epoch should complete");
            }
        }
    }
    let report = session.report();
    let mut e_hits = 0u64;
    let mut e_misses = 0u64;
    let mut e_disk = 0u64;
    let mut e_remote = 0u64;
    let mut e_samples = 0u64;
    for e in &report.epochs {
        e_samples += e.samples_delivered;
        if e.epoch >= 1 {
            e_hits += e.cache_hits;
            e_misses += e.cache_misses;
            e_disk += e.bytes_from_storage;
            e_remote += e.bytes_from_remote;
        }
    }

    vec![
        ValidationRow {
            scenario: "partitioned-chaos",
            metric: "aggregate_steady_hit_ratio",
            predicted: p_hits as f64 / (p_hits + p_misses).max(1) as f64,
            empirical: e_hits as f64 / (e_hits + e_misses).max(1) as f64,
            gate: GateKind::Absolute,
        },
        ValidationRow {
            scenario: "partitioned-chaos",
            metric: "steady_disk_bytes",
            predicted: p_disk as f64,
            empirical: e_disk as f64,
            gate: GateKind::Relative,
        },
        ValidationRow {
            scenario: "partitioned-chaos",
            metric: "steady_remote_bytes",
            predicted: p_remote as f64,
            empirical: e_remote as f64,
            gate: GateKind::Relative,
        },
        // Exactly-once accounting: a fault must never lose or duplicate a
        // sample, so the run totals agree to the sample on both sides.
        ValidationRow {
            scenario: "partitioned-chaos",
            metric: "samples_delivered",
            predicted: p_samples as f64,
            empirical: e_samples as f64,
            gate: GateKind::Relative,
        },
    ]
}

/// Fetch threads driven by the parallel-fetch validation scenario.
const PARALLEL_FETCH_THREADS: usize = 4;

/// Parallel-fetch validation: the single-minio workload with a fully
/// resident cache, fetched by a [`PARALLEL_FETCH_THREADS`]-thread pool.
/// Full residency makes the steady-state prediction *exact*: after the
/// cold warm-up epoch every access hits, so the simulator and the runtime
/// must both report a steady hit ratio of exactly 1.0 — any delta at all
/// means the fetch pool changed caching behaviour, not just scheduling.
/// The second row compares the pool's summed condvar-wait seconds (wall
/// time on the test host) against the modelled device seconds those same
/// reads were charged; the pair is informational, like every other
/// wall-vs-model column.
fn run_parallel_fetch_scenario(
    cfg: &ValidationConfig,
    spec: &DatasetSpec,
    server: &ServerConfig,
) -> Vec<ValidationRow> {
    // Full residency with headroom: the sharded tier splits its capacity
    // across fetch shards, and FNV routing is only statistically uniform,
    // so 4x the *exact* dataset footprint keeps even the most loaded
    // shard resident (the same exact-sum sizing the churn scenario uses).
    let exact_bytes: u64 = (0..spec.num_items).map(|i| spec.item_size(i)).sum();
    let cap = exact_bytes * 4;
    let full = server.with_cache_bytes(cap);

    // --- Predicted: the simulator with a fully resident cache. -------------
    let job = JobSpec::new(
        gpu::ModelKind::ResNet18,
        spec.clone(),
        1,
        LoaderConfig::coordl(PrepBackend::DaliCpu),
    )
    .with_seed(VALIDATION_SEED);
    let sim = Experiment::on(&full)
        .job(job)
        .scenario(Scenario::SingleServer)
        .cache(CacheSpec::DramOnly)
        .epochs(cfg.epochs)
        .run();
    let (p_hit, _, _, _) = sim_steady(&sim);

    // --- Empirical: the runtime with a 4-thread fetch pool. ----------------
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), STORE_SEED));
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: 64,
            num_workers: 1,
            seed: VALIDATION_SEED,
            cache_capacity_bytes: cap,
            take_timeout: Duration::from_secs(30),
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .cache_policy(PolicyKind::MinIo)
    .device_profile(server.device)
    .fetch_threads(PARALLEL_FETCH_THREADS)
    .build()
    .expect("valid parallel-fetch session");
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let _ = batch.expect("parallel-fetch epoch should complete");
        }
    }
    let report = session.report();
    let tail = report.steady_epochs();
    let hits: u64 = tail.iter().map(|e| e.cache_hits).sum();
    let misses: u64 = tail.iter().map(|e| e.cache_misses).sum();

    vec![
        ValidationRow {
            scenario: "parallel-fetch",
            metric: "steady_hit_ratio",
            predicted: p_hit,
            empirical: hits as f64 / (hits + misses).max(1) as f64,
            gate: GateKind::Absolute,
        },
        ValidationRow {
            scenario: "parallel-fetch",
            metric: "fetch_thread_stall_vs_modelled_device_seconds",
            predicted: report.device_seconds,
            empirical: report.fetch_thread_stall_seconds.iter().sum(),
            gate: GateKind::Informational,
        },
    ]
}

/// Run the full predicted-vs-empirical comparison.
pub fn run_validation(cfg: &ValidationConfig) -> ValidationReport {
    assert!(cfg.epochs >= 2, "need a warm-up plus one steady epoch");
    let spec = DatasetSpec::imagenet_1k().scaled(cfg.scale);
    let server =
        ServerConfig::config_ssd_v100().with_cache_fraction(spec.total_bytes(), cfg.cache_fraction);
    let mut rows = Vec::new();

    // CoorDL's MinIO cache, one job.
    push_rows(
        &mut rows,
        "single-minio",
        run_scenario(
            cfg,
            &spec,
            &server,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
            Scenario::SingleServer,
            Mode::Single,
            PolicyKind::MinIo,
            None,
        ),
        false,
    );

    // The page-cache baseline: the *same* LRU policy code runs inside the
    // simulator's StorageNode and inside the runtime's PolicyByteCache.
    push_rows(
        &mut rows,
        "single-lru",
        run_scenario(
            cfg,
            &spec,
            &server,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
            Scenario::SingleServer,
            Mode::Single,
            PolicyKind::Lru,
            None,
        ),
        false,
    );

    // The tiered hierarchy: a MinIO DRAM tier spilling into a MinIO SSD
    // tier of the same size — both sides run the identical TierChain code,
    // so the per-tier hit ratios are predicted exactly (§4.2 / Table 2).
    push_rows(
        &mut rows,
        "single-tiered",
        run_scenario(
            cfg,
            &spec,
            &server,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
            Scenario::SingleServer,
            Mode::Single,
            PolicyKind::MinIo,
            Some((server.dram_cache_bytes, server.dram_cache_bytes)),
        ),
        false,
    );

    // Coordinated prep: one shared sweep for the whole HP-search ensemble.
    // Its counter rows match the simulator exactly, so its consumer-wait
    // row graduates from informational to (coarsely) gated.
    push_rows(
        &mut rows,
        "hp-coordinated",
        run_scenario(
            cfg,
            &spec,
            &server,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
            Scenario::HpSearch { jobs: cfg.jobs },
            Mode::Coordinated { jobs: cfg.jobs },
            PolicyKind::MinIo,
            None,
        ),
        true,
    );

    // Elastic churn: tenants arriving and departing over one shared
    // multi-tenant server, against Scenario::ElasticCluster.
    rows.extend(run_churn_scenario(cfg, &spec, &server));

    // Real bytes: the single-minio workload re-run through FsBackend on a
    // VFS, adding the predicted / modelled / measured timing columns.
    rows.extend(run_fs_real_scenario(cfg, &spec, &server));

    // Partitioned caching under membership faults: the chaos simulator
    // against a runtime cluster replaying the identical fault schedule.
    rows.extend(run_partitioned_chaos_scenario(cfg, &spec, &server));

    // Sharded parallel fetch: a fully resident cache fetched by a
    // 4-thread pool, where the steady hit-ratio prediction is exact.
    rows.extend(run_parallel_fetch_scenario(cfg, &spec, &server));

    ValidationReport {
        config: cfg.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn small_config() -> ValidationConfig {
        ValidationConfig {
            scale: 16_000, // ~80 items: fast enough for debug test runs
            cache_fraction: 0.35,
            jobs: 2,
            epochs: 2,
            tolerance: 0.05,
        }
    }

    #[test]
    fn predicted_and_empirical_agree_within_tolerance() {
        let report = run_validation(&small_config());
        assert_eq!(
            report.rows.len(),
            33,
            "4 rows for each flat scenario, 6 for the tiered one, 5 for \
             churn, 4 for fs-real, 4 for partitioned-chaos, 2 for \
             parallel-fetch"
        );
        let chaos: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.scenario == "partitioned-chaos")
            .collect();
        assert_eq!(chaos.len(), 4);
        let samples = chaos
            .iter()
            .find(|r| r.metric == "samples_delivered")
            .expect("chaos reports sample accounting");
        assert_eq!(
            samples.predicted, samples.empirical,
            "exactly-once delivery under faults"
        );
        let fs_real: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.scenario == "fs-real")
            .collect();
        assert_eq!(fs_real.len(), 4);
        let measured = fs_real
            .iter()
            .find(|r| r.metric == "modelled_vs_measured_device_seconds")
            .expect("fs-real reports the measured column");
        assert!(measured.predicted > 0.0, "modelled seconds accumulate");
        assert!(measured.empirical > 0.0, "measured seconds accumulate");
        let parallel_fetch: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.scenario == "parallel-fetch")
            .collect();
        assert_eq!(parallel_fetch.len(), 2);
        let pf_hit = parallel_fetch
            .iter()
            .find(|r| r.metric == "steady_hit_ratio")
            .expect("parallel-fetch reports the steady hit ratio");
        assert_eq!(
            pf_hit.predicted, 1.0,
            "full residency predicts a perfect steady hit ratio"
        );
        assert_eq!(
            pf_hit.predicted, pf_hit.empirical,
            "the parallel-fetch hit-ratio prediction is exact (delta 0.0)"
        );
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|r| {
                format!(
                    "{}/{}: predicted {:.4} vs empirical {:.4}",
                    r.scenario, r.metric, r.predicted, r.empirical
                )
            })
            .collect();
        assert!(report.passed(), "gated deltas exceeded: {failures:?}");
        // The MinIO hit ratio lands near the cache fraction by construction.
        let minio = &report.rows[0];
        assert_eq!(minio.metric, "steady_hit_ratio");
        assert!(
            (minio.empirical - 0.35).abs() < 0.10,
            "MinIO steady hit ratio tracks the cache fraction, got {}",
            minio.empirical
        );
    }

    #[test]
    fn json_reports_every_row_and_round_trips() {
        let report = ValidationReport {
            config: small_config(),
            rows: vec![
                ValidationRow {
                    scenario: "single-minio",
                    metric: "steady_hit_ratio",
                    predicted: 0.35,
                    empirical: 0.34,
                    gate: GateKind::Absolute,
                },
                ValidationRow {
                    scenario: "single-minio",
                    metric: "steady_fetch_stall_vs_device_seconds",
                    predicted: 1.0,
                    empirical: 1.4,
                    gate: GateKind::Informational,
                },
            ],
        };
        let doc = parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("rows").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(doc.get("passed"), Some(&Value::Bool(true)));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("predicted").and_then(Value::as_f64), Some(0.35));
        assert_eq!(rows[0].get("gated"), Some(&Value::Bool(true)));
        assert_eq!(rows[1].get("gated"), Some(&Value::Bool(false)));
        assert_eq!(rows[1].get("pass"), Some(&Value::Bool(true)));
    }

    #[test]
    fn gates_behave_per_kind() {
        let abs = ValidationRow {
            scenario: "s",
            metric: "m",
            predicted: 0.50,
            empirical: 0.53,
            gate: GateKind::Absolute,
        };
        assert!(abs.passes(0.05) && !abs.passes(0.01));
        let rel = ValidationRow {
            predicted: 100.0,
            empirical: 109.0,
            gate: GateKind::Relative,
            ..abs.clone()
        };
        assert!(rel.passes(0.10) && !rel.passes(0.05));
        let zero = ValidationRow {
            predicted: 0.0,
            empirical: 0.0,
            gate: GateKind::Relative,
            ..abs.clone()
        };
        assert!(zero.passes(0.01), "two zeros agree");
        let info = ValidationRow {
            predicted: 1.0,
            empirical: 100.0,
            gate: GateKind::Informational,
            ..abs.clone()
        };
        assert!(info.passes(0.0), "informational rows never gate");
        // The wall-clock tripwire: one-sided, affine headroom.
        let wall = |predicted: f64, empirical: f64| ValidationRow {
            predicted,
            empirical,
            gate: CONSUMER_WAIT_GATE,
            ..abs.clone()
        };
        assert!(wall(0.1, 0.5).passes(0.05), "within 10x + 10s");
        assert!(wall(0.1, 10.9).passes(0.05), "slack covers tiny runs");
        assert!(!wall(0.1, 11.1).passes(0.05), "a stuck consumer trips it");
        assert!(wall(10.0, 0.01).passes(0.05), "one-sided: faster is fine");
    }
}
