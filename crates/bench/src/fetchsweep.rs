//! The fetch-thread sweep over the *runtime* (`coordl::Session`): the
//! fetch-bound preset behind `dstool sweep fetch-sweep` and the parallel
//! fetch half of `dstool smoke`.
//!
//! Where [`parallel`](crate::parallel) scales the *prep* pool and pins the
//! executor's worker-count determinism contract, this preset scales the
//! *fetch* stage — the serial cache-transaction sweep that becomes the
//! bottleneck once prep is cheap (small decode multipliers, fast
//! augmentations).  Every point runs the identical fetch-heavy workload
//! through `Session::builder(..).fetch_threads(f)` with the cache shard
//! count **pinned** ([`FetchSweepConfig::fetch_shards`]) so that the
//! per-shard access subsequences — and therefore every admission/eviction
//! decision — are the same for every `f`.  Two things come out of a run:
//!
//! * **a correctness gate** — the delivered stream digest and every
//!   deterministic `LoaderStats` counter must be bit-identical across all
//!   fetch-thread counts (checked against `ci/bench_baseline.json`, since
//!   the digest is machine-independent);
//! * **a scaling measurement** — wall-clock samples/sec per thread count.
//!   Speedups are machine-dependent and only gated on hosts with enough
//!   cores (`dstool` skips the gate below 4).

use crate::parallel::Fnv;
use coordl::{Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use pipeline::json::{write_f64, write_string};
use prep::{ExecutablePipeline, PrepPipeline};
use std::sync::Arc;
use std::time::Instant;

/// CLI name of the runtime preset (`dstool sweep fetch-sweep`).
pub const FETCH_SWEEP_NAME: &str = "fetch-sweep";

/// Configuration of one fetch sweep.
#[derive(Debug, Clone)]
pub struct FetchSweepConfig {
    /// Fetch-thread counts to measure (1 must be included for speedup
    /// baselines).
    pub fetch_thread_counts: Vec<usize>,
    /// Cache shard count pinned across **every** point, including the
    /// serial one.  Digest and counter equality across `fetch_threads` only
    /// holds for equal shard counts (shard count determines the per-shard
    /// capacity split and thus eviction behaviour), so the sweep never
    /// relies on the session's automatic shard resolution.
    pub fetch_shards: usize,
    /// Prep workers used by every point (kept small: the preset is about
    /// the fetch stage, prep must not be the bottleneck).
    pub workers: usize,
    /// Prefetch depth used by every point.
    pub prefetch_depth: usize,
    /// Items in the synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes (large: fetch-stage work per item is
    /// proportional to raw bytes moved).
    pub avg_item_bytes: u64,
    /// Decode expansion factor (1: prep barely touches the data, keeping
    /// the workload fetch-bound).
    pub decode_multiplier: usize,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Epochs per point (epoch 0 warms the cache; later epochs mix hits
    /// with capacity misses).
    pub epochs: u64,
    /// Cache capacity as a fraction of the dataset, so steady-state epochs
    /// keep a deterministic mix of cache transactions and storage reads.
    pub cache_fraction: f64,
    /// Shuffle + augmentation seed shared by every point.
    pub seed: u64,
}

impl Default for FetchSweepConfig {
    fn default() -> Self {
        FetchSweepConfig {
            fetch_thread_counts: vec![1, 2, 4],
            fetch_shards: 8,
            workers: 2,
            prefetch_depth: 4,
            items: 1024,
            avg_item_bytes: 32 * 1024,
            decode_multiplier: 1,
            batch_size: 16,
            epochs: 3,
            cache_fraction: 0.5,
            seed: 0xFE7C,
        }
    }
}

impl FetchSweepConfig {
    /// The default preset with its dataset shrunk by `extra_scale` — the
    /// single scaling rule shared by `dstool sweep fetch-sweep --scale` and
    /// `dstool smoke` (pass 1 for full bench fidelity).  The floor keeps
    /// each point moving megabytes through the fetch stage so thread
    /// startup does not dominate the measurement.
    pub fn scaled(extra_scale: u64) -> Self {
        let base = FetchSweepConfig::default();
        FetchSweepConfig {
            items: (base.items / extra_scale.max(1)).max(128),
            ..base
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct FetchSweepPoint {
    /// Fetch threads in the executor's fetch stage.
    pub fetch_threads: usize,
    /// Wall-clock seconds for all epochs of this point.
    pub wall_seconds: f64,
    /// Delivered samples per wall-clock second.
    pub samples_per_sec: f64,
    /// FNV-1a hash of the delivered stream (epoch, index, items,
    /// augmentation seeds, prepared bytes) — machine-independent.
    pub stream_digest: u64,
    /// The five deterministic `LoaderStats` counters: bytes from storage /
    /// cache / remote, samples prepared / delivered.
    pub counters: [u64; 5],
    /// Cache-tier hits (deterministic for a pinned shard count).
    pub cache_hits: u64,
    /// Cache-tier misses (deterministic for a pinned shard count).
    pub cache_misses: u64,
    /// Wall seconds the fetch stage spent reading tiers and backends,
    /// summed across the pool.
    pub fetch_busy_seconds: f64,
    /// Wall seconds the fetch stage spent blocked on backpressure or pool
    /// ordering, summed across the pool.
    pub fetch_stall_seconds: f64,
}

/// The result of one fetch sweep.
#[derive(Debug, Clone)]
pub struct FetchSweepReport {
    /// The configuration that produced it.
    pub config: FetchSweepConfig,
    /// One point per fetch-thread count, in `fetch_thread_counts` order.
    pub points: Vec<FetchSweepPoint>,
}

impl FetchSweepReport {
    /// The digest shared by every point, if the sweep is bit-identical.
    pub fn digest(&self) -> Option<u64> {
        self.points.first().map(|p| p.stream_digest)
    }

    /// Check the fetch pool's determinism contract: every point must have
    /// delivered the identical stream and identical counters.
    pub fn bit_identical(&self) -> Result<(), String> {
        let Some(first) = self.points.first() else {
            return Err("fetch sweep produced no points".to_string());
        };
        for p in &self.points[1..] {
            if p.stream_digest != first.stream_digest {
                return Err(format!(
                    "fetch_threads={} delivered a different stream than \
                     fetch_threads={} (digest {:016x} vs {:016x})",
                    p.fetch_threads, first.fetch_threads, p.stream_digest, first.stream_digest
                ));
            }
            if p.counters != first.counters
                || p.cache_hits != first.cache_hits
                || p.cache_misses != first.cache_misses
            {
                return Err(format!(
                    "fetch_threads={} produced different LoaderStats than \
                     fetch_threads={} ({:?}/{}/{} vs {:?}/{}/{})",
                    p.fetch_threads,
                    first.fetch_threads,
                    p.counters,
                    p.cache_hits,
                    p.cache_misses,
                    first.counters,
                    first.cache_hits,
                    first.cache_misses
                ));
            }
        }
        Ok(())
    }

    /// Wall-clock speedup of `fetch_threads` relative to the serial point.
    pub fn speedup(&self, fetch_threads: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.fetch_threads == 1)?;
        let point = self
            .points
            .iter()
            .find(|p| p.fetch_threads == fetch_threads)?;
        Some(base.wall_seconds / point.wall_seconds.max(1e-9))
    }

    /// Serialise through the shared `pipeline::json` emitter.  The digest is
    /// written as a hex *string* (u64 does not survive a float round-trip).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"preset\":");
        write_string(&mut out, FETCH_SWEEP_NAME);
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"fetch_shards\":");
        out.push_str(&self.config.fetch_shards.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"stream_digest\":");
        let digest = self.digest().unwrap_or(0);
        write_string(&mut out, &format!("{digest:016x}"));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"fetch_threads\":");
            out.push_str(&p.fetch_threads.to_string());
            out.push_str(",\"wall_seconds\":");
            write_f64(&mut out, p.wall_seconds);
            out.push_str(",\"samples_per_sec\":");
            write_f64(&mut out, p.samples_per_sec);
            out.push_str(",\"speedup_vs_serial\":");
            write_f64(&mut out, self.speedup(p.fetch_threads).unwrap_or(1.0));
            out.push_str(",\"fetch_busy_seconds\":");
            write_f64(&mut out, p.fetch_busy_seconds);
            out.push_str(",\"fetch_stall_seconds\":");
            write_f64(&mut out, p.fetch_stall_seconds);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Run the sweep: one session per fetch-thread count, identical in
/// everything — dataset, seed, cache capacity, *shard count* — but the size
/// of the fetch pool.
pub fn run_fetch_sweep(cfg: &FetchSweepConfig) -> FetchSweepReport {
    let points = cfg
        .fetch_thread_counts
        .iter()
        .map(|&f| run_point(cfg, f))
        .collect();
    FetchSweepReport {
        config: cfg.clone(),
        points,
    }
}

fn run_point(cfg: &FetchSweepConfig, fetch_threads: usize) -> FetchSweepPoint {
    let spec = DatasetSpec::new(
        "fetch-sweep",
        cfg.items,
        cfg.avg_item_bytes,
        0.2,
        cfg.decode_multiplier as f64,
    );
    let total_bytes = spec.total_bytes();
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 13));
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            cache_capacity_bytes: (total_bytes as f64 * cfg.cache_fraction) as u64,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .workers(cfg.workers)
    .prefetch_depth(cfg.prefetch_depth)
    .fetch_threads(fetch_threads)
    .fetch_shards(cfg.fetch_shards)
    .pipeline(ExecutablePipeline::new(
        PrepPipeline::image_classification(),
        cfg.decode_multiplier,
        cfg.seed,
    ))
    .build()
    .expect("valid fetch-sweep session");

    let start = Instant::now();
    let mut digest = Fnv::new();
    // Digesting the full prepared payload is the bit-equality proof, but it
    // runs on the consumer thread; keep its cost out of the throughput
    // measurement so the numbers describe the fetch stage, not the checker.
    let mut digest_seconds = 0.0;
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let mb = batch.expect("fetch-sweep epochs do not fail");
            let checking = Instant::now();
            digest.u64(mb.epoch);
            digest.u64(mb.index as u64);
            for s in &mb.samples {
                digest.u64(s.item);
                digest.u64(s.augmentation_seed);
                digest.bytes(&s.data);
            }
            digest_seconds += checking.elapsed().as_secs_f64();
        }
    }
    let wall_seconds = (start.elapsed().as_secs_f64() - digest_seconds).max(1e-9);

    let stats = session.stats();
    let tier = session.cache_tier().expect("single-mode tier");
    let report = session.report();
    let delivered = stats.samples_delivered();
    FetchSweepPoint {
        fetch_threads,
        wall_seconds,
        samples_per_sec: delivered as f64 / wall_seconds.max(1e-9),
        stream_digest: digest.finish(),
        counters: [
            stats.bytes_from_storage(),
            stats.bytes_from_cache(),
            stats.bytes_from_remote(),
            stats.samples_prepared(),
            delivered,
        ],
        cache_hits: tier.hits(),
        cache_misses: tier.misses(),
        fetch_busy_seconds: report.fetch_busy_seconds,
        fetch_stall_seconds: report.fetch_stall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> FetchSweepConfig {
        FetchSweepConfig {
            fetch_thread_counts: vec![1, 2, 4],
            items: 96,
            avg_item_bytes: 1024,
            epochs: 2,
            ..FetchSweepConfig::default()
        }
    }

    #[test]
    fn sweep_points_are_bit_identical_across_fetch_thread_counts() {
        let report = run_fetch_sweep(&tiny());
        assert_eq!(report.points.len(), 3);
        report
            .bit_identical()
            .expect("fetch pool determinism contract");
        // Every epoch delivers the full dataset exactly once.
        assert_eq!(report.points[0].counters[4], 2 * 96);
        // The half-capacity cache forces storage reads in *every* epoch.
        assert!(report.points[0].cache_misses > 96);
        assert!(report.speedup(4).is_some());
    }

    #[test]
    fn digest_is_sensitive_to_the_seed() {
        let a = run_fetch_sweep(&FetchSweepConfig {
            fetch_thread_counts: vec![1],
            ..tiny()
        });
        let b = run_fetch_sweep(&FetchSweepConfig {
            fetch_thread_counts: vec![1],
            seed: 0xD00D,
            ..tiny()
        });
        assert_ne!(
            a.digest(),
            b.digest(),
            "different shuffles, different streams"
        );
    }

    #[test]
    fn serial_point_with_pinned_shards_matches_the_pool() {
        // The property the baseline digest relies on: with the shard count
        // pinned, even the f=1 point runs the sharded tier, so all three
        // points (not just the pooled ones) hash to one digest.
        let report = run_fetch_sweep(&FetchSweepConfig {
            fetch_thread_counts: vec![4, 1],
            ..tiny()
        });
        assert_eq!(
            report.points[0].stream_digest,
            report.points[1].stream_digest
        );
        assert_eq!(report.points[0].counters, report.points[1].counters);
    }

    #[test]
    fn json_round_trips_and_encodes_the_digest_as_a_string() {
        let report = run_fetch_sweep(&FetchSweepConfig {
            fetch_thread_counts: vec![1, 2],
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest().unwrap()));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[1].get("fetch_threads").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(doc.get("fetch_shards").and_then(Value::as_f64), Some(8.0));
    }

    #[test]
    fn scaled_config_shrinks_the_item_count_only() {
        let scaled = FetchSweepConfig::scaled(8);
        assert!(scaled.items < FetchSweepConfig::default().items);
        assert!(scaled.items >= 128, "smoke points stay fetch-dominated");
        assert_eq!(
            scaled.fetch_shards,
            FetchSweepConfig::default().fetch_shards,
            "shard pinning is preserved"
        );
        assert_eq!(FetchSweepConfig::scaled(1).items, 1024, "full fidelity");
    }
}
