//! The multi-tenant server preset (`dstool sweep multi-tenant`, part of
//! `dstool smoke`): a churning ensemble of tenants over one shared
//! `coordl::Server`, replaying the same deterministic arrival/departure
//! schedule the simulator's `Scenario::ElasticCluster` uses.
//!
//! Tenants run their epochs serially in tenant order (round-robin per
//! server epoch), so every cache transaction is sequential and the run is
//! exactly reproducible.  Three gates come out of a run:
//!
//! * **a correctness gate** — the concatenated per-tenant streams are a
//!   function of the workload alone: every shard count at every worker
//!   count must deliver one identical stream (hashed into `stream_digest`
//!   and checked against `ci/bench_baseline.json`);
//! * **a model gate** — the aggregate hit ratio of the shared hierarchy is
//!   exact counter arithmetic, compared exactly against the baseline per
//!   shard count (shard capacity splitting may shift it slightly between
//!   shard counts, never between worker counts);
//! * **a quota gate** — no tenant's DRAM-resident bytes ever exceed the
//!   highest effective (fair-share) quota it was granted (never-evict
//!   tiers keep bytes admitted before a share shrank, but the server must
//!   never *admit* past the quota in force), and the DRAM tier never
//!   exceeds its capacity.

use coordl::{Server, ServerConfig, SessionConfig, TenantHandle, TenantSpec};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use pipeline::churn_schedule;
use pipeline::json::{write_f64, write_string};
use std::sync::Arc;

/// CLI name of the preset (`dstool sweep multi-tenant`).
pub const MULTI_TENANT_NAME: &str = "multi-tenant";

/// Configuration of one multi-tenant churn run.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Number of tenants in the churn schedule.
    pub tenants: usize,
    /// Shard counts of the shared hierarchy the run is repeated at
    /// (1 = single lock; all must deliver the same stream).
    pub shard_counts: Vec<usize>,
    /// Worker counts every shard count is run at (bit-equality across
    /// them, including the aggregate hit ratio).
    pub worker_counts: Vec<usize>,
    /// Items in each tenant's synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes.
    pub avg_item_bytes: u64,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Server epochs (epoch 0 is cold; tenants arrive and depart at epoch
    /// boundaries per the churn schedule).
    pub epochs: u64,
    /// Seed of the churn schedule and the tenants' shuffles.
    pub seed: u64,
    /// DRAM capacity as a percent of the summed tenant dataset bytes
    /// (below 100, so quotas oversubscribe and fair-share scaling binds).
    pub dram_percent: u32,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            tenants: 4,
            shard_counts: vec![1, 4],
            worker_counts: vec![1, 2],
            items: 256,
            avg_item_bytes: 512,
            batch_size: 16,
            epochs: 4,
            seed: 0xE1A5,
            dram_percent: 60,
        }
    }
}

impl MultiTenantConfig {
    /// The default preset with each tenant's dataset shrunk by
    /// `extra_scale` (pass 1 for full fidelity; `dstool smoke` passes its
    /// CI scale).
    pub fn scaled(extra_scale: u64) -> Self {
        let base = MultiTenantConfig::default();
        MultiTenantConfig {
            items: (base.items / extra_scale.max(1)).max(64),
            ..base
        }
    }

    fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec::new("multi-tenant", self.items, self.avg_item_bytes, 0.2, 2.0)
    }
}

/// One measured shard count.
#[derive(Debug, Clone)]
pub struct MultiTenantPoint {
    /// Shard count of the shared hierarchy.
    pub shards: usize,
    /// Aggregate hit ratio of the shared hierarchy over the whole run.
    pub aggregate_hit_ratio: f64,
    /// FNV-1a hash of the concatenated per-tenant streams (identical for
    /// every shard and worker count).
    pub stream_digest: u64,
    /// Samples delivered to each tenant over its lifetime.
    pub per_tenant_samples: Vec<u64>,
    /// Largest observed excess of any tenant's DRAM-resident bytes over the
    /// highest effective quota it was ever granted (must be 0).  Fair
    /// shares *shrink* when a later tenant arrives, and MinIO never evicts,
    /// so resident bytes may linger above the current share — but the
    /// server must never have *admitted* past the quota in force.
    pub max_quota_excess: u64,
    /// Largest observed DRAM-tier occupancy in bytes.
    pub peak_dram_used: u64,
    /// DRAM-tier capacity in bytes.
    pub dram_capacity: u64,
    /// Bytes left in the hierarchy after the last still-active tenants
    /// departed at the end of the run (must be 0).
    pub leftover_bytes: u64,
}

impl MultiTenantPoint {
    /// Point label, e.g. `shards=4`.
    pub fn label(&self) -> String {
        format!("shards={}", self.shards)
    }
}

/// The result of one multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// The configuration that produced it.
    pub config: MultiTenantConfig,
    /// One point per shard count, in `shard_counts` order.
    pub points: Vec<MultiTenantPoint>,
}

impl MultiTenantReport {
    /// The digest shared by every point, if the run is bit-identical.
    pub fn digest(&self) -> Option<u64> {
        self.points.first().map(|p| p.stream_digest)
    }

    /// Check the server's multi-tenancy contract: one stream for every
    /// shard count, quotas never exceeded, the DRAM tier never over
    /// capacity, and departure reclaiming every byte.
    pub fn verify(&self) -> Result<(), String> {
        let Some(first) = self.points.first() else {
            return Err("multi-tenant run produced no points".to_string());
        };
        for p in &self.points {
            if p.stream_digest != first.stream_digest {
                return Err(format!(
                    "{}: delivered stream differs from {} (digest {:016x} vs {:016x}) — \
                     sharding changed what consumers received",
                    p.label(),
                    first.label(),
                    p.stream_digest,
                    first.stream_digest
                ));
            }
            if p.per_tenant_samples != first.per_tenant_samples {
                return Err(format!(
                    "{}: per-tenant sample counts differ from {}",
                    p.label(),
                    first.label()
                ));
            }
            if p.max_quota_excess > 0 {
                return Err(format!(
                    "{}: a tenant's DRAM bytes exceeded its effective DRAM quota \
                     by {} bytes",
                    p.label(),
                    p.max_quota_excess
                ));
            }
            if p.peak_dram_used > p.dram_capacity {
                return Err(format!(
                    "{}: DRAM tier over capacity ({} of {} bytes)",
                    p.label(),
                    p.peak_dram_used,
                    p.dram_capacity
                ));
            }
            if p.leftover_bytes > 0 {
                return Err(format!(
                    "{}: {} bytes leaked after every tenant departed",
                    p.label(),
                    p.leftover_bytes
                ));
            }
            if p.per_tenant_samples.contains(&0) {
                return Err(format!(
                    "{}: a tenant was scheduled but delivered no samples",
                    p.label()
                ));
            }
        }
        Ok(())
    }

    /// Serialise through the shared `pipeline::json` emitter (digest as a
    /// hex string, like the worker and tier sweeps).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"preset\":");
        write_string(&mut out, MULTI_TENANT_NAME);
        out.push_str(",\"tenants\":");
        out.push_str(&self.config.tenants.to_string());
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"stream_digest\":");
        let digest = self.digest().unwrap_or(0);
        write_string(&mut out, &format!("{digest:016x}"));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            write_string(&mut out, &p.label());
            out.push_str(",\"shards\":");
            out.push_str(&p.shards.to_string());
            out.push_str(",\"aggregate_hit_ratio\":");
            write_f64(&mut out, p.aggregate_hit_ratio);
            out.push_str(",\"peak_dram_used\":");
            out.push_str(&p.peak_dram_used.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Run the preset: the same churn schedule at every shard count × worker
/// count, with bit-equality enforced across worker counts per shard count.
///
/// # Panics
/// Panics when a shard count's streams, sample counts or aggregate hit
/// ratio differ across worker counts — that is the server's determinism
/// contract, not a tolerance.
pub fn run_multi_tenant(cfg: &MultiTenantConfig) -> MultiTenantReport {
    let mut points = Vec::new();
    for &shards in &cfg.shard_counts {
        let mut measured: Option<MultiTenantPoint> = None;
        for &workers in &cfg.worker_counts {
            let point = run_once(cfg, shards, workers);
            match &measured {
                None => measured = Some(point),
                Some(first) => {
                    assert_eq!(
                        point.stream_digest, first.stream_digest,
                        "multi-tenant shards={shards}: workers={workers} delivered a \
                         different stream"
                    );
                    assert_eq!(
                        point.aggregate_hit_ratio, first.aggregate_hit_ratio,
                        "multi-tenant shards={shards}: workers={workers} changed the \
                         aggregate hit ratio"
                    );
                }
            }
        }
        points.push(measured.expect("worker_counts must not be empty"));
    }
    MultiTenantReport {
        config: cfg.clone(),
        points,
    }
}

fn run_once(cfg: &MultiTenantConfig, shards: usize, workers: usize) -> MultiTenantPoint {
    let spec = cfg.dataset_spec();
    let per_tenant_bytes = spec.total_bytes();
    let dram_capacity = per_tenant_bytes * cfg.tenants as u64 * cfg.dram_percent as u64 / 100;
    let server =
        Server::new(ServerConfig::minio(dram_capacity, shards)).expect("valid server config");
    let schedule = churn_schedule(cfg.tenants, cfg.epochs, cfg.seed);

    let mut handles: Vec<Option<TenantHandle>> = (0..cfg.tenants).map(|_| None).collect();
    let mut digest = Fnv::new();
    let mut per_tenant_samples = vec![0u64; cfg.tenants];
    // Highest effective quota each tenant has been granted so far: the
    // never-admit-past-the-quota gate is measured against this, because a
    // later arrival shrinks fair shares without evicting what never-evict
    // tiers already hold.
    let mut quota_ceiling = vec![0u64; cfg.tenants];
    let mut max_quota_excess = 0u64;
    let mut peak_dram_used = 0u64;

    for epoch in 0..cfg.epochs {
        for (j, t) in schedule.iter().enumerate() {
            if t.departure == epoch {
                if let Some(handle) = handles[j].take() {
                    handle.depart();
                }
            }
        }
        for (j, t) in schedule.iter().enumerate() {
            if t.arrival == epoch {
                let store: Arc<dyn DataSource> =
                    Arc::new(SyntheticItemStore::new(spec.clone(), 23 + j as u64));
                let handle = server
                    .submit(TenantSpec {
                        name: format!("tenant-{j}"),
                        dataset: store,
                        // Every tenant asks for a full dataset's worth of
                        // DRAM; with dram_percent < 100 the sum
                        // oversubscribes and fair shares bind.
                        quota_bytes: per_tenant_bytes,
                        session: SessionConfig {
                            batch_size: cfg.batch_size,
                            num_workers: workers,
                            seed: cfg.seed + j as u64,
                            ..SessionConfig::default()
                        },
                        profile: None,
                    })
                    .expect("valid tenant spec");
                handles[j] = Some(handle);
            }
        }
        for (j, slot) in handles.iter().enumerate() {
            let Some(handle) = slot else { continue };
            // Arrivals and departures only happen at the epoch boundary
            // above, so this is the share in force for the whole epoch.
            quota_ceiling[j] = quota_ceiling[j].max(handle.effective_quota_bytes());
            let local_epoch = epoch - schedule[j].arrival;
            let run = handle.session().epoch(local_epoch);
            for batch in run.stream(0) {
                let mb = batch.expect("multi-tenant epochs do not fail");
                digest.u64(j as u64);
                digest.u64(mb.epoch);
                digest.u64(mb.index as u64);
                for s in &mb.samples {
                    digest.u64(s.item);
                    digest.u64(s.augmentation_seed);
                    digest.bytes(&s.data);
                }
                per_tenant_samples[j] += mb.samples.len() as u64;
            }
            let excess = handle
                .dram_resident_bytes()
                .saturating_sub(quota_ceiling[j]);
            max_quota_excess = max_quota_excess.max(excess);
        }
        peak_dram_used = peak_dram_used.max(server.dram_used_bytes());
    }

    let aggregate_hit_ratio = server.aggregate_hit_ratio();
    drop(handles);
    MultiTenantPoint {
        shards,
        aggregate_hit_ratio,
        stream_digest: digest.finish(),
        per_tenant_samples,
        max_quota_excess,
        peak_dram_used,
        dram_capacity,
        leftover_bytes: server.used_bytes(),
    }
}

/// FNV-1a over 8-byte words (the same digest the worker and tier sweeps
/// use).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: 3,
            shard_counts: vec![1, 2],
            worker_counts: vec![1, 2],
            items: 64,
            avg_item_bytes: 128,
            epochs: 3,
            ..MultiTenantConfig::default()
        }
    }

    #[test]
    fn churn_run_is_bit_identical_across_shards_and_workers() {
        let report = run_multi_tenant(&tiny());
        assert_eq!(report.points.len(), 2);
        report.verify().expect("multi-tenancy contract");
        let (a, b) = (run_multi_tenant(&tiny()), run_multi_tenant(&tiny()));
        assert_eq!(a.digest(), b.digest(), "runs must be reproducible");
    }

    #[test]
    fn verify_rejects_quota_excess_and_divergent_streams() {
        let mut report = run_multi_tenant(&MultiTenantConfig {
            shard_counts: vec![1],
            worker_counts: vec![1],
            ..tiny()
        });
        report.points[0].max_quota_excess = 17;
        let err = report.verify().unwrap_err();
        assert!(err.contains("exceeded its effective DRAM quota"), "{err}");
        report.points[0].max_quota_excess = 0;
        report.points.push(MultiTenantPoint {
            stream_digest: report.points[0].stream_digest ^ 1,
            ..report.points[0].clone()
        });
        let err = report.verify().unwrap_err();
        assert!(err.contains("delivered stream differs"), "{err}");
    }

    #[test]
    fn json_round_trips_with_hex_digest() {
        let report = run_multi_tenant(&MultiTenantConfig {
            shard_counts: vec![1],
            worker_counts: vec![1],
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest().unwrap()));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("label").and_then(Value::as_str),
            Some("shards=1")
        );
        assert!(points[0]
            .get("aggregate_hit_ratio")
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn scaled_config_shrinks_items_only() {
        let scaled = MultiTenantConfig::scaled(4);
        assert!(scaled.items < MultiTenantConfig::default().items);
        assert!(scaled.items >= 64);
        assert_eq!(scaled.tenants, MultiTenantConfig::default().tenants);
    }
}
