//! The `mega-sweep` preset: a ≥10⁵-point what-if grid that exercises the
//! vectorized MinIO epoch engine at DS-Analyzer scale.
//!
//! The paper's what-if analysis (§6) answers "how would epoch time change
//! with more cache / more vCPUs / a different batch shape" by re-simulating
//! the same job over a dense grid.  The five paper suites in
//! [`presets`](crate::presets) sweep at most a few dozen points; this preset
//! sweeps the full cross product — cache fraction × vCPUs × batch size ×
//! prefetch depth × fetch order — at 100 000 points, which is only tractable
//! because single-server MinIO points run on the flat-array fast path
//! (`pipeline::fast`) with one reused `EngineScratch` per worker thread.
//!
//! A run measures **both** engines on the same host: every point through the
//! fast path, and a strided subsample re-run on the exact
//! `TierChain`-backed engine.  The subsample serves two purposes:
//!
//! * **a correctness gate** — every re-run point's `SimReport` must equal
//!   the fast path's bit for bit (`mismatches == 0`), the same contract
//!   `tests/fast_engine_equivalence.rs` proves exhaustively at small scale;
//! * **a speedup measurement** — points/sec of each engine, whose ratio
//!   (`speedup_vs_exact`) is host-independent enough to gate in CI.

use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::json::{write_f64, write_string};
use pipeline::sweep::{Axis, ExperimentSpec, SweepSpec};
use pipeline::{EngineScratch, FetchOrder, JobSpec, LoaderConfig, ServerConfig, SimReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// CLI name of the preset (`dstool sweep mega-sweep`).
pub const MEGA_SWEEP_NAME: &str = "mega-sweep";

/// Configuration of one mega sweep.
#[derive(Debug, Clone)]
pub struct MegaSweepConfig {
    /// Grid scale-down: 1 = the full 100 000-point grid, anything larger =
    /// the reduced 2 000-point smoke grid.  The dataset itself is never
    /// shrunk — per-point cost is what the speedup measurement is *about*,
    /// and a toy dataset would flatter the exact engine's fixed overheads.
    pub extra_scale: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Re-run every `exact_stride`-th point on the exact engine
    /// (0 = auto: aim for ~2 000 exact points).
    pub exact_stride: usize,
}

impl Default for MegaSweepConfig {
    fn default() -> Self {
        MegaSweepConfig {
            extra_scale: 1,
            threads: 0,
            exact_stride: 0,
        }
    }
}

impl MegaSweepConfig {
    /// The preset scaled like the other suites: pass 1 for full fidelity,
    /// [`SMOKE_EXTRA_SCALE`](crate::presets::SMOKE_EXTRA_SCALE) for CI.
    pub fn scaled(extra_scale: u64) -> Self {
        MegaSweepConfig {
            extra_scale: extra_scale.max(1),
            ..MegaSweepConfig::default()
        }
    }

    /// Build the grid: a single-server MinIO job under five crossed axes.
    pub fn spec(&self) -> SweepSpec {
        let model = ModelKind::ResNet18;
        let dataset = DatasetSpec::new("mega-sweep", 2048, 96 * 1024, 0.4, 6.0);
        let bytes = dataset.total_bytes();
        let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model))
            .with_seed(0x3E6A)
            .with_batch(8);
        let mut base = ExperimentSpec::new(ServerConfig::config_ssd_v100(), job);
        base.epochs = 3;

        // Full scale: 50 × 10 × 10 × 10 × 2 = 100 000 points.
        // Smoke scale: 10 × 5 × 4 × 5 × 2 = 2 000 points.
        let full = self.extra_scale <= 1;
        let cache_pcts: Vec<u32> = if full {
            (1..=50).map(|i| 2 * i).collect()
        } else {
            (1..=10).map(|i| 10 * i).collect()
        };
        // The smoke axes subsample the full ranges at matching means, so the
        // smoke grid's per-point cost profile (and thus the measured
        // speedup) stays representative of the full grid.
        let core_counts: Vec<usize> = if full {
            (1..=10).map(|i| 3 * i).collect()
        } else {
            vec![6, 12, 18, 24, 30]
        };
        let batch_sizes: Vec<usize> = if full {
            (1..=10).map(|i| 8 * i).collect()
        } else {
            vec![16, 32, 56, 80]
        };
        let prefetch_depths: Vec<usize> = if full {
            (1..=10).collect()
        } else {
            (1..=5).collect()
        };

        let mut cache = Axis::new("cache");
        for pct in cache_pcts {
            cache.push_value(format!("{pct}%"), move |spec: &mut ExperimentSpec| {
                spec.server = spec.server.with_cache_fraction(bytes, pct as f64 / 100.0);
            });
        }
        let mut vcpus = Axis::new("vcpus");
        for cores in core_counts {
            vcpus.push_value(format!("{cores}"), move |spec: &mut ExperimentSpec| {
                spec.server = spec.server.with_cpu_cores(cores);
            });
        }
        let mut batch = Axis::new("batch");
        for b in batch_sizes {
            batch.push_value(format!("{b}"), move |spec: &mut ExperimentSpec| {
                for job in &mut spec.jobs {
                    job.batch_per_gpu = b;
                }
            });
        }
        let mut prefetch = Axis::new("prefetch");
        for d in prefetch_depths {
            prefetch.push_value(format!("{d}"), move |spec: &mut ExperimentSpec| {
                for job in &mut spec.jobs {
                    job.loader.prefetch_depth = d;
                }
            });
        }
        let order = Axis::new("order")
            .value("shuffled", |spec: &mut ExperimentSpec| {
                for job in &mut spec.jobs {
                    job.loader.fetch_order = FetchOrder::Shuffled;
                }
            })
            .value("sequential", |spec: &mut ExperimentSpec| {
                for job in &mut spec.jobs {
                    job.loader.fetch_order = FetchOrder::Sequential;
                }
            });

        SweepSpec::new(MEGA_SWEEP_NAME, base)
            .axis(cache)
            .axis(vcpus)
            .axis(batch)
            .axis(prefetch)
            .axis(order)
    }
}

/// The result of one mega sweep: both engines' timings plus the
/// bit-identity verdict on the exact subsample.
#[derive(Debug, Clone)]
pub struct MegaSweepReport {
    /// Grid points run through the fast engine.
    pub points: usize,
    /// Worker threads used by both phases.
    pub threads: usize,
    /// Wall-clock seconds of the fast phase (all points).
    pub fast_seconds: f64,
    /// Points re-run on the exact engine.
    pub exact_points: usize,
    /// Wall-clock seconds of the exact phase.
    pub exact_seconds: f64,
    /// Exact-engine reports that differed from the fast engine's (must be 0).
    pub mismatches: usize,
}

impl MegaSweepReport {
    /// Fast-engine throughput in sweep points per wall-clock second.
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.fast_seconds.max(1e-9)
    }

    /// Exact-engine throughput on the subsample.
    pub fn exact_points_per_sec(&self) -> f64 {
        self.exact_points as f64 / self.exact_seconds.max(1e-9)
    }

    /// Per-point speedup of the fast engine over the exact engine on this
    /// host — the number the CI baseline gates.
    pub fn speedup_vs_exact(&self) -> f64 {
        self.points_per_sec() / self.exact_points_per_sec().max(1e-9)
    }

    /// The correctness gate: every exact re-run must match bit for bit.
    pub fn bit_identical(&self) -> Result<(), String> {
        if self.exact_points == 0 {
            return Err("mega sweep re-ran no points on the exact engine".to_string());
        }
        if self.mismatches > 0 {
            return Err(format!(
                "{} of {} exact-engine reports differ from the fast path",
                self.mismatches, self.exact_points
            ));
        }
        Ok(())
    }

    /// Serialise through the shared `pipeline::json` emitter.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"preset\":");
        write_string(&mut out, MEGA_SWEEP_NAME);
        out.push_str(",\"points\":");
        out.push_str(&self.points.to_string());
        out.push_str(",\"threads\":");
        out.push_str(&self.threads.to_string());
        out.push_str(",\"fast_seconds\":");
        write_f64(&mut out, self.fast_seconds);
        out.push_str(",\"points_per_sec\":");
        write_f64(&mut out, self.points_per_sec());
        out.push_str(",\"exact_points\":");
        out.push_str(&self.exact_points.to_string());
        out.push_str(",\"exact_seconds\":");
        write_f64(&mut out, self.exact_seconds);
        out.push_str(",\"exact_points_per_sec\":");
        write_f64(&mut out, self.exact_points_per_sec());
        out.push_str(",\"speedup_vs_exact\":");
        write_f64(&mut out, self.speedup_vs_exact());
        out.push_str(",\"mismatches\":");
        out.push_str(&self.mismatches.to_string());
        out.push('}');
        out
    }
}

/// Run the mega sweep: the full grid on the fast engine, then the strided
/// subsample on the exact engine, comparing reports bit for bit.
pub fn run_mega_sweep(cfg: &MegaSweepConfig) -> MegaSweepReport {
    let spec = cfg.spec();
    // Materialise the grid once, outside both timed phases — the points are
    // identical inputs to both engines, so grid-construction cost would only
    // dilute the comparison.
    let points: Vec<ExperimentSpec> = spec.points().into_iter().map(|(_, s)| s).collect();
    let threads = if cfg.threads > 0 {
        cfg.threads
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    };
    let stride = if cfg.exact_stride > 0 {
        cfg.exact_stride
    } else {
        (points.len() / 2048).max(1)
    };

    // Phase 1 — every point through the fast path, each worker thread
    // reusing one scratch across all the points it claims.  Reports at the
    // strided indices are kept for the phase-2 comparison; the rest are
    // dropped as soon as they are produced so the sweep runs in O(threads)
    // memory, not O(points).
    let started = Instant::now();
    let fast_sample = fan_out(&points, threads, false, |i| i % stride == 0);
    let fast_seconds = started.elapsed().as_secs_f64();

    // Phase 2 — the subsample through the exact engine.
    let exact_indices: Vec<usize> = (0..points.len()).step_by(stride).collect();
    let exact_specs: Vec<ExperimentSpec> =
        exact_indices.iter().map(|&i| points[i].clone()).collect();
    let started = Instant::now();
    let exact_sample = fan_out(&exact_specs, threads, true, |_| true);
    let exact_seconds = started.elapsed().as_secs_f64();

    let mismatches = exact_indices
        .iter()
        .enumerate()
        .filter(|&(k, &i)| fast_sample.get(&i) != exact_sample.get(&k))
        .count();
    MegaSweepReport {
        points: points.len(),
        threads,
        fast_seconds,
        exact_points: exact_indices.len(),
        exact_seconds,
        mismatches,
    }
}

/// Run every spec in `points` across `threads` scoped workers (atomic-cursor
/// work stealing, one reused `EngineScratch` per worker), returning the
/// reports whose index passes `keep`.
fn fan_out(
    points: &[ExperimentSpec],
    threads: usize,
    exact_engine: bool,
    keep: impl Fn(usize) -> bool + Sync,
) -> std::collections::HashMap<usize, SimReport> {
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
    thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            let cursor = &cursor;
            let keep = &keep;
            scope.spawn(move || {
                let mut scratch = EngineScratch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let report = points[i].run_with(&mut scratch, exact_engine);
                    if keep(i) {
                        tx.send((i, report)).expect("collector outlives workers");
                    }
                }
            });
        }
        drop(tx);
    });
    rx.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    #[test]
    fn full_grid_reaches_a_hundred_thousand_points() {
        assert_eq!(MegaSweepConfig::default().spec().num_points(), 100_000);
        assert_eq!(MegaSweepConfig::scaled(8).spec().num_points(), 2_000);
    }

    #[test]
    fn smoke_scale_run_is_bit_identical_and_reports_a_speedup() {
        let report = run_mega_sweep(&MegaSweepConfig::scaled(8));
        assert_eq!(report.points, 2_000);
        report
            .bit_identical()
            .expect("fast path equals exact engine");
        assert!(report.speedup_vs_exact() > 0.0);

        let doc = parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("points").and_then(Value::as_f64), Some(2000.0));
        assert_eq!(doc.get("mismatches").and_then(Value::as_f64), Some(0.0));
    }
}
