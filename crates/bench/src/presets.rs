//! Scaled datasets, server presets and named sweep suites shared by every
//! bench and by the `dstool` CLI.

use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::sweep::{Axis, ExperimentSpec, SweepSpec};
use pipeline::{JobSpec, LoaderConfig, Scenario, ServerConfig};
use prep::{PrepBackend, PrepCostModel, PrepPipeline};

/// Dataset scale-down factor used by the benches.
///
/// Every dataset is shrunk by this factor (item sizes are untouched, only the
/// item *count* shrinks) so one `cargo bench` run regenerates every figure in
/// seconds instead of simulating terabytes of I/O.  Because the cache is
/// always sized as a fraction of the dataset and every reported quantity is a
/// ratio (stall fraction, hit ratio, speedup, read amplification), the shapes
/// the paper reports are invariant to this factor — only absolute epoch
/// seconds change.  `EXPERIMENTS.md` discusses this in more detail.
pub const SCALE: u64 = 16;

/// Epochs simulated per configuration: a cold warm-up epoch plus two measured
/// epochs, matching the paper's methodology (§3.1).
pub const EPOCHS: u64 = 3;

/// A dataset scaled down by [`SCALE`].
pub fn scaled(spec: DatasetSpec) -> DatasetSpec {
    spec.scaled(SCALE)
}

/// Config-SSD-V100 with its DRAM cache sized to hold `cache_fraction` of
/// `dataset`.
pub fn server_ssd(dataset: &DatasetSpec, cache_fraction: f64) -> ServerConfig {
    ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), cache_fraction)
}

/// Config-HDD-1080Ti with its DRAM cache sized to hold `cache_fraction` of
/// `dataset`.
pub fn server_hdd(dataset: &DatasetSpec, cache_fraction: f64) -> ServerConfig {
    ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), cache_fraction)
}

/// Cache fractions (percent of the dataset) swept by the
/// [`cache-sweep`](SUITES) suite and Figure 16.
pub const CACHE_SWEEP_PERCENTS: [u32; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// vCPUs per GPU swept by the [`vcpu-sweep`](SUITES) suite and Figure 12.
pub const VCPUS_PER_GPU: [usize; 5] = [2, 3, 4, 6, 8];

/// HP-search ensemble widths (number of concurrent jobs; each width uses all
/// 8 GPUs) swept by the [`hp-width`](SUITES) suite and Figure 9(e).
pub const HP_WIDTHS: [usize; 4] = [8, 4, 2, 1];

/// Server counts swept by the [`scalability`](SUITES) suite and Figure 18.
pub const SCALABILITY_SERVERS: [usize; 4] = [1, 2, 3, 4];

/// Cache fractions (percent of the combined working set) swept by the
/// [`mixed-cluster`](SUITES) suite.
pub const MIXED_CACHE_PERCENTS: [u32; 3] = [25, 50, 75];

/// Extra dataset scale-down applied on top of [`SCALE`] by `dstool smoke` so
/// the whole suite registry runs in seconds in CI.
pub const SMOKE_EXTRA_SCALE: u64 = 8;

/// Effective physical-core count for `vcpus_per_gpu` hardware threads per
/// GPU on the Figure 12 server (32 physical cores, 8 GPUs): hyper-threads
/// beyond the physical cores contribute ~30 % of a core.
pub fn vcpu_effective_cores(vcpus_per_gpu: usize) -> f64 {
    let cost =
        PrepCostModel::for_pipeline(&PrepPipeline::image_classification(), PrepBackend::DaliCpu);
    cost.effective_cores((vcpus_per_gpu * 8) as f64, 32.0)
}

/// A named, ready-to-run sweep preset: one paper figure's grid expressed as a
/// [`SweepSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SweepSuite {
    /// CLI name (`dstool sweep <name>`).
    pub name: &'static str,
    /// The paper artifact the sweep reproduces.
    pub paper: &'static str,
    /// One-line description.
    pub description: &'static str,
    build: fn(u64) -> SweepSpec,
}

impl SweepSuite {
    /// Build the suite's [`SweepSpec`], scaling its dataset down by an
    /// `extra_scale` factor on top of [`SCALE`] (pass 1 for bench fidelity,
    /// [`SMOKE_EXTRA_SCALE`] for CI smoke runs).
    pub fn spec(&self, extra_scale: u64) -> SweepSpec {
        (self.build)(extra_scale.max(1))
    }
}

/// The suite registry: every named sweep `dstool` can run.
pub const SUITES: [SweepSuite; 5] = [
    SweepSuite {
        name: "cache-sweep",
        paper: "Figure 16 / Figure 3",
        description: "AlexNet steady-state speed vs DRAM cache size (what-if validation axis)",
        build: build_cache_sweep,
    },
    SweepSuite {
        name: "vcpu-sweep",
        paper: "Figure 12 (app. B.1)",
        description: "ResNet18 fully-cached epoch time vs vCPUs per GPU (hyper-thread scaling)",
        build: build_vcpu_sweep,
    },
    SweepSuite {
        name: "hp-width",
        paper: "Figure 9(e)",
        description: "AlexNet HP-search job shapes (8x1 .. 1x8 GPUs), DALI vs CoorDL",
        build: build_hp_width,
    },
    SweepSuite {
        name: "mixed-cluster",
        paper: "— (beyond the paper)",
        description: "heterogeneous ResNet18+AlexNet jobs sharing one server, cache sweep",
        build: build_mixed_cluster,
    },
    SweepSuite {
        name: "scalability",
        paper: "Figure 18 (app. D.3)",
        description: "ResNet50 distributed scaling across 1-4 HDD servers, DALI vs CoorDL",
        build: build_scalability,
    },
];

/// Look up a suite by its CLI name.
pub fn find_suite(name: &str) -> Option<&'static SweepSuite> {
    SUITES.iter().find(|s| s.name == name)
}

/// A `loader` axis swapping every job between its best DALI and best CoorDL
/// configuration.  Added *after* the axis that builds the job list, so it
/// rewrites whatever jobs that axis produced.
fn loader_axis() -> Axis {
    Axis::new("loader")
        .value("dali", |spec: &mut ExperimentSpec| {
            for job in &mut spec.jobs {
                job.loader = LoaderConfig::dali_best(job.model);
            }
        })
        .value("coordl", |spec: &mut ExperimentSpec| {
            for job in &mut spec.jobs {
                job.loader = LoaderConfig::coordl_best(job.model);
            }
        })
}

fn build_cache_sweep(extra: u64) -> SweepSpec {
    let model = ModelKind::AlexNet;
    let dataset = DatasetSpec::imagenet_1k().scaled(SCALE * extra);
    let bytes = dataset.total_bytes();
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model));
    let mut base = ExperimentSpec::new(ServerConfig::config_ssd_v100(), job);
    base.epochs = EPOCHS;

    let mut cache = Axis::new("cache");
    for pct in CACHE_SWEEP_PERCENTS {
        cache.push_value(format!("{pct}%"), move |spec: &mut ExperimentSpec| {
            spec.server = spec.server.with_cache_fraction(bytes, pct as f64 / 100.0);
        });
    }
    SweepSpec::new("cache-sweep", base).axis(cache)
}

fn build_vcpu_sweep(extra: u64) -> SweepSpec {
    let model = ModelKind::ResNet18;
    let dataset = DatasetSpec::imagenet_1k().scaled(SCALE * extra);
    let bytes = dataset.total_bytes();
    let job = JobSpec::new(
        model,
        dataset,
        8,
        LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
    );
    let mut base = ExperimentSpec::new(
        ServerConfig::config_highcpu_v100().with_cache_fraction(bytes, 1.1),
        job,
    );
    base.epochs = EPOCHS;

    let mut vcpus = Axis::new("vcpus");
    for v in VCPUS_PER_GPU {
        let cores = vcpu_effective_cores(v).round().max(1.0) as usize;
        vcpus.push_value(format!("{v}/gpu"), move |spec: &mut ExperimentSpec| {
            spec.server = spec.server.with_cpu_cores(cores);
        });
    }
    SweepSpec::new("vcpu-sweep", base).axis(vcpus)
}

fn build_hp_width(extra: u64) -> SweepSpec {
    let model = ModelKind::AlexNet;
    let dataset = DatasetSpec::openimages_extended().scaled(SCALE * extra);
    let server = ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.65);
    let template = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model));
    let mut base = ExperimentSpec::new(server, template);
    base.epochs = EPOCHS;

    let mut width = Axis::new("width");
    for num_jobs in HP_WIDTHS {
        let gpus_per_job = 8 / num_jobs;
        width.push_value(
            format!("{num_jobs}x{gpus_per_job}"),
            move |spec: &mut ExperimentSpec| {
                let mut template = spec.jobs[0].clone();
                template.num_gpus = gpus_per_job;
                spec.jobs = (0..num_jobs)
                    .map(|j| template.with_seed(0xC0DE + j as u64))
                    .collect();
                spec.scenario = Scenario::HpSearch { jobs: num_jobs };
            },
        );
    }
    SweepSpec::new("hp-width", base)
        .axis(width)
        .axis(loader_axis())
}

fn build_mixed_cluster(extra: u64) -> SweepSpec {
    let ds_image = DatasetSpec::imagenet_1k().scaled(SCALE * extra);
    let ds_open = DatasetSpec::openimages_extended().scaled(SCALE * extra);
    let working_set = ds_image.total_bytes() + ds_open.total_bytes();
    let resnet = JobSpec::new(
        ModelKind::ResNet18,
        ds_image,
        4,
        LoaderConfig::coordl_best(ModelKind::ResNet18),
    );
    let alexnet = JobSpec::new(
        ModelKind::AlexNet,
        ds_open,
        4,
        LoaderConfig::coordl_best(ModelKind::AlexNet),
    );
    let mut base = ExperimentSpec::new(ServerConfig::config_ssd_v100(), resnet);
    base.jobs.push(alexnet);
    base.scenario = Scenario::MixedCluster;
    base.epochs = EPOCHS;

    let mut cache = Axis::new("cache");
    for pct in MIXED_CACHE_PERCENTS {
        cache.push_value(format!("{pct}%"), move |spec: &mut ExperimentSpec| {
            spec.server = spec
                .server
                .with_cache_bytes((working_set as f64 * pct as f64 / 100.0) as u64);
        });
    }
    SweepSpec::new("mixed-cluster", base)
        .axis(cache)
        .axis(loader_axis())
}

fn build_scalability(extra: u64) -> SweepSpec {
    let model = ModelKind::ResNet50;
    let dataset = DatasetSpec::openimages_extended().scaled(SCALE * extra);
    let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), 0.65);
    // Keep several iterations per epoch on the scaled dataset even with 4
    // servers' worth of GPUs.
    let job = JobSpec::new(model, dataset, 8, LoaderConfig::coordl_best(model)).with_batch(128);
    let mut base = ExperimentSpec::new(server, job);
    base.epochs = EPOCHS;

    let mut servers = Axis::new("servers");
    for n in SCALABILITY_SERVERS {
        servers.push_value(format!("{n}"), move |spec: &mut ExperimentSpec| {
            spec.scenario = Scenario::Distributed { servers: n };
        });
    }
    SweepSpec::new("scalability", base)
        .axis(servers)
        .axis(loader_axis())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dataset_preserves_item_size() {
        let full = DatasetSpec::imagenet_1k();
        let small = scaled(full.clone());
        assert_eq!(small.avg_item_bytes, full.avg_item_bytes);
        assert!(small.num_items <= full.num_items / SCALE + 1);
    }

    #[test]
    fn server_cache_is_a_fraction_of_the_dataset() {
        let ds = scaled(DatasetSpec::imagenet_1k());
        let s = server_ssd(&ds, 0.35);
        let frac = s.dram_cache_bytes as f64 / ds.total_bytes() as f64;
        assert!((frac - 0.35).abs() < 0.01, "cache fraction {frac}");
        assert_eq!(s.device.name, "sata-ssd");
        assert_eq!(server_hdd(&ds, 0.5).device.name, "hdd");
    }

    #[test]
    fn suite_registry_is_consistent() {
        let mut names: Vec<&str> = SUITES.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITES.len(), "duplicate suite names");
        assert!(find_suite("cache-sweep").is_some());
        assert!(find_suite("nonexistent").is_none());
    }

    #[test]
    fn suites_build_the_expected_grids() {
        let expected = [
            ("cache-sweep", CACHE_SWEEP_PERCENTS.len()),
            ("vcpu-sweep", VCPUS_PER_GPU.len()),
            ("hp-width", HP_WIDTHS.len() * 2),
            ("mixed-cluster", MIXED_CACHE_PERCENTS.len() * 2),
            ("scalability", SCALABILITY_SERVERS.len() * 2),
        ];
        for (name, points) in expected {
            let spec = find_suite(name).unwrap().spec(SMOKE_EXTRA_SCALE);
            assert_eq!(spec.num_points(), points, "suite {name}");
            // Materialising the grid exercises every axis closure.
            assert_eq!(spec.points().len(), points, "suite {name}");
        }
    }

    #[test]
    fn hp_width_grid_pairs_loaders_within_each_width() {
        let spec = find_suite("hp-width").unwrap().spec(SMOKE_EXTRA_SCALE);
        let points = spec.points();
        // Cartesian order: width slowest, loader fastest.
        assert_eq!(points[0].0.label(), "width=8x1,loader=dali");
        assert_eq!(points[1].0.label(), "width=8x1,loader=coordl");
        assert_eq!(points[0].1.jobs.len(), 8);
        assert_eq!(points[7].1.jobs.len(), 1);
        // The loader axis rewrote the width axis's job list.
        assert!(points[1].1.jobs.iter().all(|j| j.loader.coordinated_prep));
    }

    #[test]
    fn vcpu_effective_cores_are_sublinear_beyond_physical() {
        // 4 vCPUs/GPU = the 32 physical cores; 8/GPU adds only hyper-threads.
        let at4 = vcpu_effective_cores(4);
        let at8 = vcpu_effective_cores(8);
        assert!(at8 > at4, "more vCPUs must not hurt");
        assert!(at8 < at4 * 2.0, "hyper-threads must not scale linearly");
    }
}
