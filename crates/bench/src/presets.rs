//! Scaled datasets and server presets shared by every bench.

use dataset::DatasetSpec;
use pipeline::ServerConfig;

/// Dataset scale-down factor used by the benches.
///
/// Every dataset is shrunk by this factor (item sizes are untouched, only the
/// item *count* shrinks) so one `cargo bench` run regenerates every figure in
/// seconds instead of simulating terabytes of I/O.  Because the cache is
/// always sized as a fraction of the dataset and every reported quantity is a
/// ratio (stall fraction, hit ratio, speedup, read amplification), the shapes
/// the paper reports are invariant to this factor — only absolute epoch
/// seconds change.  `EXPERIMENTS.md` discusses this in more detail.
pub const SCALE: u64 = 16;

/// Epochs simulated per configuration: a cold warm-up epoch plus two measured
/// epochs, matching the paper's methodology (§3.1).
pub const EPOCHS: u64 = 3;

/// A dataset scaled down by [`SCALE`].
pub fn scaled(spec: DatasetSpec) -> DatasetSpec {
    spec.scaled(SCALE)
}

/// Config-SSD-V100 with its DRAM cache sized to hold `cache_fraction` of
/// `dataset`.
pub fn server_ssd(dataset: &DatasetSpec, cache_fraction: f64) -> ServerConfig {
    ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), cache_fraction)
}

/// Config-HDD-1080Ti with its DRAM cache sized to hold `cache_fraction` of
/// `dataset`.
pub fn server_hdd(dataset: &DatasetSpec, cache_fraction: f64) -> ServerConfig {
    ServerConfig::config_hdd_1080ti().with_cache_fraction(dataset.total_bytes(), cache_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dataset_preserves_item_size() {
        let full = DatasetSpec::imagenet_1k();
        let small = scaled(full.clone());
        assert_eq!(small.avg_item_bytes, full.avg_item_bytes);
        assert!(small.num_items <= full.num_items / SCALE + 1);
    }

    #[test]
    fn server_cache_is_a_fraction_of_the_dataset() {
        let ds = scaled(DatasetSpec::imagenet_1k());
        let s = server_ssd(&ds, 0.35);
        let frac = s.dram_cache_bytes as f64 / ds.total_bytes() as f64;
        assert!((frac - 0.35).abs() < 0.01, "cache fraction {frac}");
        assert_eq!(s.device.name, "sata-ssd");
        assert_eq!(server_hdd(&ds, 0.5).device.name, "hdd");
    }
}
