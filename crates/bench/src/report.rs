//! Plain-text table rendering and number formatting for the bench reports.
//!
//! Criterion is used for the micro-benchmarks; the figure/table benches print
//! fixed-width text tables so that `cargo bench` output can be compared line
//! by line with the paper's figures (and is diff-able run to run).

use std::fmt::Write as _;

/// A fixed-width text table with a title, optional caption and column
/// headers.  Cells are strings; numeric formatting is done by the caller with
/// the `fmt_*` helpers so each bench controls its own precision.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    caption: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table titled `title` (e.g. `"Figure 2: fetch stalls"`) with
    /// the given column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            caption: None,
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Attach a one-line caption describing workload and parameters.
    pub fn with_caption(mut self, caption: impl Into<String>) -> Self {
        self.caption = Some(caption.into());
        self
    }

    /// Append one row.  Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append one row of displayable values (convenience over [`Table::row`]).
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows currently in the table.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table to a `String`.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        if let Some(c) = &self.caption {
            let _ = writeln!(out, "{c}");
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    let _ = write!(s, "{cell:>w$}", w = *w);
                } else {
                    let _ = write!(s, "{cell:<w$}", w = *w);
                }
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render and print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a speedup factor as the paper does, e.g. `1.83x`.
pub fn fmt_speedup(factor: f64) -> String {
    format!("{factor:.2}x")
}

/// Format a fraction in `[0, 1]` as a percentage, e.g. `37.2%`.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format a byte count in binary units (KiB/MiB/GiB/TiB).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Format a byte count in decimal gigabytes, the unit the paper's tables use
/// for disk I/O (e.g. Table 6 reports "422 GB").
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.0} GB", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_headers_and_rows() {
        let mut t = Table::new("Table X", &["model", "speedup"]).with_caption("caption text");
        t.row(&["ResNet18".to_string(), "1.53x".to_string()]);
        t.row(&["AlexNet".to_string(), "1.87x".to_string()]);
        let s = t.render();
        assert!(s.contains("=== Table X ==="));
        assert!(s.contains("caption text"));
        assert!(s.contains("model"));
        assert!(s.contains("ResNet18"));
        assert!(s.contains("1.87x"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn columns_are_padded_to_the_widest_cell() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains('2') || l.contains('1'))
            .collect();
        // Numeric second column is right-aligned to the same terminal column.
        let col1 = lines[0].rfind('1').unwrap();
        let col2 = lines[1].rfind('2').unwrap();
        assert_eq!(col1, col2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(1.834), "1.83x");
        assert_eq!(fmt_pct(0.372), "37.2%");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
        assert_eq!(fmt_gb(422_000_000_000), "422 GB");
    }
}
