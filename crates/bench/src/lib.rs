//! Shared harness for the figure/table benches.
//!
//! Every bench binary in `benches/` regenerates one table or figure of the
//! paper.  They all follow the same recipe: build a scaled-down dataset and a
//! server configuration from [`presets`], run the relevant simulation through
//! [`scenarios`], and print the rows/series the paper reports through
//! [`report`].  Scaling the dataset down (by [`presets::SCALE`]) changes only
//! absolute epoch times; the stall fractions, hit ratios and relative
//! speedups that the paper's figures are about are invariant to it, because
//! the cache is always sized as a *fraction* of the dataset.
//!
//! The output of `cargo bench` is therefore a textual reproduction of the
//! paper's evaluation section; `EXPERIMENTS.md` records the paper-reported
//! value next to the measured one for every row.

pub mod chaos;
pub mod fetchsweep;
pub mod fssweep;
pub mod mega;
pub mod multitenant;
pub mod parallel;
pub mod presets;
pub mod report;
pub mod scenarios;
pub mod tiersweep;
pub mod validation;

pub use chaos::{run_chaos, ChaosConfig, ChaosFault, ChaosReport, CHAOS_NAME};
pub use fetchsweep::{
    run_fetch_sweep, FetchSweepConfig, FetchSweepPoint, FetchSweepReport, FETCH_SWEEP_NAME,
};
pub use fssweep::{run_fs_sweep, FsSweepConfig, FsSweepPoint, FsSweepReport, FS_SWEEP_NAME};
pub use mega::{run_mega_sweep, MegaSweepConfig, MegaSweepReport, MEGA_SWEEP_NAME};
pub use multitenant::{
    run_multi_tenant, MultiTenantConfig, MultiTenantPoint, MultiTenantReport, MULTI_TENANT_NAME,
};
pub use parallel::{
    run_worker_sweep, WorkerSweepConfig, WorkerSweepPoint, WorkerSweepReport, WORKER_SWEEP_NAME,
};
pub use presets::{
    find_suite, scaled, server_hdd, server_ssd, vcpu_effective_cores, SweepSuite,
    CACHE_SWEEP_PERCENTS, HP_WIDTHS, MIXED_CACHE_PERCENTS, SCALABILITY_SERVERS, SCALE,
    SMOKE_EXTRA_SCALE, SUITES, VCPUS_PER_GPU,
};
pub use report::{fmt_bytes, fmt_gb, fmt_pct, fmt_speedup, Table};
pub use scenarios::{
    distributed_pair, distributed_run, hp_jobs, hp_pair, hp_run, single_pair, single_run, steady,
    SinglePair,
};
pub use tiersweep::{
    run_tier_sweep, TierSweepConfig, TierSweepPoint, TierSweepReport, TIER_SWEEP_NAME,
};
pub use validation::{run_validation, GateKind, ValidationConfig, ValidationReport, ValidationRow};
