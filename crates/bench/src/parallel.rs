//! The worker-count sweep over the *runtime* (`coordl::Session`): the
//! prep-heavy preset behind `dstool sweep worker-sweep` and the parallel
//! half of `dstool smoke`.
//!
//! The simulator suites in [`presets`](crate::presets) predict throughput in
//! virtual time; this preset *measures* it, running the same prep-heavy
//! workload through the session executor at several worker counts.  Two
//! things come out of a run:
//!
//! * **a correctness gate** — the delivered stream (hashed into
//!   `stream_digest`) and every deterministic `LoaderStats` counter must be
//!   bit-identical across all worker counts and prefetch depths, which is
//!   the executor's core contract (and is machine-independent, so the
//!   digest is checked against `ci/bench_baseline.json`);
//! * **a scaling measurement** — wall-clock samples/sec per worker count,
//!   the paper's prefetch/overlap argument (§5) on real threads.  Speedup
//!   numbers are machine-dependent and are only gated relative to the same
//!   run (and only when the host has enough cores).

use coordl::{Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use pipeline::json::{write_f64, write_string};
use prep::{ExecutablePipeline, PrepPipeline};
use std::sync::Arc;
use std::time::Instant;

/// CLI name of the runtime preset (`dstool sweep worker-sweep`).
pub const WORKER_SWEEP_NAME: &str = "worker-sweep";

/// Configuration of one worker sweep.
#[derive(Debug, Clone)]
pub struct WorkerSweepConfig {
    /// Worker counts to measure (1 must be included for speedup baselines).
    pub worker_counts: Vec<usize>,
    /// Prefetch depth used by every point.
    pub prefetch_depth: usize,
    /// Items in the synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes.
    pub avg_item_bytes: u64,
    /// Decode expansion factor — the prep-heaviness knob (prepared items
    /// are `decode_multiplier`× the raw size, and every transform pass
    /// walks the expanded buffer).
    pub decode_multiplier: usize,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Epochs per point (every epoch re-preps; the cache only dedupes
    /// fetches).
    pub epochs: u64,
    /// Shuffle + augmentation seed shared by every point.
    pub seed: u64,
}

impl Default for WorkerSweepConfig {
    fn default() -> Self {
        WorkerSweepConfig {
            worker_counts: vec![1, 2, 4],
            prefetch_depth: 4,
            items: 1536,
            avg_item_bytes: 4096,
            decode_multiplier: 128,
            batch_size: 32,
            epochs: 2,
            seed: 0xBEEF,
        }
    }
}

impl WorkerSweepConfig {
    /// The default preset with its dataset shrunk by `extra_scale` — the
    /// single scaling rule shared by `dstool sweep worker-sweep --scale`
    /// and `dstool smoke` (pass 1 for full bench fidelity).
    ///
    /// The floor keeps even the smoke scale heavy enough that each point
    /// runs for hundreds of milliseconds of prep work: below that, thread
    /// startup and channel overhead dominate and the measured "speedup"
    /// describes the OS scheduler, not the executor.
    pub fn scaled(extra_scale: u64) -> Self {
        let base = WorkerSweepConfig::default();
        WorkerSweepConfig {
            items: (base.items / extra_scale.max(1)).max(256),
            ..base
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct WorkerSweepPoint {
    /// Prep workers in the executor pool.
    pub workers: usize,
    /// Wall-clock seconds for all epochs of this point.
    pub wall_seconds: f64,
    /// Delivered samples per wall-clock second.
    pub samples_per_sec: f64,
    /// FNV-1a hash of the delivered stream (epoch, index, items,
    /// augmentation seeds, prepared bytes) — machine-independent.
    pub stream_digest: u64,
    /// The five deterministic `LoaderStats` counters: bytes from storage /
    /// cache / remote, samples prepared / delivered.
    pub counters: [u64; 5],
    /// Cache-tier hits and misses (deterministic).
    pub cache_hits: u64,
    /// Cache-tier misses (deterministic).
    pub cache_misses: u64,
    /// Wall seconds the prep pool spent pre-processing (summed across
    /// workers).
    pub prep_busy_seconds: f64,
    /// Wall seconds the consumer spent waiting for minibatches.
    pub consumer_wait_seconds: f64,
}

/// The result of one worker sweep.
#[derive(Debug, Clone)]
pub struct WorkerSweepReport {
    /// The configuration that produced it.
    pub config: WorkerSweepConfig,
    /// One point per worker count, in `worker_counts` order.
    pub points: Vec<WorkerSweepPoint>,
}

impl WorkerSweepReport {
    /// The digest shared by every point, if the sweep is bit-identical.
    pub fn digest(&self) -> Option<u64> {
        self.points.first().map(|p| p.stream_digest)
    }

    /// Check the executor's determinism contract: every point must have
    /// delivered the identical stream and identical counters.
    pub fn bit_identical(&self) -> Result<(), String> {
        let Some(first) = self.points.first() else {
            return Err("worker sweep produced no points".to_string());
        };
        for p in &self.points[1..] {
            if p.stream_digest != first.stream_digest {
                return Err(format!(
                    "workers={} delivered a different stream than workers={} \
                     (digest {:016x} vs {:016x})",
                    p.workers, first.workers, p.stream_digest, first.stream_digest
                ));
            }
            if p.counters != first.counters
                || p.cache_hits != first.cache_hits
                || p.cache_misses != first.cache_misses
            {
                return Err(format!(
                    "workers={} produced different LoaderStats than workers={} \
                     ({:?}/{}/{} vs {:?}/{}/{})",
                    p.workers,
                    first.workers,
                    p.counters,
                    p.cache_hits,
                    p.cache_misses,
                    first.counters,
                    first.cache_hits,
                    first.cache_misses
                ));
            }
        }
        Ok(())
    }

    /// Wall-clock speedup of `workers` relative to the workers=1 point.
    pub fn speedup(&self, workers: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.workers == 1)?;
        let point = self.points.iter().find(|p| p.workers == workers)?;
        Some(base.wall_seconds / point.wall_seconds.max(1e-9))
    }

    /// Serialise through the shared `pipeline::json` emitter.  The digest is
    /// written as a hex *string* (u64 does not survive a float round-trip).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"preset\":");
        write_string(&mut out, WORKER_SWEEP_NAME);
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"decode_multiplier\":");
        out.push_str(&self.config.decode_multiplier.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"stream_digest\":");
        let digest = self.digest().unwrap_or(0);
        write_string(&mut out, &format!("{digest:016x}"));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"workers\":");
            out.push_str(&p.workers.to_string());
            out.push_str(",\"wall_seconds\":");
            write_f64(&mut out, p.wall_seconds);
            out.push_str(",\"samples_per_sec\":");
            write_f64(&mut out, p.samples_per_sec);
            out.push_str(",\"speedup_vs_serial\":");
            write_f64(&mut out, self.speedup(p.workers).unwrap_or(1.0));
            out.push_str(",\"prep_busy_seconds\":");
            write_f64(&mut out, p.prep_busy_seconds);
            out.push_str(",\"consumer_wait_seconds\":");
            write_f64(&mut out, p.consumer_wait_seconds);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Run the sweep: one session per worker count, identical in everything but
/// the executor shape.
pub fn run_worker_sweep(cfg: &WorkerSweepConfig) -> WorkerSweepReport {
    let points = cfg
        .worker_counts
        .iter()
        .map(|&workers| run_point(cfg, workers))
        .collect();
    WorkerSweepReport {
        config: cfg.clone(),
        points,
    }
}

fn run_point(cfg: &WorkerSweepConfig, workers: usize) -> WorkerSweepPoint {
    let spec = DatasetSpec::new(
        "worker-sweep",
        cfg.items,
        cfg.avg_item_bytes,
        0.2,
        cfg.decode_multiplier as f64,
    );
    let total_bytes = spec.total_bytes();
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 11));
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            cache_capacity_bytes: total_bytes * 2,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .workers(workers)
    .prefetch_depth(cfg.prefetch_depth)
    .pipeline(ExecutablePipeline::new(
        PrepPipeline::image_classification(),
        cfg.decode_multiplier,
        cfg.seed,
    ))
    .build()
    .expect("valid worker-sweep session");

    let start = Instant::now();
    let mut digest = Fnv::new();
    // Digesting the full prepared payload is the bit-equality proof, but it
    // runs on the consumer thread; keep its cost out of the throughput
    // measurement so the numbers describe the executor, not the checker.
    let mut digest_seconds = 0.0;
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let mb = batch.expect("worker-sweep epochs do not fail");
            let checking = Instant::now();
            digest.u64(mb.epoch);
            digest.u64(mb.index as u64);
            for s in &mb.samples {
                digest.u64(s.item);
                digest.u64(s.augmentation_seed);
                digest.bytes(&s.data);
            }
            digest_seconds += checking.elapsed().as_secs_f64();
        }
    }
    let wall_seconds = (start.elapsed().as_secs_f64() - digest_seconds).max(1e-9);

    let stats = session.stats();
    let tier = session.cache_tier().expect("single-mode tier");
    let report = session.report();
    let delivered = stats.samples_delivered();
    WorkerSweepPoint {
        workers,
        wall_seconds,
        samples_per_sec: delivered as f64 / wall_seconds.max(1e-9),
        stream_digest: digest.finish(),
        counters: [
            stats.bytes_from_storage(),
            stats.bytes_from_cache(),
            stats.bytes_from_remote(),
            stats.samples_prepared(),
            delivered,
        ],
        cache_hits: tier.hits(),
        cache_misses: tier.misses(),
        prep_busy_seconds: report.prep_busy_seconds,
        consumer_wait_seconds: report.consumer_wait_seconds,
    }
}

/// FNV-1a over 8-byte words, the dependency-free hash used for stream
/// digests (shared with the fetch sweep in [`fetchsweep`](crate::fetchsweep)).
/// Word-at-a-time keeps the checker an order of magnitude cheaper than the
/// prep work it verifies while still covering every payload byte.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    pub(crate) fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" differ.
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.word(v);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> WorkerSweepConfig {
        WorkerSweepConfig {
            worker_counts: vec![1, 3],
            items: 96,
            avg_item_bytes: 256,
            decode_multiplier: 4,
            epochs: 2,
            ..WorkerSweepConfig::default()
        }
    }

    #[test]
    fn sweep_points_are_bit_identical_across_worker_counts() {
        let report = run_worker_sweep(&tiny());
        assert_eq!(report.points.len(), 2);
        report
            .bit_identical()
            .expect("executor determinism contract");
        // Every epoch preps the full dataset: counters are exact.
        assert_eq!(report.points[0].counters[4], 2 * 96);
        assert!(report.speedup(3).is_some());
    }

    #[test]
    fn digest_is_sensitive_to_the_seed() {
        let a = run_worker_sweep(&WorkerSweepConfig {
            worker_counts: vec![1],
            ..tiny()
        });
        let b = run_worker_sweep(&WorkerSweepConfig {
            worker_counts: vec![1],
            seed: 0xD00D,
            ..tiny()
        });
        assert_ne!(
            a.digest(),
            b.digest(),
            "different shuffles, different streams"
        );
    }

    #[test]
    fn json_round_trips_and_encodes_the_digest_as_a_string() {
        let report = run_worker_sweep(&WorkerSweepConfig {
            worker_counts: vec![1, 2],
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest().unwrap()));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("workers").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn scaled_config_shrinks_the_item_count_only() {
        let scaled = WorkerSweepConfig::scaled(8);
        assert!(scaled.items < WorkerSweepConfig::default().items);
        assert!(scaled.items >= 256, "smoke points stay prep-dominated");
        assert_eq!(
            scaled.decode_multiplier,
            WorkerSweepConfig::default().decode_multiplier,
            "prep-heaviness is preserved"
        );
        assert_eq!(WorkerSweepConfig::scaled(1).items, 1536, "full fidelity");
    }
}
