//! The readahead × tier-backing sweep over the *real-bytes* I/O path
//! (`coordl::FsBackend` over a [`Vfs`]): the preset behind
//! `dstool sweep fs-sweep` and part of `dstool smoke`.
//!
//! Where `tier-sweep` varies how much of the dataset the cache holds, this
//! sweep varies how the bytes *move*: the dataset is materialized once as a
//! page-aligned packed file and every fetch is a real positional read, with
//! a configurable readahead window (§3's I/O pattern discussion), while the
//! SSD cache level is either memory-backed or persisted through a
//! [`SpillStore`](vfs::SpillStore) on the same VFS.  Three contracts come
//! out of a run:
//!
//! * **a correctness gate** — the delivered stream is a function of the
//!   workload alone: every (readahead, backing) point at every worker count
//!   must produce one identical stream (hashed into `stream_digest` and
//!   checked against `ci/bench_baseline.json`);
//! * **an I/O-shape gate** — the backend's physical read count is exact
//!   counter arithmetic: identical across backings at fixed readahead (the
//!   spill path must never change what the backend reads), and never
//!   increased by a wider readahead window;
//! * **a persistence gate** — vfs-backed points must leave a spill manifest
//!   behind and issue strictly more VFS writes than their memory-backed
//!   twins (the durable shadow is real I/O, not bookkeeping).
//!
//! Wall-clock `measured_device_seconds` ride along informationally next to
//! the modelled seconds — never gated, machine-dependent by design.

use coordl::{ByteTierSpec, FetchBackend, FsBackend, Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use dcache::PolicyKind;
use pipeline::json::{write_f64, write_string};
use prep::{ExecutablePipeline, PrepPipeline};
use std::path::PathBuf;
use std::sync::Arc;
use storage::{AccessPattern, DeviceProfile};
use vfs::{MemVfs, OsVfs, Vfs};

/// CLI name of the runtime preset (`dstool sweep fs-sweep`).
pub const FS_SWEEP_NAME: &str = "fs-sweep";

/// Configuration of one fs sweep.
#[derive(Debug, Clone)]
pub struct FsSweepConfig {
    /// Readahead windows, in pages, the backend is run at.
    pub readahead_pages: Vec<u32>,
    /// SSD-level backings: `false` = in-memory, `true` = persisted to the
    /// VFS through a spill store.
    pub persistent_ssd: Vec<bool>,
    /// Worker counts every point is run at (bit-equality across them).
    pub worker_counts: Vec<usize>,
    /// Items in the synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes.
    pub avg_item_bytes: u64,
    /// Decode expansion factor (kept small: this preset is fetch-shaped).
    pub decode_multiplier: usize,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Epochs per point (epoch 0 is the cold warm-up).
    pub epochs: u64,
    /// DRAM tier capacity as percent of the dataset.
    pub dram_percent: u32,
    /// SSD tier capacity as percent of the dataset.
    pub ssd_percent: u32,
    /// Shuffle + augmentation seed shared by every point.
    pub seed: u64,
    /// When set, points run on an [`OsVfs`] rooted here (one subdirectory
    /// per run) instead of the deterministic in-memory [`MemVfs`].
    pub os_root: Option<PathBuf>,
}

impl Default for FsSweepConfig {
    fn default() -> Self {
        FsSweepConfig {
            readahead_pages: vec![0, 8],
            persistent_ssd: vec![false, true],
            worker_counts: vec![1, 2],
            items: 768,
            avg_item_bytes: 1024,
            decode_multiplier: 4,
            batch_size: 32,
            epochs: 3,
            dram_percent: 25,
            ssd_percent: 35,
            seed: 0xF5D0,
            os_root: None,
        }
    }
}

impl FsSweepConfig {
    /// The default preset with its dataset shrunk by `extra_scale` (pass 1
    /// for full fidelity; `dstool smoke` passes its CI scale).
    pub fn scaled(extra_scale: u64) -> Self {
        let base = FsSweepConfig::default();
        FsSweepConfig {
            items: (base.items / extra_scale.max(1)).max(128),
            ..base
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct FsSweepPoint {
    /// Readahead window in pages.
    pub readahead_pages: u32,
    /// Whether the SSD level was persisted through a spill store.
    pub persistent_ssd: bool,
    /// Steady-state chain hit ratio (all tiers).
    pub steady_hit_ratio: f64,
    /// Steady-state SSD-tier hit ratio.
    pub ssd_hit_ratio: f64,
    /// Steady-state bytes read from the backend per epoch.
    pub steady_disk_bytes: f64,
    /// Backend reads served from the cached readahead span.
    pub span_hits: u64,
    /// Backend reads that issued a physical aligned read.
    pub span_misses: u64,
    /// Positional reads the VFS saw.
    pub vfs_reads: u64,
    /// Positional writes the VFS saw (materialization + spill).
    pub vfs_writes: u64,
    /// Whether the SSD level left a spill manifest on the VFS.
    pub manifest_present: bool,
    /// Modelled device busy seconds (sata-ssd profile; deterministic).
    pub modelled_device_seconds: f64,
    /// Measured wall-clock read seconds (informational, machine-dependent).
    pub measured_device_seconds: f64,
    /// FNV-1a hash of the delivered stream (identical for every point: the
    /// I/O path must never change what is delivered).
    pub stream_digest: u64,
    /// The deterministic counters `[storage, cache, lower, prepared,
    /// delivered]`, identical across worker counts.
    pub counters: [u64; 5],
}

impl FsSweepPoint {
    /// Grid label, e.g. `ra=8p,ssd=vfs`.
    pub fn label(&self) -> String {
        format!(
            "ra={}p,ssd={}",
            self.readahead_pages,
            if self.persistent_ssd { "vfs" } else { "mem" }
        )
    }
}

/// The result of one fs sweep.
#[derive(Debug, Clone)]
pub struct FsSweepReport {
    /// The configuration that produced it.
    pub config: FsSweepConfig,
    /// One point per (readahead, backing) pair, readahead slowest-varying.
    pub points: Vec<FsSweepPoint>,
}

impl FsSweepReport {
    /// The digest shared by every point, if the sweep is bit-identical.
    pub fn digest(&self) -> Option<u64> {
        self.points.first().map(|p| p.stream_digest)
    }

    /// Check the sweep's three contracts (see the [module docs](self)).
    pub fn verify(&self) -> Result<(), String> {
        let Some(first) = self.points.first() else {
            return Err("fs sweep produced no points".to_string());
        };
        for p in &self.points {
            if p.stream_digest != first.stream_digest {
                return Err(format!(
                    "{}: delivered stream differs from {} (digest {:016x} vs {:016x}) — \
                     the I/O path changed what consumers received",
                    p.label(),
                    first.label(),
                    p.stream_digest,
                    first.stream_digest
                ));
            }
            if p.manifest_present != p.persistent_ssd {
                return Err(format!(
                    "{}: spill manifest {} — persistence must follow the backing",
                    p.label(),
                    if p.manifest_present {
                        "present without a vfs backing"
                    } else {
                        "missing"
                    }
                ));
            }
        }
        for &ra in &self.config.readahead_pages {
            let row: Vec<&FsSweepPoint> = self
                .points
                .iter()
                .filter(|p| p.readahead_pages == ra)
                .collect();
            for pair in row.windows(2) {
                if pair[1].span_misses != pair[0].span_misses {
                    return Err(format!(
                        "{} vs {}: physical read counts differ ({} vs {}) — the spill \
                         path changed what the backend reads",
                        pair[1].label(),
                        pair[0].label(),
                        pair[1].span_misses,
                        pair[0].span_misses
                    ));
                }
            }
            if let (Some(mem), Some(vfs)) = (
                row.iter().find(|p| !p.persistent_ssd),
                row.iter().find(|p| p.persistent_ssd),
            ) {
                if vfs.vfs_writes <= mem.vfs_writes {
                    return Err(format!(
                        "{}: {} VFS writes, no more than {}'s {} — the durable \
                         shadow issued no real I/O",
                        vfs.label(),
                        vfs.vfs_writes,
                        mem.label(),
                        mem.vfs_writes
                    ));
                }
            }
        }
        let mut by_ra: Vec<&FsSweepPoint> =
            self.points.iter().filter(|p| !p.persistent_ssd).collect();
        by_ra.sort_by_key(|p| p.readahead_pages);
        for pair in by_ra.windows(2) {
            if pair[1].span_misses > pair[0].span_misses {
                return Err(format!(
                    "{}: {} physical reads, more than {}'s {} — a wider window \
                     must never read more often",
                    pair[1].label(),
                    pair[1].span_misses,
                    pair[0].label(),
                    pair[0].span_misses
                ));
            }
        }
        Ok(())
    }

    /// Serialise through the shared `pipeline::json` emitter (digest as a
    /// hex string, like the worker and tier sweeps).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"preset\":");
        write_string(&mut out, FS_SWEEP_NAME);
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"vfs\":");
        write_string(
            &mut out,
            if self.config.os_root.is_some() {
                "os"
            } else {
                "mem"
            },
        );
        out.push_str(",\"stream_digest\":");
        let digest = self.digest().unwrap_or(0);
        write_string(&mut out, &format!("{digest:016x}"));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            write_string(&mut out, &p.label());
            out.push_str(",\"steady_hit_ratio\":");
            write_f64(&mut out, p.steady_hit_ratio);
            out.push_str(",\"ssd_hit_ratio\":");
            write_f64(&mut out, p.ssd_hit_ratio);
            out.push_str(",\"steady_disk_bytes\":");
            write_f64(&mut out, p.steady_disk_bytes);
            out.push_str(",\"span_hits\":");
            out.push_str(&p.span_hits.to_string());
            out.push_str(",\"span_misses\":");
            out.push_str(&p.span_misses.to_string());
            out.push_str(",\"vfs_reads\":");
            out.push_str(&p.vfs_reads.to_string());
            out.push_str(",\"vfs_writes\":");
            out.push_str(&p.vfs_writes.to_string());
            out.push_str(",\"modelled_device_seconds\":");
            write_f64(&mut out, p.modelled_device_seconds);
            out.push_str(",\"measured_device_seconds\":");
            write_f64(&mut out, p.measured_device_seconds);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Run the sweep: every (readahead, backing) grid point at every worker
/// count, with bit-equality enforced across worker counts point by point.
///
/// # Panics
/// Panics when a point's streams, counters or physical read counts differ
/// across worker counts — the single-fetch-thread determinism contract,
/// not a tolerance.
pub fn run_fs_sweep(cfg: &FsSweepConfig) -> FsSweepReport {
    let mut points = Vec::new();
    for &ra in &cfg.readahead_pages {
        for &persistent in &cfg.persistent_ssd {
            points.push(run_point(cfg, ra, persistent));
        }
    }
    FsSweepReport {
        config: cfg.clone(),
        points,
    }
}

fn run_point(cfg: &FsSweepConfig, readahead: u32, persistent: bool) -> FsSweepPoint {
    let mut measured: Option<FsSweepPoint> = None;
    for &workers in &cfg.worker_counts {
        let point = run_once(cfg, readahead, persistent, workers);
        match &mut measured {
            None => measured = Some(point),
            Some(first) => {
                assert_eq!(
                    point.stream_digest,
                    first.stream_digest,
                    "fs-sweep {}: workers={workers} delivered a different stream",
                    point.label()
                );
                assert_eq!(
                    point.counters,
                    first.counters,
                    "fs-sweep {}: workers={workers} produced different counters",
                    point.label()
                );
                assert_eq!(
                    (point.span_hits, point.span_misses),
                    (first.span_hits, first.span_misses),
                    "fs-sweep {}: workers={workers} issued different physical reads",
                    point.label()
                );
                // Wall clock is the one number allowed to vary: keep the
                // largest observation so the artifact reflects a full run.
                if point.measured_device_seconds > first.measured_device_seconds {
                    first.measured_device_seconds = point.measured_device_seconds;
                }
            }
        }
    }
    measured.expect("worker_counts must not be empty")
}

fn run_once(cfg: &FsSweepConfig, readahead: u32, persistent: bool, workers: usize) -> FsSweepPoint {
    let spec = DatasetSpec::new(
        "fs-sweep",
        cfg.items,
        cfg.avg_item_bytes,
        0.2,
        cfg.decode_multiplier as f64,
    );
    let total_bytes = spec.total_bytes();
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 23));
    // Every run gets a fresh VFS (or a fresh OsVfs subdirectory): the sweep
    // gates cold-start equivalence; warm restarts are pinned elsewhere.
    let fs: Arc<dyn Vfs> = match &cfg.os_root {
        Some(root) => {
            let backing = if persistent { "vfs" } else { "mem" };
            let sub = root.join(format!("ra{readahead}-{backing}-w{workers}"));
            Arc::new(OsVfs::new(sub).expect("fs-sweep OS root must be writable"))
        }
        None => Arc::new(MemVfs::new()),
    };
    let backend = Arc::new(
        FsBackend::new(Arc::clone(&fs), "data", store.as_ref(), readahead)
            .expect("fs-sweep materialization must succeed")
            .with_profile(DeviceProfile::sata_ssd(), AccessPattern::Random),
    );
    let mut ssd = ByteTierSpec::sata_ssd(
        PolicyKind::MinIo,
        total_bytes * cfg.ssd_percent as u64 / 100,
    );
    if persistent {
        ssd = ssd.persistent(Arc::clone(&fs), "ssd");
    }
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            num_workers: workers,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .cache_tiers(vec![
        ByteTierSpec::dram(
            PolicyKind::MinIo,
            total_bytes * cfg.dram_percent as u64 / 100,
        ),
        ssd,
    ])
    .fetch_backend(Arc::clone(&backend) as Arc<dyn FetchBackend>)
    .pipeline(ExecutablePipeline::new(
        PrepPipeline::image_classification(),
        cfg.decode_multiplier,
        cfg.seed,
    ))
    .build()
    .expect("valid fs-sweep session");

    let mut digest = Fnv::new();
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let mb = batch.expect("fs-sweep epochs do not fail");
            digest.u64(mb.epoch);
            digest.u64(mb.index as u64);
            for s in &mb.samples {
                digest.u64(s.item);
                digest.u64(s.augmentation_seed);
                digest.bytes(&s.data);
            }
        }
    }

    let stats = session.stats();
    let report = session.report();
    let vfs_stats = fs.stats();
    FsSweepPoint {
        readahead_pages: readahead,
        persistent_ssd: persistent,
        steady_hit_ratio: report.steady_hit_ratio(),
        ssd_hit_ratio: report.steady_lower_tier_hit_ratio(),
        steady_disk_bytes: report.steady_storage_bytes(),
        span_hits: backend.span_hits(),
        span_misses: backend.span_misses(),
        vfs_reads: vfs_stats.reads,
        vfs_writes: vfs_stats.writes,
        manifest_present: fs.exists("ssd/MANIFEST"),
        modelled_device_seconds: report.device_seconds,
        measured_device_seconds: report.measured_device_seconds,
        stream_digest: digest.finish(),
        counters: [
            stats.bytes_from_storage(),
            stats.bytes_from_cache(),
            stats.bytes_from_lower_tiers(),
            stats.samples_prepared(),
            stats.samples_delivered(),
        ],
    }
}

/// FNV-1a over 8-byte words (the same digest the worker and tier sweeps
/// use).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> FsSweepConfig {
        FsSweepConfig {
            readahead_pages: vec![0, 8],
            persistent_ssd: vec![false, true],
            worker_counts: vec![1, 2],
            items: 160,
            avg_item_bytes: 512,
            epochs: 3,
            ..FsSweepConfig::default()
        }
    }

    #[test]
    fn grid_shares_one_stream_and_spills_are_real_io() {
        let report = run_fs_sweep(&tiny());
        assert_eq!(report.points.len(), 4);
        report.verify().expect("fs sweep contract");
        // The cache still works over real bytes: later epochs hit.
        for p in &report.points {
            assert!(p.steady_hit_ratio > 0.0, "{p:?}");
            assert!(p.ssd_hit_ratio > 0.0, "{p:?}");
            assert!(p.span_misses > 0, "{p:?}");
            assert!(p.modelled_device_seconds > 0.0, "{p:?}");
        }
    }

    #[test]
    fn verify_rejects_a_missing_manifest() {
        let mut report = run_fs_sweep(&FsSweepConfig {
            readahead_pages: vec![0],
            persistent_ssd: vec![true],
            worker_counts: vec![1],
            items: 128,
            ..tiny()
        });
        report.points[0].manifest_present = false;
        let err = report.verify().unwrap_err();
        assert!(err.contains("manifest missing"), "{err}");
    }

    #[test]
    fn json_round_trips_with_hex_digest() {
        let report = run_fs_sweep(&FsSweepConfig {
            readahead_pages: vec![4],
            persistent_ssd: vec![true],
            worker_counts: vec![1],
            items: 128,
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest().unwrap()));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("label").and_then(Value::as_str),
            Some("ra=4p,ssd=vfs")
        );
        assert!(points[0]
            .get("span_misses")
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn scaled_config_shrinks_items_only() {
        let scaled = FsSweepConfig::scaled(4);
        assert!(scaled.items < FsSweepConfig::default().items);
        assert!(scaled.items >= 128);
        assert_eq!(
            scaled.readahead_pages,
            FsSweepConfig::default().readahead_pages
        );
    }
}
