//! The DRAM-fraction × SSD-fraction sweep over the *runtime* cache
//! hierarchy (`coordl::TieredByteCache`): the preset behind
//! `dstool sweep tier-sweep` and part of `dstool smoke`.
//!
//! The grid reproduces the paper's §4.2 / Table 2 point in tiered form: a
//! local SATA SSD (530 MB/s random reads) extends MinIO's reach beyond
//! DRAM, so the chain's steady-state hit ratio tracks the *sum* of the
//! DRAM and SSD fractions — every percent of SSD capacity converts an HDD
//! read into an SSD read.  Two gates come out of a run:
//!
//! * **a correctness gate** — the delivered stream is a function of the
//!   workload alone, never of the cache layout: every grid point at every
//!   worker count must produce one identical stream (hashed into
//!   `stream_digest` and checked against `ci/bench_baseline.json`), and the
//!   deterministic counters must be bit-identical across worker counts;
//! * **a model gate** — per-point steady DRAM/SSD hit ratios are exact
//!   counter arithmetic (no wall clock), so they are compared exactly
//!   against the baseline.

use coordl::{ByteTierSpec, Mode, Session, SessionConfig};
use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
use dcache::PolicyKind;
use pipeline::json::{write_f64, write_string};
use prep::{ExecutablePipeline, PrepPipeline};
use std::sync::Arc;

/// CLI name of the runtime preset (`dstool sweep tier-sweep`).
pub const TIER_SWEEP_NAME: &str = "tier-sweep";

/// Configuration of one tier sweep.
#[derive(Debug, Clone)]
pub struct TierSweepConfig {
    /// DRAM tier capacities as percent of the dataset.
    pub dram_percents: Vec<u32>,
    /// SSD tier capacities as percent of the dataset (0 = no SSD tier).
    pub ssd_percents: Vec<u32>,
    /// Worker counts every point is run at (bit-equality across them).
    pub worker_counts: Vec<usize>,
    /// Items in the synthetic dataset.
    pub items: u64,
    /// Average raw item size in bytes.
    pub avg_item_bytes: u64,
    /// Decode expansion factor (kept small: this preset is fetch-shaped).
    pub decode_multiplier: usize,
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Epochs per point (epoch 0 is the cold warm-up).
    pub epochs: u64,
    /// Shuffle + augmentation seed shared by every point.
    pub seed: u64,
}

impl Default for TierSweepConfig {
    fn default() -> Self {
        TierSweepConfig {
            dram_percents: vec![15, 35, 55],
            ssd_percents: vec![0, 25, 50],
            worker_counts: vec![1, 2],
            items: 1024,
            avg_item_bytes: 1024,
            decode_multiplier: 4,
            batch_size: 32,
            epochs: 3,
            seed: 0x71E5,
        }
    }
}

impl TierSweepConfig {
    /// The default preset with its dataset shrunk by `extra_scale` (pass 1
    /// for full fidelity; `dstool smoke` passes its CI scale).
    pub fn scaled(extra_scale: u64) -> Self {
        let base = TierSweepConfig::default();
        TierSweepConfig {
            items: (base.items / extra_scale.max(1)).max(128),
            ..base
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct TierSweepPoint {
    /// DRAM tier size as percent of the dataset.
    pub dram_percent: u32,
    /// SSD tier size as percent of the dataset.
    pub ssd_percent: u32,
    /// Steady-state chain hit ratio (all tiers).
    pub steady_hit_ratio: f64,
    /// Steady-state DRAM-tier hit ratio.
    pub dram_hit_ratio: f64,
    /// Steady-state SSD-tier hit ratio.
    pub ssd_hit_ratio: f64,
    /// Steady-state bytes read from the backend per epoch.
    pub steady_disk_bytes: f64,
    /// FNV-1a hash of the delivered stream (identical for every point: the
    /// cache layout must never change what is delivered).
    pub stream_digest: u64,
    /// The deterministic counters `[storage, cache, lower, prepared,
    /// delivered]`, identical across worker counts.
    pub counters: [u64; 5],
}

impl TierSweepPoint {
    /// Grid label, e.g. `dram=35%,ssd=25%`.
    pub fn label(&self) -> String {
        format!("dram={}%,ssd={}%", self.dram_percent, self.ssd_percent)
    }
}

/// The result of one tier sweep.
#[derive(Debug, Clone)]
pub struct TierSweepReport {
    /// The configuration that produced it.
    pub config: TierSweepConfig,
    /// One point per (dram, ssd) pair, dram slowest-varying.
    pub points: Vec<TierSweepPoint>,
}

impl TierSweepReport {
    /// The digest shared by every point, if the sweep is bit-identical.
    pub fn digest(&self) -> Option<u64> {
        self.points.first().map(|p| p.stream_digest)
    }

    /// Check the hierarchy's correctness contract: one stream for the whole
    /// grid (the cache layout is invisible to consumers), and the "SSD
    /// extends MinIO reach" shape (at fixed DRAM, more SSD never lowers the
    /// chain hit ratio, and a non-empty SSD tier strictly raises it).
    pub fn verify(&self) -> Result<(), String> {
        let Some(first) = self.points.first() else {
            return Err("tier sweep produced no points".to_string());
        };
        for p in &self.points {
            if p.stream_digest != first.stream_digest {
                return Err(format!(
                    "{}: delivered stream differs from {} (digest {:016x} vs {:016x}) — \
                     the cache hierarchy changed what consumers received",
                    p.label(),
                    first.label(),
                    p.stream_digest,
                    first.stream_digest
                ));
            }
        }
        for dram in &self.config.dram_percents {
            let mut row: Vec<&TierSweepPoint> = self
                .points
                .iter()
                .filter(|p| p.dram_percent == *dram)
                .collect();
            row.sort_by_key(|p| p.ssd_percent);
            for pair in row.windows(2) {
                if pair[1].steady_hit_ratio + 1e-9 < pair[0].steady_hit_ratio {
                    return Err(format!(
                        "{}: hit ratio {:.4} fell below {}'s {:.4} — more SSD must \
                         never serve less",
                        pair[1].label(),
                        pair[1].steady_hit_ratio,
                        pair[0].label(),
                        pair[0].steady_hit_ratio
                    ));
                }
                if pair[1].ssd_percent > 0 && pair[1].ssd_hit_ratio <= 0.0 {
                    return Err(format!(
                        "{}: a non-empty SSD tier served no hits",
                        pair[1].label()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialise through the shared `pipeline::json` emitter (digest as a
    /// hex string, like the worker sweep).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"preset\":");
        write_string(&mut out, TIER_SWEEP_NAME);
        out.push_str(",\"items\":");
        out.push_str(&self.config.items.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.config.epochs.to_string());
        out.push_str(",\"stream_digest\":");
        let digest = self.digest().unwrap_or(0);
        write_string(&mut out, &format!("{digest:016x}"));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            write_string(&mut out, &p.label());
            out.push_str(",\"steady_hit_ratio\":");
            write_f64(&mut out, p.steady_hit_ratio);
            out.push_str(",\"dram_hit_ratio\":");
            write_f64(&mut out, p.dram_hit_ratio);
            out.push_str(",\"ssd_hit_ratio\":");
            write_f64(&mut out, p.ssd_hit_ratio);
            out.push_str(",\"steady_disk_bytes\":");
            write_f64(&mut out, p.steady_disk_bytes);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Run the sweep: every (dram, ssd) grid point at every worker count, with
/// bit-equality enforced across worker counts point by point.
///
/// # Panics
/// Panics when a point's streams or counters differ across worker counts —
/// that is the executor/hierarchy determinism contract, not a tolerance.
pub fn run_tier_sweep(cfg: &TierSweepConfig) -> TierSweepReport {
    let mut points = Vec::new();
    for &dram in &cfg.dram_percents {
        for &ssd in &cfg.ssd_percents {
            points.push(run_point(cfg, dram, ssd));
        }
    }
    TierSweepReport {
        config: cfg.clone(),
        points,
    }
}

fn run_point(cfg: &TierSweepConfig, dram_percent: u32, ssd_percent: u32) -> TierSweepPoint {
    let mut measured: Option<TierSweepPoint> = None;
    for &workers in &cfg.worker_counts {
        let point = run_once(cfg, dram_percent, ssd_percent, workers);
        match &measured {
            None => measured = Some(point),
            Some(first) => {
                assert_eq!(
                    point.stream_digest,
                    first.stream_digest,
                    "tier-sweep {}: workers={workers} delivered a different stream",
                    point.label()
                );
                assert_eq!(
                    point.counters,
                    first.counters,
                    "tier-sweep {}: workers={workers} produced different counters",
                    point.label()
                );
            }
        }
    }
    measured.expect("worker_counts must not be empty")
}

fn run_once(
    cfg: &TierSweepConfig,
    dram_percent: u32,
    ssd_percent: u32,
    workers: usize,
) -> TierSweepPoint {
    let spec = DatasetSpec::new(
        "tier-sweep",
        cfg.items,
        cfg.avg_item_bytes,
        0.2,
        cfg.decode_multiplier as f64,
    );
    let total_bytes = spec.total_bytes();
    let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 23));
    let session = Session::builder(
        store,
        SessionConfig {
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            num_workers: workers,
            ..SessionConfig::default()
        },
    )
    .mode(Mode::Single)
    .cache_tiers(vec![
        ByteTierSpec::dram(PolicyKind::MinIo, total_bytes * dram_percent as u64 / 100),
        ByteTierSpec::sata_ssd(PolicyKind::MinIo, total_bytes * ssd_percent as u64 / 100),
    ])
    .pipeline(ExecutablePipeline::new(
        PrepPipeline::image_classification(),
        cfg.decode_multiplier,
        cfg.seed,
    ))
    .build()
    .expect("valid tier-sweep session");

    let mut digest = Fnv::new();
    for epoch in 0..cfg.epochs {
        let run = session.epoch(epoch);
        for batch in run.stream(0) {
            let mb = batch.expect("tier-sweep epochs do not fail");
            digest.u64(mb.epoch);
            digest.u64(mb.index as u64);
            for s in &mb.samples {
                digest.u64(s.item);
                digest.u64(s.augmentation_seed);
                digest.bytes(&s.data);
            }
        }
    }

    let stats = session.stats();
    let report = session.report();
    TierSweepPoint {
        dram_percent,
        ssd_percent,
        steady_hit_ratio: report.steady_hit_ratio(),
        dram_hit_ratio: report.steady_dram_hit_ratio(),
        ssd_hit_ratio: report.steady_lower_tier_hit_ratio(),
        steady_disk_bytes: report.steady_storage_bytes(),
        stream_digest: digest.finish(),
        counters: [
            stats.bytes_from_storage(),
            stats.bytes_from_cache(),
            stats.bytes_from_lower_tiers(),
            stats.samples_prepared(),
            stats.samples_delivered(),
        ],
    }
}

/// FNV-1a over 8-byte words (the same digest the worker sweep uses).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn tiny() -> TierSweepConfig {
        TierSweepConfig {
            dram_percents: vec![20, 40],
            ssd_percents: vec![0, 30],
            worker_counts: vec![1, 2],
            items: 160,
            avg_item_bytes: 256,
            epochs: 3,
            ..TierSweepConfig::default()
        }
    }

    #[test]
    fn grid_shares_one_stream_and_ssd_extends_reach() {
        let report = run_tier_sweep(&tiny());
        assert_eq!(report.points.len(), 4);
        report.verify().expect("hierarchy contract");
        // The ssd=0 points behave like flat MinIO: hit ratio ~ dram percent.
        let flat = report
            .points
            .iter()
            .find(|p| p.dram_percent == 40 && p.ssd_percent == 0)
            .unwrap();
        assert!((flat.steady_hit_ratio - 0.40).abs() < 0.06, "{flat:?}");
        assert_eq!(flat.ssd_hit_ratio, 0.0);
        // dram=40,ssd=30 reaches ~70 %.
        let tiered = report
            .points
            .iter()
            .find(|p| p.dram_percent == 40 && p.ssd_percent == 30)
            .unwrap();
        assert!((tiered.steady_hit_ratio - 0.70).abs() < 0.06, "{tiered:?}");
        assert!(tiered.steady_disk_bytes < flat.steady_disk_bytes);
    }

    #[test]
    fn verify_rejects_divergent_streams() {
        let mut report = run_tier_sweep(&TierSweepConfig {
            dram_percents: vec![20],
            ssd_percents: vec![0, 30],
            worker_counts: vec![1],
            items: 128,
            avg_item_bytes: 128,
            ..tiny()
        });
        report.points[1].stream_digest ^= 1;
        let err = report.verify().unwrap_err();
        assert!(err.contains("delivered stream differs"), "{err}");
    }

    #[test]
    fn json_round_trips_with_hex_digest() {
        let report = run_tier_sweep(&TierSweepConfig {
            dram_percents: vec![25],
            ssd_percents: vec![25],
            worker_counts: vec![1],
            items: 128,
            avg_item_bytes: 128,
            ..tiny()
        });
        let doc = parse(&report.to_json()).expect("valid JSON");
        let digest = doc.get("stream_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest, format!("{:016x}", report.digest().unwrap()));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("label").and_then(Value::as_str),
            Some("dram=25%,ssd=25%")
        );
        assert!(points[0]
            .get("dram_hit_ratio")
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn scaled_config_shrinks_items_only() {
        let scaled = TierSweepConfig::scaled(4);
        assert!(scaled.items < TierSweepConfig::default().items);
        assert!(scaled.items >= 128);
        assert_eq!(
            scaled.dram_percents,
            TierSweepConfig::default().dram_percents
        );
    }
}
