//! Canned DALI-vs-CoorDL comparisons used by most figure benches.
//!
//! The paper's evaluation always compares CoorDL against DALI-shuffle (its
//! strongest baseline, §5.1) on the same model, dataset, cache size and
//! hardware; these helpers run both sides of that comparison through the
//! unified [`Experiment`] API so the bench binaries only describe the sweep
//! axes.

use crate::presets::EPOCHS;
use dataset::DatasetSpec;
use gpu::ModelKind;
use pipeline::{
    EpochMetrics, Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig, SimReport,
};

/// Run one single-server job for [`EPOCHS`] epochs.
pub fn single_run(
    server: &ServerConfig,
    model: ModelKind,
    dataset: &DatasetSpec,
    loader: LoaderConfig,
    num_gpus: usize,
) -> SimReport {
    Experiment::on(server)
        .job(JobSpec::new(model, dataset.clone(), num_gpus, loader))
        .scenario(Scenario::SingleServer)
        .epochs(EPOCHS)
        .run()
}

/// Steady-state (post-warm-up) metrics of a single-server run.
pub fn steady(report: &SimReport) -> EpochMetrics {
    report.steady_state()
}

/// The two sides of a single-server comparison.
#[derive(Debug, Clone)]
pub struct SinglePair {
    /// Baseline: DALI-shuffle with the best prep backend for the model.
    pub dali: SimReport,
    /// CoorDL with the same prep backend.
    pub coordl: SimReport,
}

impl SinglePair {
    /// CoorDL's steady-state speedup over the DALI baseline.
    pub fn speedup(&self) -> f64 {
        self.coordl.speedup_over(&self.dali)
    }
}

/// Run the paper's standard single-server comparison: DALI-shuffle vs CoorDL,
/// all eight GPUs, cache sized to `cache_fraction` of `dataset`.
pub fn single_pair(
    server: &ServerConfig,
    model: ModelKind,
    dataset: &DatasetSpec,
    cache_fraction: f64,
) -> SinglePair {
    let server = server.with_cache_fraction(dataset.total_bytes(), cache_fraction);
    let gpus = server.num_gpus;
    SinglePair {
        dali: single_run(
            &server,
            model,
            dataset,
            LoaderConfig::dali_best(model),
            gpus,
        ),
        coordl: single_run(
            &server,
            model,
            dataset,
            LoaderConfig::coordl_best(model),
            gpus,
        ),
    }
}

/// Build `num_jobs` identical HP-search jobs (distinct shuffle seeds), each
/// using `gpus_per_job` GPUs.
pub fn hp_jobs(
    model: ModelKind,
    dataset: &DatasetSpec,
    loader: LoaderConfig,
    num_jobs: usize,
    gpus_per_job: usize,
) -> Vec<JobSpec> {
    (0..num_jobs)
        .map(|j| {
            JobSpec::new(model, dataset.clone(), gpus_per_job, loader.clone())
                .with_seed(0xC0DE + j as u64)
        })
        .collect()
}

/// Run one HP-search ensemble for [`EPOCHS`] epochs.
pub fn hp_run(server: &ServerConfig, jobs: Vec<JobSpec>, epochs: u64) -> SimReport {
    let n = jobs.len();
    Experiment::on(server)
        .jobs(jobs)
        .scenario(Scenario::HpSearch { jobs: n })
        .epochs(epochs)
        .run()
}

/// Run the paper's standard HP-search comparison: `num_jobs` single-GPU jobs
/// with DALI vs with CoorDL's coordinated prep.
pub fn hp_pair(
    server: &ServerConfig,
    model: ModelKind,
    dataset: &DatasetSpec,
    cache_fraction: f64,
    num_jobs: usize,
) -> (SimReport, SimReport) {
    let server = server.with_cache_fraction(dataset.total_bytes(), cache_fraction);
    let gpus_per_job = server.num_gpus / num_jobs.max(1);
    let dali = hp_run(
        &server,
        hp_jobs(
            model,
            dataset,
            LoaderConfig::dali_best(model),
            num_jobs,
            gpus_per_job.max(1),
        ),
        EPOCHS,
    );
    let coordl = hp_run(
        &server,
        hp_jobs(
            model,
            dataset,
            LoaderConfig::coordl_best(model),
            num_jobs,
            gpus_per_job.max(1),
        ),
        EPOCHS,
    );
    (dali, coordl)
}

/// Run one distributed job for `epochs` epochs.
pub fn distributed_run(
    server: &ServerConfig,
    job: JobSpec,
    num_servers: usize,
    epochs: u64,
) -> SimReport {
    Experiment::on(server)
        .job(job)
        .scenario(Scenario::Distributed {
            servers: num_servers,
        })
        .epochs(epochs)
        .run()
}

/// Run the paper's standard distributed comparison: one data-parallel job
/// across `num_servers` servers, DALI vs CoorDL (partitioned caching).
pub fn distributed_pair(
    server: &ServerConfig,
    model: ModelKind,
    dataset: &DatasetSpec,
    cache_fraction: f64,
    num_servers: usize,
) -> (SimReport, SimReport) {
    let server = server.with_cache_fraction(dataset.total_bytes(), cache_fraction);
    let gpus = server.num_gpus;
    let dali = distributed_run(
        &server,
        JobSpec::new(model, dataset.clone(), gpus, LoaderConfig::dali_best(model)),
        num_servers,
        EPOCHS,
    );
    let coordl = distributed_run(
        &server,
        JobSpec::new(
            model,
            dataset.clone(),
            gpus,
            LoaderConfig::coordl_best(model),
        ),
        num_servers,
        EPOCHS,
    );
    (dali, coordl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{scaled, server_ssd};

    fn small() -> DatasetSpec {
        scaled(DatasetSpec::imagenet_1k()).scaled(8)
    }

    #[test]
    fn single_pair_favours_coordl_when_fetch_bound() {
        let ds = small();
        let server = server_ssd(&ds, 0.35);
        let pair = single_pair(&server, ModelKind::ShuffleNetV2, &ds, 0.35);
        assert!(
            pair.speedup() >= 1.0,
            "CoorDL should not be slower: {}",
            pair.speedup()
        );
    }

    #[test]
    fn hp_jobs_have_distinct_seeds() {
        let ds = small();
        let jobs = hp_jobs(ModelKind::ResNet18, &ds, LoaderConfig::pytorch_dl(), 4, 1);
        assert_eq!(jobs.len(), 4);
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn distributed_pair_reduces_disk_io_with_coordl() {
        let ds = small();
        let server = server_ssd(&ds, 0.6);
        let (dali, coordl) = distributed_pair(&server, ModelKind::ResNet18, &ds, 0.6, 2);
        let dali_disk: u64 = dali.disk_bytes_per_server(2).iter().sum();
        let coordl_disk: u64 = coordl.disk_bytes_per_server(2).iter().sum();
        assert!(
            coordl_disk <= dali_disk,
            "partitioned caching should not increase disk I/O ({coordl_disk} vs {dali_disk})"
        );
    }
}
