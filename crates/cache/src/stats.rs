//! Hit/miss accounting shared by every cache policy.

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The item was resident.
    Hit,
    /// The item was not resident and has been admitted.
    Inserted,
    /// The item was not resident and was *not* admitted (e.g. the MinIO cache
    /// is full, or the item is larger than the total capacity).
    Bypassed,
}

impl AccessOutcome {
    /// True for both kinds of miss.
    pub fn is_miss(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }

    /// True when the item was found resident.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of misses that resulted in an insertion.
    pub insertions: u64,
    /// Number of items evicted to make room.
    pub evictions: u64,
    /// Bytes served from the cache.
    pub bytes_hit: u64,
    /// Bytes that had to come from the next tier (storage or remote cache).
    pub bytes_missed: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Record a hit of `size` bytes.
    pub fn record_hit(&mut self, size: u64) {
        self.hits += 1;
        self.bytes_hit += size;
    }

    /// Record a miss of `size` bytes; `inserted` says whether it was admitted.
    pub fn record_miss(&mut self, size: u64, inserted: bool) {
        self.misses += 1;
        self.bytes_missed += size;
        if inserted {
            self.insertions += 1;
        }
    }

    /// Record `n` evictions.
    pub fn record_evictions(&mut self, n: u64) {
        self.evictions += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        assert!(AccessOutcome::Inserted.is_miss());
        assert!(AccessOutcome::Bypassed.is_miss());
    }

    #[test]
    fn ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
        s.record_hit(10);
        s.record_hit(10);
        s.record_miss(5, true);
        s.record_miss(5, false);
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.bytes_hit, 20);
        assert_eq!(s.bytes_missed, 10);
    }
}
