//! Rendezvous (highest-random-weight) hashing for shard rebalancing.
//!
//! When a partitioned cluster loses a node, every item the directory mapped
//! to it needs a new preferred home.  Rendezvous hashing gives each
//! `(item, node)` pair a deterministic score and ranks the nodes per item by
//! descending score; removing a node only re-homes the items that ranked it
//! first, which is exactly the minimal-disruption property consistent
//! hashing is used for.  Both the runtime cluster and the simulator resolve
//! the *same* preference order, so predicted and empirical rebalancing
//! agree.

/// Mix the bits of `z` (the SplitMix64 finalizer, the workspace's standard).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous weight of placing `item` on `node`: a pure function of the
/// pair, uniform across both arguments.
pub fn rendezvous_score(item: u64, node: usize) -> u64 {
    mix(item
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1)
        .wrapping_mul(
            (node as u64)
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add(0xC0DA),
        ))
}

/// All nodes of a `nodes`-strong cluster ranked by descending rendezvous
/// score for `item` (ties broken by ascending node id).  The first entry is
/// the item's preferred home; later entries are fallbacks.
pub fn rendezvous_order(item: u64, nodes: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..nodes).collect();
    order.sort_by_key(|&n| (std::cmp::Reverse(rendezvous_score(item, n)), n));
    order
}

/// The highest-scoring node for `item` among `candidates` (`None` when the
/// candidate set is empty).  Equivalent to filtering [`rendezvous_order`]
/// down to `candidates` and taking the head, without the allocation.
pub fn rendezvous_pick(item: u64, candidates: &[usize]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .min_by_key(|&n| (std::cmp::Reverse(rendezvous_score(item, n)), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_deterministic_and_a_permutation() {
        let a = rendezvous_order(1234, 8);
        let b = rendezvous_order(1234, 8);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pick_agrees_with_order() {
        for item in 0..200u64 {
            let order = rendezvous_order(item, 5);
            let all: Vec<usize> = (0..5).collect();
            assert_eq!(rendezvous_pick(item, &all), Some(order[0]));
            // Restricting the candidate set takes the first surviving
            // preference — the property rebalancing relies on.
            let survivors: Vec<usize> = all.iter().copied().filter(|&n| n != order[0]).collect();
            assert_eq!(rendezvous_pick(item, &survivors), Some(order[1]));
        }
        assert_eq!(rendezvous_pick(7, &[]), None);
    }

    #[test]
    fn removing_a_node_only_rehomes_its_own_items() {
        // The minimal-disruption property: items not homed on the removed
        // node keep their placement.
        let all: Vec<usize> = (0..6).collect();
        let survivors: Vec<usize> = (0..6).filter(|&n| n != 3).collect();
        for item in 0..500u64 {
            let before = rendezvous_pick(item, &all).unwrap();
            let after = rendezvous_pick(item, &survivors).unwrap();
            if before != 3 {
                assert_eq!(before, after, "item {item} moved needlessly");
            }
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let all: Vec<usize> = (0..4).collect();
        let mut counts = [0usize; 4];
        for item in 0..4000u64 {
            counts[rendezvous_pick(item, &all).unwrap()] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "node {n} got {c} of 4000 items — not balanced: {counts:?}"
            );
        }
    }
}
