//! Cache substrate: the software caches that sit between DNN training and
//! storage.
//!
//! The paper's analysis shows that the OS page cache (an LRU variant) is a
//! poor fit for the DNN access pattern — every item is accessed exactly once
//! per epoch in a fresh random order — because items are evicted before they
//! are used again, producing *thrashing*.  CoorDL's **MinIO** cache exploits
//! the fact that all items have the same access probability: it caches items
//! as they are first fetched, never evicts, and therefore turns every cached
//! item into exactly one hit per epoch (the minimum possible amount of disk
//! I/O).
//!
//! This crate provides:
//!
//! * the [`Cache`] trait and byte-capacity [`CacheStats`] accounting,
//! * policy implementations: [`LruCache`], [`FifoCache`], [`ClockCache`]
//!   (page-cache stand-ins) and [`MinIoCache`],
//! * [`PartitionedIndex`] — the shard directory used by CoorDL's partitioned
//!   cache for distributed training,
//! * fault machinery for chaos testing that directory: deterministic
//!   membership schedules ([`fault_schedule`]) and rendezvous hashing
//!   ([`rendezvous_order`]) for rebalancing when a node dies.

pub mod fault;
pub mod hierarchy;
pub mod partitioned;
pub mod policy;
pub mod ring;
pub mod sharded;
pub mod stats;

pub use fault::{fault_schedule, FaultEvent, FaultKind};
pub use hierarchy::{ChainAccess, ChainSource, DemotionStats, TierChain, TierCost, TierSpec};
pub use partitioned::{Location, PartitionedIndex, ServerId};
pub use policy::{ClockCache, FifoCache, LruCache, MinIoCache, PolicyKind};
pub use ring::{rendezvous_order, rendezvous_pick, rendezvous_score};
pub use sharded::{shard_of_key, ShardedChain};
pub use stats::{AccessOutcome, CacheStats};

use std::hash::Hash;

/// A byte-capacity cache of opaque items.
///
/// `access` performs a combined lookup-and-admit: on a miss, the policy
/// decides whether to insert the item (possibly evicting others).  This
/// mirrors how both the OS page cache and the MinIO cache behave during
/// training: every item read from storage is offered to the cache.
pub trait Cache<K: Hash + Eq + Clone> {
    /// Look up `key` (an item of `size` bytes). Records statistics and admits
    /// the item on a miss according to the policy.
    fn access(&mut self, key: K, size: u64) -> AccessOutcome;

    /// Whether `key` is currently resident.
    fn contains(&self, key: &K) -> bool;

    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Number of resident items.
    fn len(&self) -> usize;

    /// True when no items are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative statistics since the last [`Cache::reset_stats`].
    fn stats(&self) -> &CacheStats;

    /// Reset statistics (e.g. at an epoch boundary) without touching contents.
    fn reset_stats(&mut self);

    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Enable or disable victim logging for [`Cache::take_evicted`].
    ///
    /// Off by default so plain simulations pay no memory for evictions they
    /// never inspect; byte-holding wrappers turn it on at construction.
    /// Policies that never evict ignore it.
    fn set_eviction_tracking(&mut self, _enabled: bool) {}

    /// Keys evicted since the last call, in eviction order.
    ///
    /// Byte-holding wrappers (the CoorDL runtime's `PolicyByteCache`) use
    /// this to drop the payloads of evicted entries.  Returns nothing unless
    /// [`Cache::set_eviction_tracking`] was enabled first.
    fn take_evicted(&mut self) -> Vec<K> {
        Vec::new()
    }

    /// Administratively remove `key`, returning its resident size.
    ///
    /// Removal is not an eviction: it records no statistics and does not
    /// appear in the [`Cache::take_evicted`] victim log.  It exists for
    /// external lifecycle events — a multi-tenant server reclaiming a
    /// departed tenant's bytes — rather than for the policy's own decisions.
    fn remove(&mut self, key: &K) -> Option<u64>;
}

/// Construct a boxed cache of the given policy kind and capacity, keyed by
/// `u64` item ids (the representation used throughout the simulator).
pub fn build_cache(kind: PolicyKind, capacity_bytes: u64) -> Box<dyn Cache<u64> + Send> {
    match kind {
        PolicyKind::Lru => Box::new(LruCache::new(capacity_bytes)),
        PolicyKind::Fifo => Box::new(FifoCache::new(capacity_bytes)),
        PolicyKind::Clock => Box::new(ClockCache::new(capacity_bytes)),
        PolicyKind::MinIo => Box::new(MinIoCache::new(capacity_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cache_constructs_each_policy() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Clock,
            PolicyKind::MinIo,
        ] {
            let mut c = build_cache(kind, 100);
            assert_eq!(c.capacity_bytes(), 100);
            assert!(c.is_empty());
            c.access(1, 10);
            assert_eq!(c.len(), 1);
        }
    }
}
