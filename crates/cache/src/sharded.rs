//! A concurrent, sharded [`TierChain`]: the cache hierarchy a multi-tenant
//! server shares between concurrently running sessions.
//!
//! [`ShardedChain`] splits each tier's capacity across `num_shards`
//! independent [`TierChain`]s, each behind its own mutex, and routes every
//! key to one shard by a mixed hash.  Two properties make this the right
//! concurrency story for the workspace's determinism contract:
//!
//! * **a 1-shard chain is the chain**: with `num_shards == 1` every call
//!   locks the single inner [`TierChain`] and forwards verbatim, so the
//!   sharded wrapper is bit-identical to the single-owner hierarchy (pinned
//!   by tests below) — the existing deterministic path is unchanged;
//! * **key-disjoint locking**: a key's residency, statistics and demotion
//!   state live entirely inside its shard, so concurrent accesses to
//!   different shards never interleave observable state, and accesses to the
//!   same key serialize on one lock.
//!
//! Lock poisoning is deliberately swallowed (`PoisonError::into_inner`): a
//! panicking tenant thread must not take the shared hierarchy down with it —
//! the chain's state is updated atomically under the lock (no partial
//! multi-step invariants span a panic point on the access path).

use crate::hierarchy::{ChainAccess, DemotionStats, TierChain, TierSpec};
use crate::stats::CacheStats;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A `TierChain` split into independently locked shards by key hash.
///
/// See the [module docs](self) for the concurrency contract.
pub struct ShardedChain {
    shards: Vec<Mutex<TierChain>>,
    /// The *aggregate* tier specs (full capacities, before the per-shard
    /// split), used for reporting.
    specs: Vec<TierSpec>,
}

/// SplitMix64 finalizer: decorrelates sequential item ids so shards fill
/// uniformly even under strided key namespaces.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical shard routing: which of `num_shards` buckets `key` belongs
/// to.  Every layer that partitions cache state by key — [`ShardedChain`],
/// the runtime's sharded `TieredByteCache`, and the parallel fetch pool's
/// thread-ownership map — MUST route through this one function, so a key's
/// tier transactions always land on the same shard (and therefore the same
/// owning lock/thread) no matter which layer asks.
///
/// # Panics
/// Panics when `num_shards` is zero.
pub fn shard_of_key(key: u64, num_shards: usize) -> usize {
    assert!(num_shards > 0, "shard routing needs at least one shard");
    (mix(key) % num_shards as u64) as usize
}

impl ShardedChain {
    /// Build `num_shards` chains from `tiers`, splitting each tier's
    /// capacity evenly across shards (remainder bytes go to the first
    /// shards, so the aggregate capacity is exact).
    ///
    /// # Panics
    /// Panics when `tiers` is empty or `num_shards` is zero.
    pub fn new(tiers: Vec<TierSpec>, num_shards: usize) -> Self {
        assert!(num_shards > 0, "a sharded chain needs at least one shard");
        assert!(!tiers.is_empty(), "a tier chain needs at least one tier");
        let shards = (0..num_shards)
            .map(|shard| {
                let shard_specs = tiers
                    .iter()
                    .map(|t| {
                        let base = t.capacity_bytes / num_shards as u64;
                        let extra =
                            u64::from((shard as u64) < t.capacity_bytes % num_shards as u64);
                        TierSpec {
                            capacity_bytes: base + extra,
                            ..*t
                        }
                    })
                    .collect();
                Mutex::new(TierChain::new(shard_specs))
            })
            .collect();
        ShardedChain {
            shards,
            specs: tiers,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of tiers (levels) in every shard.
    pub fn num_tiers(&self) -> usize {
        self.specs.len()
    }

    /// The aggregate (pre-split) spec of tier `k`.
    pub fn tier_spec(&self, k: usize) -> &TierSpec {
        &self.specs[k]
    }

    /// Which shard `key` routes to.  Deterministic (see [`shard_of_key`]),
    /// so byte-holding wrappers can co-shard their payload maps.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.shards.len())
    }

    fn shard(&self, idx: usize) -> MutexGuard<'_, TierChain> {
        // A tenant thread that panicked mid-lock must not poison the shared
        // hierarchy for every other tenant; chain state never spans a panic
        // point partially (see module docs).
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// [`TierChain::access`] on `key`'s shard.
    pub fn access(&self, key: u64, size: u64) -> ChainAccess {
        self.shard(self.shard_of(key)).access(key, size)
    }

    /// [`TierChain::access_with_floor`] on `key`'s shard.
    pub fn access_with_floor(&self, key: u64, size: u64, floor: usize) -> ChainAccess {
        self.shard(self.shard_of(key))
            .access_with_floor(key, size, floor)
    }

    /// [`TierChain::locate`] on `key`'s shard.
    pub fn locate(&self, key: u64) -> Option<usize> {
        self.shard(self.shard_of(key)).locate(key)
    }

    /// [`TierChain::remove`] on `key`'s shard.
    pub fn remove(&self, key: u64) -> Option<u64> {
        self.shard(self.shard_of(key)).remove(key)
    }

    /// Whether `key` is resident in any tier of its shard.
    pub fn contains(&self, key: u64) -> bool {
        self.shard(self.shard_of(key)).contains(key)
    }

    /// Distinct resident keys across all shards.
    pub fn resident_items(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard(s).resident_items())
            .sum()
    }

    /// Sum of per-tier resident bytes across all shards.
    pub fn used_bytes(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.shard(s).used_bytes())
            .sum()
    }

    /// Sum of per-tier capacities (equals the pre-split aggregate).
    pub fn capacity_bytes(&self) -> u64 {
        self.specs.iter().map(|t| t.capacity_bytes).sum()
    }

    /// Bytes resident in tier `k`, summed across shards.
    pub fn tier_used_bytes(&self, k: usize) -> u64 {
        (0..self.shards.len())
            .map(|s| self.shard(s).tier_used_bytes(k))
            .sum()
    }

    /// Items resident in tier `k`, summed across shards.
    pub fn tier_len(&self, k: usize) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard(s).tier_len(k))
            .sum()
    }

    /// Fetch-path statistics of tier `k`, summed across shards.
    pub fn tier_stats(&self, k: usize) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in 0..self.shards.len() {
            let shard = self.shard(s);
            let stats = shard.tier_stats(k);
            agg.hits += stats.hits;
            agg.misses += stats.misses;
            agg.insertions += stats.insertions;
            agg.evictions += stats.evictions;
            agg.bytes_hit += stats.bytes_hit;
            agg.bytes_missed += stats.bytes_missed;
        }
        agg
    }

    /// Demotion counters of tier `k`, summed across shards.
    pub fn tier_demotions(&self, k: usize) -> DemotionStats {
        let mut agg = DemotionStats::default();
        for s in 0..self.shards.len() {
            let d = self.shard(s).tier_demotions(k);
            agg.demoted_in += d.demoted_in;
            agg.demoted_out += d.demoted_out;
        }
        agg
    }

    /// Total fetch-path hits across tiers and shards.
    pub fn hits(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.shard(s).hits()).sum()
    }

    /// Fetch-path accesses that missed every tier, across shards.
    pub fn store_misses(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.shard(s).store_misses())
            .sum()
    }

    /// Reset fetch-path and policy statistics on every shard.
    pub fn reset_stats(&self) {
        for s in 0..self.shards.len() {
            self.shard(s).reset_stats();
        }
    }
}

impl std::fmt::Debug for ShardedChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChain")
            .field("shards", &self.shards.len())
            .field("tiers", &self.specs.len())
            .field("resident_items", &self.resident_items())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{ChainSource, TierCost};
    use crate::PolicyKind;
    use std::sync::Arc;

    fn spec(name: &'static str, policy: PolicyKind, cap: u64) -> TierSpec {
        TierSpec {
            name,
            policy,
            capacity_bytes: cap,
            cost: TierCost {
                bandwidth_bps: 1e9,
                latency_s: 1e-4,
            },
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_the_plain_chain() {
        let tiers = || {
            vec![
                spec("dram", PolicyKind::MinIo, 5),
                spec("ssd", PolicyKind::Lru, 5),
            ]
        };
        let sharded = ShardedChain::new(tiers(), 1);
        let mut plain = TierChain::new(tiers());
        let trace: Vec<u64> = (0..40).map(|i| (i * 7) % 13).collect();
        for &k in &trace {
            assert_eq!(sharded.access(k, 1), plain.access(k, 1), "key {k}");
        }
        for k in 0..2 {
            assert_eq!(sharded.tier_stats(k), *plain.tier_stats(k));
            assert_eq!(sharded.tier_used_bytes(k), plain.tier_used_bytes(k));
            assert_eq!(sharded.tier_demotions(k), plain.tier_demotions(k));
        }
        assert_eq!(sharded.resident_items(), plain.resident_items());
        assert_eq!(sharded.hits(), plain.hits());
        assert_eq!(sharded.store_misses(), plain.store_misses());
    }

    #[test]
    fn capacity_split_is_exact_for_any_shard_count() {
        for shards in [1usize, 2, 3, 4, 7] {
            let chain = ShardedChain::new(vec![spec("dram", PolicyKind::MinIo, 1003)], shards);
            assert_eq!(chain.capacity_bytes(), 1003, "{shards} shards");
            let per_shard: u64 = (0..shards)
                .map(|s| chain.shards[s].lock().unwrap().tier_spec(0).capacity_bytes)
                .sum();
            assert_eq!(per_shard, 1003, "{shards} shards");
        }
    }

    #[test]
    fn shard_of_key_is_the_chain_routing() {
        for shards in [1usize, 2, 3, 8] {
            let chain = ShardedChain::new(vec![spec("dram", PolicyKind::MinIo, 1 << 20)], shards);
            for k in 0..500u64 {
                assert_eq!(chain.shard_of(k), shard_of_key(k, shards), "{shards}/{k}");
                assert!(shard_of_key(k, shards) < shards);
            }
        }
        // One shard routes everything to bucket 0 (the serial special case).
        assert!((0..100).all(|k| shard_of_key(k, 1) == 0));
    }

    #[test]
    fn keys_route_to_stable_shards_and_never_cross() {
        let chain = ShardedChain::new(vec![spec("dram", PolicyKind::MinIo, 1 << 20)], 4);
        for k in 0..200u64 {
            assert_eq!(chain.shard_of(k), chain.shard_of(k), "stable");
            chain.access(k, 1);
            let holder = chain.shards[chain.shard_of(k)].lock().unwrap().contains(k);
            assert!(holder, "key {k} lives in its routed shard");
        }
        assert_eq!(chain.resident_items(), 200);
    }

    #[test]
    fn minio_sharded_chain_never_evicts_and_respects_aggregate_capacity() {
        let chain = ShardedChain::new(
            vec![
                spec("dram", PolicyKind::MinIo, 64),
                spec("ssd", PolicyKind::MinIo, 64),
            ],
            4,
        );
        for k in 0..1000u64 {
            let out = chain.access(k, 1);
            assert_eq!(out.source, ChainSource::Store, "cold");
            assert!(out.dropped.is_empty(), "MinIO never drops");
        }
        assert!(chain.used_bytes() <= chain.capacity_bytes());
        // Per-shard imbalance means slightly fewer than 128 admissions, but
        // hashing keeps every shard productive.
        assert!(chain.resident_items() > 100, "{}", chain.resident_items());
        // Steady state: residents hit, exactly once each.
        let before = chain.hits();
        for k in 0..1000u64 {
            chain.access(k, 1);
        }
        assert_eq!(chain.hits() - before, chain.resident_items() as u64);
    }

    #[test]
    fn concurrent_accesses_conserve_bytes_and_counters() {
        let chain = Arc::new(ShardedChain::new(
            vec![
                spec("dram", PolicyKind::MinIo, 400),
                spec("ssd", PolicyKind::MinIo, 400),
            ],
            4,
        ));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let chain = Arc::clone(&chain);
                std::thread::spawn(move || {
                    // Disjoint key ranges per thread: every access is either
                    // a first-touch miss or a repeat hit, deterministically.
                    for pass in 0..3 {
                        for k in (t * 1000)..(t * 1000 + 200u64) {
                            let out = chain.access(k, 1);
                            if pass > 0 && chain.contains(k) {
                                assert_ne!(out.source, ChainSource::Store, "resident key hit");
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 8 threads x 200 keys x 3 passes, every access accounted exactly once.
        let accesses: u64 =
            (0..2).map(|k| chain.tier_stats(k).hits).sum::<u64>() + chain.store_misses();
        assert_eq!(accesses, 8 * 200 * 3);
        assert_eq!(chain.used_bytes(), 800, "both tiers filled exactly");
        assert!(chain.resident_items() as u64 >= 800 / 2);
    }

    #[test]
    fn remove_on_a_shard_frees_capacity_for_new_admissions() {
        let chain = ShardedChain::new(vec![spec("dram", PolicyKind::MinIo, 8)], 2);
        for k in 0..20u64 {
            chain.access(k, 1);
        }
        let resident: Vec<u64> = (0..20).filter(|&k| chain.contains(k)).collect();
        assert_eq!(resident.len(), 8);
        let victim = resident[0];
        assert_eq!(chain.remove(victim), Some(1));
        assert!(!chain.contains(victim));
        // A fresh key routed to the freed shard can now be admitted.
        let shard = chain.shard_of(victim);
        let newcomer = (1000..2000u64)
            .find(|&k| chain.shard_of(k) == shard)
            .unwrap();
        assert!(chain.access(newcomer, 1).admitted);
    }
}
