//! Cache replacement policies.
//!
//! * [`LruCache`] — least-recently-used, the stand-in for the Linux page
//!   cache used by PyTorch/TensorFlow/DALI (§3.3.1 of the paper).
//! * [`FifoCache`] — first-in-first-out, a simpler page-cache variant.
//! * [`ClockCache`] — the CLOCK approximation of LRU (one reference bit).
//! * [`MinIoCache`] — CoorDL's DNN-aware policy (§4.1): admit until full,
//!   never evict.  Every epoch after the first gets exactly as many hits as
//!   there are resident items, which is the minimum possible per-epoch disk
//!   I/O for a uniform-random access pattern.

use crate::stats::{AccessOutcome, CacheStats};
use crate::Cache;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Which cache replacement policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used (OS page cache stand-in).
    Lru,
    /// First in, first out.
    Fifo,
    /// CLOCK (second-chance) approximation of LRU.
    Clock,
    /// CoorDL's MinIO: fill once, never evict.
    MinIo,
}

impl PolicyKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Clock => "CLOCK",
            PolicyKind::MinIo => "MinIO",
        }
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

/// A byte-capacity LRU cache.
///
/// Recency is tracked with a monotonically increasing tick; eviction removes
/// the entry with the smallest tick. This is `O(log n)` per access and keeps
/// the implementation dependency-free.
#[derive(Debug, Clone)]
pub struct LruCache<K: Hash + Eq + Clone> {
    capacity: u64,
    used: u64,
    entries: HashMap<K, LruEntry>,
    order: BTreeMap<u64, K>,
    tick: u64,
    stats: CacheStats,
    evicted_keys: Vec<K>,
    track_evictions: bool,
}

#[derive(Debug, Clone)]
struct LruEntry {
    size: u64,
    tick: u64,
}

impl<K: Hash + Eq + Clone> LruCache<K> {
    /// Create an LRU cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity: capacity_bytes,
            used: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            evicted_keys: Vec::new(),
            track_evictions: false,
        }
    }

    fn touch(&mut self, key: &K) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(key) {
            self.order.remove(&e.tick);
            e.tick = self.tick;
            self.order.insert(self.tick, key.clone());
        }
    }

    fn evict_until_fits(&mut self, incoming: u64) -> u64 {
        let mut evicted = 0;
        while self.used + incoming > self.capacity {
            let Some((&oldest_tick, _)) = self.order.iter().next() else {
                break;
            };
            let key = self.order.remove(&oldest_tick).expect("tick present");
            if let Some(e) = self.entries.remove(&key) {
                self.used -= e.size;
                evicted += 1;
                if self.track_evictions {
                    self.evicted_keys.push(key);
                }
            }
        }
        evicted
    }
}

impl<K: Hash + Eq + Clone> Cache<K> for LruCache<K> {
    fn access(&mut self, key: K, size: u64) -> AccessOutcome {
        if self.entries.contains_key(&key) {
            self.touch(&key);
            self.stats.record_hit(size);
            return AccessOutcome::Hit;
        }
        if size > self.capacity {
            self.stats.record_miss(size, false);
            return AccessOutcome::Bypassed;
        }
        let evicted = self.evict_until_fits(size);
        self.stats.record_evictions(evicted);
        self.tick += 1;
        self.entries.insert(
            key.clone(),
            LruEntry {
                size,
                tick: self.tick,
            },
        );
        self.order.insert(self.tick, key);
        self.used += size;
        self.stats.record_miss(size, true);
        AccessOutcome::Inserted
    }

    fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn name(&self) -> &'static str {
        PolicyKind::Lru.name()
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        let entry = self.entries.remove(key)?;
        self.order.remove(&entry.tick);
        self.used -= entry.size;
        Some(entry.size)
    }

    fn set_eviction_tracking(&mut self, enabled: bool) {
        self.track_evictions = enabled;
        if !enabled {
            self.evicted_keys.clear();
        }
    }

    fn take_evicted(&mut self) -> Vec<K> {
        std::mem::take(&mut self.evicted_keys)
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// A byte-capacity FIFO cache: evicts in insertion order, hits do not promote.
#[derive(Debug, Clone)]
pub struct FifoCache<K: Hash + Eq + Clone> {
    capacity: u64,
    used: u64,
    sizes: HashMap<K, u64>,
    queue: VecDeque<K>,
    stats: CacheStats,
    evicted_keys: Vec<K>,
    track_evictions: bool,
}

impl<K: Hash + Eq + Clone> FifoCache<K> {
    /// Create a FIFO cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        FifoCache {
            capacity: capacity_bytes,
            used: 0,
            sizes: HashMap::new(),
            queue: VecDeque::new(),
            stats: CacheStats::default(),
            evicted_keys: Vec::new(),
            track_evictions: false,
        }
    }
}

impl<K: Hash + Eq + Clone> Cache<K> for FifoCache<K> {
    fn access(&mut self, key: K, size: u64) -> AccessOutcome {
        if self.sizes.contains_key(&key) {
            self.stats.record_hit(size);
            return AccessOutcome::Hit;
        }
        if size > self.capacity {
            self.stats.record_miss(size, false);
            return AccessOutcome::Bypassed;
        }
        let mut evicted = 0;
        while self.used + size > self.capacity {
            let Some(victim) = self.queue.pop_front() else {
                break;
            };
            if let Some(s) = self.sizes.remove(&victim) {
                self.used -= s;
                evicted += 1;
                if self.track_evictions {
                    self.evicted_keys.push(victim);
                }
            }
        }
        self.stats.record_evictions(evicted);
        self.sizes.insert(key.clone(), size);
        self.queue.push_back(key);
        self.used += size;
        self.stats.record_miss(size, true);
        AccessOutcome::Inserted
    }

    fn contains(&self, key: &K) -> bool {
        self.sizes.contains_key(key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn name(&self) -> &'static str {
        PolicyKind::Fifo.name()
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        let size = self.sizes.remove(key)?;
        // Removals are rare lifecycle events, so the O(n) queue purge beats
        // leaving a stale key that would mis-order a later re-insertion.
        self.queue.retain(|queued| queued != key);
        self.used -= size;
        Some(size)
    }

    fn set_eviction_tracking(&mut self, enabled: bool) {
        self.track_evictions = enabled;
        if !enabled {
            self.evicted_keys.clear();
        }
    }

    fn take_evicted(&mut self) -> Vec<K> {
        std::mem::take(&mut self.evicted_keys)
    }
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

/// A byte-capacity CLOCK (second-chance) cache.
///
/// Entries sit on a circular list with one reference bit; a hit sets the bit,
/// eviction sweeps the hand, clearing bits until it finds an unreferenced
/// victim.  This is the textbook approximation used by real page caches.
#[derive(Debug, Clone)]
pub struct ClockCache<K: Hash + Eq + Clone> {
    capacity: u64,
    used: u64,
    ring: Vec<ClockSlot<K>>,
    index: HashMap<K, usize>,
    hand: usize,
    stats: CacheStats,
    evicted_keys: Vec<K>,
    track_evictions: bool,
}

#[derive(Debug, Clone)]
struct ClockSlot<K> {
    key: K,
    size: u64,
    referenced: bool,
}

impl<K: Hash + Eq + Clone> ClockCache<K> {
    /// Create a CLOCK cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        ClockCache {
            capacity: capacity_bytes,
            used: 0,
            ring: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            stats: CacheStats::default(),
            evicted_keys: Vec::new(),
            track_evictions: false,
        }
    }

    fn evict_one(&mut self) -> bool {
        if self.ring.is_empty() {
            return false;
        }
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            if self.ring[self.hand].referenced {
                self.ring[self.hand].referenced = false;
                self.hand += 1;
            } else {
                let slot = self.ring.swap_remove(self.hand);
                self.index.remove(&slot.key);
                // The element swapped into `hand` needs its index fixed.
                if self.hand < self.ring.len() {
                    let moved_key = self.ring[self.hand].key.clone();
                    self.index.insert(moved_key, self.hand);
                }
                self.used -= slot.size;
                if self.track_evictions {
                    self.evicted_keys.push(slot.key);
                }
                return true;
            }
        }
    }
}

impl<K: Hash + Eq + Clone> Cache<K> for ClockCache<K> {
    fn access(&mut self, key: K, size: u64) -> AccessOutcome {
        if let Some(&pos) = self.index.get(&key) {
            self.ring[pos].referenced = true;
            self.stats.record_hit(size);
            return AccessOutcome::Hit;
        }
        if size > self.capacity {
            self.stats.record_miss(size, false);
            return AccessOutcome::Bypassed;
        }
        let mut evicted = 0;
        while self.used + size > self.capacity {
            if self.evict_one() {
                evicted += 1;
            } else {
                break;
            }
        }
        self.stats.record_evictions(evicted);
        self.ring.push(ClockSlot {
            key: key.clone(),
            size,
            referenced: false,
        });
        self.index.insert(key, self.ring.len() - 1);
        self.used += size;
        self.stats.record_miss(size, true);
        AccessOutcome::Inserted
    }

    fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn name(&self) -> &'static str {
        PolicyKind::Clock.name()
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        let pos = self.index.remove(key)?;
        let slot = self.ring.swap_remove(pos);
        // The element swapped into `pos` needs its index fixed.
        if pos < self.ring.len() {
            let moved_key = self.ring[pos].key.clone();
            self.index.insert(moved_key, pos);
        }
        self.used -= slot.size;
        Some(slot.size)
    }

    fn set_eviction_tracking(&mut self, enabled: bool) {
        self.track_evictions = enabled;
        if !enabled {
            self.evicted_keys.clear();
        }
    }

    fn take_evicted(&mut self) -> Vec<K> {
        std::mem::take(&mut self.evicted_keys)
    }
}

// ---------------------------------------------------------------------------
// MinIO
// ---------------------------------------------------------------------------

/// CoorDL's MinIO cache (§4.1 of the paper).
///
/// Items are admitted in arrival order until the byte capacity is reached;
/// afterwards, misses are *not* admitted and resident items are *never*
/// evicted.  Because every item in a DNN epoch has the same access
/// probability, which items are resident does not matter — what matters is
/// that resident items are never replaced before they are used, so every
/// epoch after the warm-up epoch experiences exactly `len()` hits and
/// `dataset - len()` capacity misses.  No recency or frequency bookkeeping is
/// required.
#[derive(Debug, Clone)]
pub struct MinIoCache<K: Hash + Eq + Clone> {
    capacity: u64,
    used: u64,
    resident: HashSet<K>,
    sizes: HashMap<K, u64>,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone> MinIoCache<K> {
    /// Create a MinIO cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        MinIoCache {
            capacity: capacity_bytes,
            used: 0,
            resident: HashSet::new(),
            sizes: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// True once the cache has stopped admitting new items.
    pub fn is_full(&self) -> bool {
        // Heuristic: the cache is considered full once less than an average
        // item of slack remains; callers that need an exact answer should
        // compare `used_bytes` with `capacity_bytes` themselves.
        self.used >= self.capacity
    }

    /// Iterate over resident keys (used by the partitioned-cache directory).
    pub fn resident_keys(&self) -> impl Iterator<Item = &K> {
        self.resident.iter()
    }
}

impl<K: Hash + Eq + Clone> Cache<K> for MinIoCache<K> {
    fn access(&mut self, key: K, size: u64) -> AccessOutcome {
        if self.resident.contains(&key) {
            self.stats.record_hit(size);
            return AccessOutcome::Hit;
        }
        if self.used + size <= self.capacity {
            self.resident.insert(key.clone());
            self.sizes.insert(key, size);
            self.used += size;
            self.stats.record_miss(size, true);
            AccessOutcome::Inserted
        } else {
            self.stats.record_miss(size, false);
            AccessOutcome::Bypassed
        }
    }

    fn contains(&self, key: &K) -> bool {
        self.resident.contains(key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn name(&self) -> &'static str {
        PolicyKind::MinIo.name()
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        if !self.resident.remove(key) {
            return None;
        }
        let size = self.sizes.remove(key).unwrap_or(0);
        self.used -= size;
        Some(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<C: Cache<u64>>(cache: &mut C, accesses: &[u64], size: u64) -> (u64, u64) {
        for &k in accesses {
            cache.access(k, size);
        }
        (cache.stats().hits, cache.stats().misses)
    }

    // -- LRU --------------------------------------------------------------

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1u64, 1);
        c.access(2, 1);
        c.access(1, 1); // touch 1, making 2 the LRU victim
        c.access(3, 1); // evicts 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_sequential_scan_larger_than_cache_never_hits() {
        // The pathological case called out in §3.3.3: a sequential scan over a
        // dataset larger than the cache gets zero hits under LRU.
        let mut c = LruCache::new(50);
        for _epoch in 0..3 {
            for k in 0..100u64 {
                c.access(k, 1);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 300);
    }

    #[test]
    fn lru_respects_byte_sizes() {
        let mut c = LruCache::new(100);
        c.access(1u64, 60);
        c.access(2, 60); // must evict 1
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn lru_item_larger_than_capacity_is_bypassed() {
        let mut c = LruCache::new(10);
        assert_eq!(c.access(1u64, 20), AccessOutcome::Bypassed);
        assert!(c.is_empty());
    }

    // -- FIFO ---------------------------------------------------------------

    #[test]
    fn fifo_evicts_in_insertion_order_even_if_recently_hit() {
        let mut c = FifoCache::new(2);
        c.access(1u64, 1);
        c.access(2, 1);
        c.access(1, 1); // hit, but does not promote
        c.access(3, 1); // evicts 1 (oldest insertion)
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    // -- CLOCK --------------------------------------------------------------

    #[test]
    fn clock_gives_second_chance_to_referenced_entries() {
        let mut c = ClockCache::new(2);
        c.access(1u64, 1);
        c.access(2, 1);
        c.access(1, 1); // sets reference bit on 1
        c.access(3, 1); // hand clears 1's bit, evicts 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn clock_used_bytes_tracks_evictions() {
        let mut c = ClockCache::new(10);
        for k in 0..20u64 {
            c.access(k, 3);
        }
        assert!(c.used_bytes() <= 10);
        assert_eq!(c.used_bytes(), c.len() as u64 * 3);
    }

    // -- MinIO --------------------------------------------------------------

    #[test]
    fn minio_never_evicts() {
        let mut c = MinIoCache::new(3);
        drive(&mut c, &[1, 2, 3, 4, 5, 6], 1);
        assert_eq!(c.len(), 3);
        assert!(c.contains(&1) && c.contains(&2) && c.contains(&3));
        assert!(!c.contains(&4));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn minio_steady_state_hits_equal_residency_per_epoch() {
        // Key property (§4.1): after warm-up, each epoch gets exactly
        // `len()` hits regardless of the access order.
        let n_items = 100u64;
        let cache_items = 35u64;
        let mut c = MinIoCache::new(cache_items);
        // Warm-up epoch in one order.
        for k in 0..n_items {
            c.access(k, 1);
        }
        assert_eq!(c.len() as u64, cache_items);
        c.reset_stats();
        // Second epoch in a different (reversed) order.
        for k in (0..n_items).rev() {
            c.access(k, 1);
        }
        assert_eq!(c.stats().hits, cache_items);
        assert_eq!(c.stats().misses, n_items - cache_items);
    }

    #[test]
    fn figure8_example_minio_vs_page_cache() {
        // The paper's Figure 8: dataset {A,B,C,D} (4 items), cache of 2.
        // After warm-up the MinIO cache holds two fixed items and gets exactly
        // 2 hits per epoch; the LRU page cache can thrash down to fewer hits.
        let epoch1 = [3u64, 2, 0, 1]; // D C A B -> warm-up
        let epoch2 = [1u64, 2, 0, 3];
        let epoch3 = [2u64, 1, 3, 0];

        let mut minio = MinIoCache::new(2);
        let mut lru = LruCache::new(2);
        for &k in &epoch1 {
            minio.access(k, 1);
            lru.access(k, 1);
        }
        minio.reset_stats();
        lru.reset_stats();
        for &k in epoch2.iter().chain(&epoch3) {
            minio.access(k, 1);
            lru.access(k, 1);
        }
        // MinIO: exactly 2 hits per epoch over 2 epochs.
        assert_eq!(minio.stats().hits, 4);
        // LRU gets at most as many hits as MinIO on this trace.
        assert!(lru.stats().hits <= minio.stats().hits);
    }

    #[test]
    fn minio_byte_capacity_respected_with_variable_sizes() {
        let mut c = MinIoCache::new(100);
        c.access(1u64, 60);
        c.access(2, 50); // does not fit -> bypassed
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 60);
        c.access(3, 40); // fits exactly
        assert_eq!(c.used_bytes(), 100);
        assert!(c.is_full());
    }

    #[test]
    fn stats_reset_does_not_change_contents() {
        let mut c = MinIoCache::new(10);
        c.access(1u64, 5);
        c.access(2, 5);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&1));
    }

    // -- Eviction reporting --------------------------------------------------

    #[test]
    fn evicting_policies_report_their_victims_and_minio_reports_none() {
        let mut lru = LruCache::new(2);
        let mut fifo = FifoCache::new(2);
        let mut clock = ClockCache::new(2);
        let mut minio = MinIoCache::new(2);
        lru.set_eviction_tracking(true);
        fifo.set_eviction_tracking(true);
        clock.set_eviction_tracking(true);
        minio.set_eviction_tracking(true);
        for k in 0..4u64 {
            lru.access(k, 1);
            fifo.access(k, 1);
            clock.access(k, 1);
            minio.access(k, 1);
        }
        assert_eq!(lru.take_evicted(), vec![0, 1]);
        assert_eq!(fifo.take_evicted(), vec![0, 1]);
        assert_eq!(clock.take_evicted().len(), 2);
        assert!(minio.take_evicted().is_empty());
        // The log drains: a second call reports nothing new.
        assert!(lru.take_evicted().is_empty());
        lru.access(9, 1);
        assert_eq!(lru.take_evicted().len(), 1);
    }

    #[test]
    fn eviction_logging_is_off_by_default_so_victims_are_not_retained() {
        // The simulator's StorageNode drives these policies for millions of
        // evictions without ever draining the log; untracked caches must not
        // accumulate victim keys.
        let mut lru = LruCache::new(2);
        for k in 0..1000u64 {
            lru.access(k, 1);
        }
        assert_eq!(lru.evicted_keys.len(), 0, "no retained victims");
        assert!(lru.take_evicted().is_empty());
        // Disabling tracking also drops any pending log.
        lru.set_eviction_tracking(true);
        lru.access(2000, 1);
        lru.set_eviction_tracking(false);
        assert!(lru.take_evicted().is_empty());
    }

    // -- Administrative removal ----------------------------------------------

    #[test]
    fn remove_frees_bytes_without_recording_statistics() {
        let caches: Vec<Box<dyn Cache<u64> + Send>> = vec![
            Box::new(LruCache::new(100)),
            Box::new(FifoCache::new(100)),
            Box::new(ClockCache::new(100)),
            Box::new(MinIoCache::new(100)),
        ];
        for mut c in caches {
            c.set_eviction_tracking(true);
            for k in 0..5u64 {
                c.access(k, 10);
            }
            let stats_before = *c.stats();
            assert_eq!(c.remove(&2), Some(10), "{}", c.name());
            assert_eq!(c.remove(&2), None, "{}: double remove", c.name());
            assert_eq!(c.remove(&99), None, "{}: absent key", c.name());
            assert!(!c.contains(&2), "{}", c.name());
            assert_eq!(c.len(), 4, "{}", c.name());
            assert_eq!(c.used_bytes(), 40, "{}", c.name());
            assert_eq!(*c.stats(), stats_before, "{}: no stats recorded", c.name());
            assert!(c.take_evicted().is_empty(), "{}: not an eviction", c.name());
            // The freed capacity is reusable and the cache stays coherent.
            assert_eq!(c.access(200, 10), AccessOutcome::Inserted, "{}", c.name());
            assert_eq!(c.used_bytes(), 50, "{}", c.name());
        }
    }

    #[test]
    fn fifo_remove_purges_the_queue_so_reinsertion_keeps_its_order() {
        let mut c = FifoCache::new(3);
        for k in 0..3u64 {
            c.access(k, 1);
        }
        c.remove(&0);
        c.access(0, 1); // re-inserted: now the *youngest* entry
        c.access(9, 1); // evicts 1 (the oldest), not the re-inserted 0
        assert!(c.contains(&0) && !c.contains(&1));
    }

    #[test]
    fn clock_remove_keeps_the_ring_index_coherent() {
        let mut c = ClockCache::new(10);
        for k in 0..10u64 {
            c.access(k, 1);
        }
        // Remove from the middle: swap_remove moves the last slot into place.
        c.remove(&3);
        for k in 0..10u64 {
            assert_eq!(c.contains(&k), k != 3, "key {k}");
        }
        // Evictions after removal still converge.
        for k in 10..30u64 {
            c.access(k, 1);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.used_bytes(), 10);
    }

    // -- Cross-policy comparison (the paper's core claim) --------------------

    #[test]
    fn minio_beats_lru_on_random_epoch_access() {
        // Deterministic pseudo-random permutations per epoch: under repeated
        // randomized full scans, MinIO's per-epoch misses equal the capacity
        // miss minimum while LRU thrashes and misses more.
        let n = 1000u64;
        let cap = 350u64;
        let mut minio = MinIoCache::new(cap);
        let mut lru = LruCache::new(cap);

        let permute = |epoch: u64| -> Vec<u64> {
            // A simple multiplicative permutation with an epoch-dependent
            // offset; full-period because the multiplier is coprime with n.
            (0..n).map(|i| (i * 7 + epoch * 131) % n).collect()
        };

        // Warm-up epoch.
        for &k in &permute(0) {
            minio.access(k, 1);
            lru.access(k, 1);
        }
        minio.reset_stats();
        lru.reset_stats();
        for epoch in 1..4u64 {
            for &k in &permute(epoch) {
                minio.access(k, 1);
                lru.access(k, 1);
            }
        }
        let minio_misses = minio.stats().misses;
        let lru_misses = lru.stats().misses;
        // MinIO achieves the capacity-miss minimum.
        assert_eq!(minio_misses, 3 * (n - cap));
        // LRU thrashes: strictly more misses than the minimum.
        assert!(
            lru_misses > minio_misses,
            "LRU misses {lru_misses} should exceed MinIO misses {minio_misses}"
        );
    }
}
