//! The multi-tier cache hierarchy shared by the simulator and the runtime.
//!
//! The paper's mitigation story is hierarchical: MinIO keeps working-set
//! bytes in DRAM (§4.1), partitioned/coordinated jobs fetch misses from
//! remote peers because a 10–40 Gbps network beats a local SATA SSD (§4.2,
//! Table 2), and everything else falls through to the storage device.
//! [`TierChain`] expresses that as one ordered list of capacity-bounded
//! policy caches, each tagged with an access cost, with
//! **demotion-on-eviction**: victims of tier *k* are offered to tier *k+1*
//! (via the policies' [`Cache::set_eviction_tracking`] /
//! [`Cache::take_evicted`] victim logs) before falling off the chain.
//!
//! Placement is *exclusive on admission*: one fetch admits its item into at
//! most one tier — the topmost tier that accepts it — so a never-evicting
//! MinIO DRAM tier that is full *spills* new items into the next tier
//! instead of duplicating resident ones ("SSD extends MinIO reach").  A hit
//! at a lower tier still offers the item to the tiers above it (promotion),
//! which matters for recency policies: an LRU DRAM tier backed by an SSD
//! victim tier pages items back in on reuse, exactly like a page cache over
//! a flash cache.
//!
//! A chain with a single tier behaves **bit-identically** to the raw policy
//! cache it wraps: the same [`AccessOutcome`] sequence, the same policy
//! statistics, the same victims in the same order.  That is the contract
//! that lets `storage::StorageNode` and the CoorDL runtime's byte tiers run
//! *everything* through the chain without changing any existing number.

use crate::stats::{AccessOutcome, CacheStats};
use crate::{build_cache, Cache, PolicyKind};
use std::collections::HashMap;

/// The modelled cost of serving bytes from one tier: a fixed per-access
/// latency plus a bandwidth term.
///
/// Costs are *descriptions*, not behaviour — the chain never sleeps; its
/// consumers (the simulator's epoch drivers, the runtime's modelled device
/// accounting) charge [`TierCost::access_seconds`] wherever a fetch was
/// served.  `storage::DeviceProfile::tier_cost` derives one from a calibrated
/// device profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCost {
    /// Sustained read throughput of the tier in bytes/second.
    pub bandwidth_bps: f64,
    /// Fixed per-access latency in seconds.
    pub latency_s: f64,
}

impl TierCost {
    /// Seconds to serve `bytes` from this tier.
    pub fn access_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Static description of one tier of a [`TierChain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Short name used in reports (`"dram"`, `"ssd"`, ...).
    pub name: &'static str,
    /// Replacement policy governing residency at this tier.
    pub policy: PolicyKind,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Modelled access cost of a hit at this tier.
    pub cost: TierCost,
}

/// Where a chain access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainSource {
    /// Resident in tier `k` (0 is the topmost/fastest tier).
    Tier(usize),
    /// Resident nowhere: the caller reads from the durable store below the
    /// chain.
    Store,
}

impl ChainSource {
    /// True when the access missed every tier.
    pub fn is_store(self) -> bool {
        matches!(self, ChainSource::Store)
    }
}

/// The outcome of one [`TierChain::access`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAccess {
    /// Which level served the bytes.
    pub source: ChainSource,
    /// Whether the item was newly admitted into some tier by this access
    /// (always `false` on a hit at tier 0, which is already resident).
    pub admitted: bool,
    /// Keys that stopped being resident in *any* tier as a result of this
    /// access (evicted from the last tier, or bypassed by every tier during
    /// demotion).  Byte-holding wrappers drop the payloads of these keys.
    pub dropped: Vec<u64>,
    /// `(key, level)` landings of the demotion cascade: each victim a tier
    /// accepted during demotion, with the level it now resides at.  A victim
    /// re-evicted further down the same cascade appears once, at its final
    /// landing (or in [`ChainAccess::dropped`] instead if it fell off).
    /// Wrappers that place payloads by level — e.g. a file-backed SSD tier —
    /// relocate these keys; memory-only wrappers can ignore the field.
    pub demoted: Vec<(u64, usize)>,
}

/// Per-tier counters the chain maintains beyond the fetch-path
/// [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemotionStats {
    /// Victims this tier accepted from the tier above.
    pub demoted_in: u64,
    /// Victims this tier evicted that were offered below.
    pub demoted_out: u64,
}

struct Level {
    spec: TierSpec,
    cache: Box<dyn Cache<u64> + Send>,
    /// Fetch-path accounting for this tier: a hit is recorded when the fetch
    /// was served here, a miss when the fetch consulted this tier and fell
    /// through.  Demotion traffic is *not* counted here (it is not a fetch);
    /// it lands in `demotions`.
    stats: CacheStats,
    demotions: DemotionStats,
}

/// An ordered chain of cache tiers with spill-down admission and
/// demotion-on-eviction, keyed by `u64` item ids (the representation used
/// throughout the workspace).
///
/// See the [module docs](self) for the placement rules.
pub struct TierChain {
    levels: Vec<Level>,
    /// Size of every key resident in at least one tier, needed to demote
    /// victims (the policies' victim logs carry keys, not sizes).
    sizes: HashMap<u64, u64>,
}

impl TierChain {
    /// Build a chain from tier specs, ordered fastest (index 0) to slowest.
    ///
    /// # Panics
    /// Panics when `tiers` is empty.
    pub fn new(tiers: Vec<TierSpec>) -> Self {
        assert!(!tiers.is_empty(), "a tier chain needs at least one tier");
        let levels = tiers
            .into_iter()
            .map(|spec| {
                let mut cache = build_cache(spec.policy, spec.capacity_bytes);
                // The chain needs every tier's victims: to demote them to the
                // next tier, and (from the last tier) to tell byte-holding
                // wrappers which payloads to drop.
                cache.set_eviction_tracking(true);
                Level {
                    spec,
                    cache,
                    stats: CacheStats::default(),
                    demotions: DemotionStats::default(),
                }
            })
            .collect();
        TierChain {
            levels,
            sizes: HashMap::new(),
        }
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.levels.len()
    }

    /// The static spec of tier `k`.
    pub fn tier_spec(&self, k: usize) -> &TierSpec {
        &self.levels[k].spec
    }

    /// Fetch-path statistics of tier `k` (hits served there, misses that
    /// fell through it).
    pub fn tier_stats(&self, k: usize) -> &CacheStats {
        &self.levels[k].stats
    }

    /// Demotion counters of tier `k`.
    pub fn tier_demotions(&self, k: usize) -> DemotionStats {
        self.levels[k].demotions
    }

    /// Bytes resident in tier `k`.
    pub fn tier_used_bytes(&self, k: usize) -> u64 {
        self.levels[k].cache.used_bytes()
    }

    /// Items resident in tier `k`.
    pub fn tier_len(&self, k: usize) -> usize {
        self.levels[k].cache.len()
    }

    /// Whether `key` is resident in tier `k`.
    pub fn tier_contains(&self, k: usize, key: u64) -> bool {
        self.levels[k].cache.contains(&key)
    }

    /// Modelled cost of a hit at tier `k`.
    pub fn tier_cost(&self, k: usize) -> TierCost {
        self.levels[k].spec.cost
    }

    /// Whether `key` is resident in any tier.
    pub fn contains(&self, key: u64) -> bool {
        self.sizes.contains_key(&key)
    }

    /// Distinct keys resident across the chain.
    pub fn resident_items(&self) -> usize {
        self.sizes.len()
    }

    /// Sum of per-tier resident bytes.  An item can be resident in two tiers
    /// after a promotion (it stays in the lower tier until evicted there),
    /// in which case its bytes count once per tier, exactly as they occupy
    /// real capacity in each.
    pub fn used_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.cache.used_bytes()).sum()
    }

    /// Sum of per-tier capacities.
    pub fn capacity_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.spec.capacity_bytes).sum()
    }

    /// Total fetch-path hits across tiers.
    pub fn hits(&self) -> u64 {
        self.levels.iter().map(|l| l.stats.hits).sum()
    }

    /// Fetch-path accesses that missed every tier (reads from the store).
    pub fn store_misses(&self) -> u64 {
        // Every fetch that reaches the store records a miss at the *last*
        // consulted tier; tiers above double-count the same fetch, so the
        // store total is the last tier's misses... except a fetch served at
        // tier k records misses at 0..k too.  Count store misses directly:
        // accesses that were not a hit anywhere = tier-0 accesses - hits.
        self.levels[0].stats.accesses() - self.hits()
    }

    /// Reset fetch-path and policy statistics on every tier without touching
    /// contents (epoch boundaries).
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            level.stats = CacheStats::default();
            level.cache.reset_stats();
        }
    }

    /// Look `key` (an item of `size` bytes) up through the chain, admitting
    /// on a miss and demoting victims down the chain.
    ///
    /// Placement rules, applied top-down until the serving tier:
    /// * the topmost tier holding `key` serves it (its provenance),
    /// * tiers consulted above the serving tier record a miss, and the
    ///   *first* of them whose policy accepts the item admits it
    ///   (promotion on a lower-tier hit, plain admission on a store miss);
    ///   at most one tier admits per access,
    /// * every eviction that admission causes is offered to the next tier
    ///   down (demotion), cascading until a tier accepts the victim or it
    ///   falls off the chain (reported in [`ChainAccess::dropped`]).
    pub fn access(&mut self, key: u64, size: u64) -> ChainAccess {
        self.access_with_floor(key, size, 0)
    }

    /// Like [`TierChain::access`], but admission (and promotion) is only
    /// allowed at levels `>= floor`; tiers above the floor still record their
    /// misses, they just never insert.  `floor == 0` is exactly `access`.
    ///
    /// This is the hook a multi-tenant server uses to spill an over-quota
    /// tenant's items *below* the rationed DRAM tier without perturbing the
    /// fetch-path statistics.
    pub fn access_with_floor(&mut self, key: u64, size: u64, floor: usize) -> ChainAccess {
        // Provenance: decided before any mutation, so a demotion cascade
        // triggered by this access cannot mis-attribute where the bytes
        // actually came from.
        let provenance = self.levels.iter().position(|l| l.cache.contains(&key));
        let last_consulted = provenance.unwrap_or(self.levels.len() - 1);

        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut admitted = false;
        for k in 0..=last_consulted {
            if Some(k) == provenance {
                let outcome = self.levels[k].cache.access(key, size);
                debug_assert_eq!(outcome, AccessOutcome::Hit, "provenance tier must hit");
                self.levels[k].stats.record_hit(size);
            } else {
                let mut inserted = false;
                if !admitted && k >= floor {
                    let outcome = self.levels[k].cache.access(key, size);
                    debug_assert_ne!(outcome, AccessOutcome::Hit, "tier above provenance");
                    for victim in self.levels[k].cache.take_evicted() {
                        pending.push((k, victim));
                    }
                    inserted = outcome == AccessOutcome::Inserted;
                    admitted |= inserted;
                }
                self.levels[k].stats.record_miss(size, inserted);
                if inserted {
                    self.levels[k].stats.record_evictions(pending.len() as u64);
                }
            }
        }
        // Record the size only on admission: a resident key already has an
        // entry, and the recorded size must stay the one the policies
        // accounted (demotions move entries with *that* size).
        if admitted {
            self.sizes.insert(key, size);
        }

        let (dropped, demoted) = self.demote(pending);
        ChainAccess {
            source: provenance.map_or(ChainSource::Store, ChainSource::Tier),
            admitted,
            dropped,
            demoted,
        }
    }

    /// The topmost tier currently holding `key` (its provenance), without
    /// touching recency state or statistics.
    pub fn locate(&self, key: u64) -> Option<usize> {
        self.levels.iter().position(|l| l.cache.contains(&key))
    }

    /// Administratively remove `key` from every tier holding it, returning
    /// the total bytes freed across levels (a promoted key occupies two).
    ///
    /// Like [`Cache::remove`], this is a lifecycle operation — a departing
    /// tenant's keys being reclaimed — not an eviction: no statistics are
    /// recorded, nothing demotes, and byte-holding wrappers must drop the
    /// payload themselves.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        self.sizes.remove(&key)?;
        let freed = self
            .levels
            .iter_mut()
            .filter_map(|l| l.cache.remove(&key))
            .sum();
        Some(freed)
    }

    /// [`TierChain::remove`] every resident key in `range` (a departing
    /// tenant's key window), returning the total bytes freed.
    pub fn remove_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let victims: Vec<u64> = self
            .sizes
            .keys()
            .copied()
            .filter(|k| range.contains(k))
            .collect();
        victims.into_iter().filter_map(|k| self.remove(k)).sum()
    }

    /// Cascade `(level, victim)` demotions down the chain, returning the
    /// keys that ended up resident nowhere and the `(key, level)` landings
    /// of victims some tier accepted (keep-last: a victim re-evicted within
    /// the cascade keeps only its final landing).
    fn demote(&mut self, pending: Vec<(usize, u64)>) -> (Vec<u64>, Vec<(u64, usize)>) {
        let mut queue: std::collections::VecDeque<(usize, u64)> = pending.into();
        let mut dropped = Vec::new();
        let mut demoted: Vec<(u64, usize)> = Vec::new();
        while let Some((from, victim)) = queue.pop_front() {
            // Whatever landing this victim had earlier in the cascade is
            // stale: it is in flight again.
            demoted.retain(|&(key, _)| key != victim);
            let next = from + 1;
            if next >= self.levels.len() {
                // Fell off the chain; only drop the key if no other tier
                // still holds a (promoted) copy.
                if !self.levels.iter().any(|l| l.cache.contains(&victim)) {
                    self.sizes.remove(&victim);
                    dropped.push(victim);
                }
                continue;
            }
            let size = self.sizes.get(&victim).copied().unwrap_or(0);
            match self.levels[next].cache.access(victim, size) {
                AccessOutcome::Hit => {
                    // Already resident below (a promoted copy); nothing to do.
                }
                AccessOutcome::Inserted => {
                    self.levels[from].demotions.demoted_out += 1;
                    self.levels[next].demotions.demoted_in += 1;
                    demoted.push((victim, next));
                    for v in self.levels[next].cache.take_evicted() {
                        queue.push_back((next, v));
                    }
                }
                AccessOutcome::Bypassed => {
                    // This tier will not hold it; keep pushing it down.
                    queue.push_back((next, victim));
                }
            }
        }
        (dropped, demoted)
    }
}

impl std::fmt::Debug for TierChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tiers: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    "{}:{}({}B)",
                    l.spec.name,
                    l.spec.policy.name(),
                    l.spec.capacity_bytes
                )
            })
            .collect();
        f.debug_struct("TierChain")
            .field("tiers", &tiers)
            .field("resident_items", &self.resident_items())
            .finish()
    }
}

/// A one-tier chain over `policy` at DRAM-like cost — the drop-in
/// equivalent of the raw policy cache.
pub fn single_tier(name: &'static str, policy: PolicyKind, capacity_bytes: u64) -> TierChain {
    TierChain::new(vec![TierSpec {
        name,
        policy,
        capacity_bytes,
        // Placeholder DRAM-class cost; consumers that charge time supply
        // their own calibrated TierCost via TierChain::new.
        cost: TierCost {
            bandwidth_bps: 20e9,
            latency_s: 0.0,
        },
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruCache;

    fn spec(name: &'static str, policy: PolicyKind, cap: u64) -> TierSpec {
        TierSpec {
            name,
            policy,
            capacity_bytes: cap,
            cost: TierCost {
                bandwidth_bps: 1e9,
                latency_s: 1e-4,
            },
        }
    }

    #[test]
    fn single_tier_chain_is_bit_identical_to_the_raw_policy() {
        // Same accesses, same outcomes, same stats, same victims: the chain
        // adds nothing when it has one tier.
        let mut chain = single_tier("dram", PolicyKind::Lru, 3);
        let mut raw = LruCache::new(3);
        raw.set_eviction_tracking(true);
        let trace: Vec<u64> = vec![1, 2, 3, 1, 4, 5, 2, 1, 6, 6, 3];
        for &k in &trace {
            let raw_outcome = raw.access(k, 1);
            let raw_victims = raw.take_evicted();
            let chain_outcome = chain.access(k, 1);
            match raw_outcome {
                AccessOutcome::Hit => {
                    assert_eq!(chain_outcome.source, ChainSource::Tier(0), "key {k}")
                }
                AccessOutcome::Inserted => {
                    assert_eq!(chain_outcome.source, ChainSource::Store);
                    assert!(chain_outcome.admitted);
                }
                AccessOutcome::Bypassed => {
                    assert_eq!(chain_outcome.source, ChainSource::Store);
                    assert!(!chain_outcome.admitted);
                }
            }
            assert_eq!(chain_outcome.dropped, raw_victims, "victim order, key {k}");
        }
        assert_eq!(chain.tier_stats(0), raw.stats());
        assert_eq!(chain.used_bytes(), raw.used_bytes());
        assert_eq!(chain.resident_items(), raw.len());
        assert_eq!(chain.hits(), raw.stats().hits);
        assert_eq!(chain.store_misses(), raw.stats().misses);
    }

    #[test]
    fn minio_dram_spills_into_the_ssd_tier() {
        // §4.1 extended: a full MinIO DRAM tier bypasses new items, which the
        // MinIO SSD tier then admits — aggregate reach is the *sum* of the
        // capacities, not their max.
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 3),
            spec("ssd", PolicyKind::MinIo, 4),
        ]);
        for k in 0..10u64 {
            let out = chain.access(k, 1);
            assert_eq!(out.source, ChainSource::Store, "cold chain");
        }
        assert_eq!(chain.tier_len(0), 3, "DRAM filled first");
        assert_eq!(chain.tier_len(1), 4, "SSD extends the reach");
        assert_eq!(chain.resident_items(), 7);
        // Second epoch: 3 DRAM hits, 4 SSD hits, 3 store reads — in any order.
        chain.reset_stats();
        for k in (0..10u64).rev() {
            chain.access(k, 1);
        }
        assert_eq!(chain.tier_stats(0).hits, 3);
        assert_eq!(chain.tier_stats(1).hits, 4);
        assert_eq!(chain.store_misses(), 3);
        // A fetch that falls through DRAM records a miss there.
        assert_eq!(chain.tier_stats(0).misses, 7);
        assert_eq!(chain.tier_stats(1).misses, 3);
    }

    #[test]
    fn lru_victims_demote_in_eviction_order_and_hit_below() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Lru, 2),
            spec("ssd", PolicyKind::Fifo, 2),
        ]);
        // Fill DRAM with 1, 2; then 3 and 4 evict them in LRU order.
        for k in 1..=4u64 {
            chain.access(k, 1);
        }
        assert!(chain.tier_contains(0, 3) && chain.tier_contains(0, 4));
        assert!(chain.tier_contains(1, 1) && chain.tier_contains(1, 2));
        assert_eq!(chain.tier_demotions(0).demoted_out, 2);
        assert_eq!(chain.tier_demotions(1).demoted_in, 2);
        // Touching demoted key 1 serves it from the SSD tier...
        let out = chain.access(1, 1);
        assert_eq!(out.source, ChainSource::Tier(1));
        // ...and promotes it back into DRAM (evicting 3, the LRU victim).
        assert!(chain.tier_contains(0, 1));
        assert!(!chain.tier_contains(0, 3));
        // 3's demotion lands in the FIFO tier, whose insertion-order victim
        // is the stale SSD copy of 1.  That copy falls off the chain, but 1
        // was just promoted to DRAM, so it must stay in the residency set.
        assert!(chain.tier_contains(1, 3));
        assert!(!chain.tier_contains(1, 1));
        assert!(chain.contains(1));
    }

    #[test]
    fn victims_falling_off_the_last_tier_are_reported_dropped() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Fifo, 2),
            spec("ssd", PolicyKind::Fifo, 2),
        ]);
        for k in 0..6u64 {
            chain.access(k, 1);
        }
        // FIFO everywhere: DRAM holds {4,5}, SSD holds the last two demoted
        // {2,3}; 0 and 1 fell off the end.
        assert!(chain.tier_contains(0, 4) && chain.tier_contains(0, 5));
        assert!(chain.tier_contains(1, 2) && chain.tier_contains(1, 3));
        assert!(!chain.contains(0) && !chain.contains(1));
        assert_eq!(chain.resident_items(), 4);
        // The drops were reported as they happened, in order.
        let mut chain2 = TierChain::new(vec![
            spec("dram", PolicyKind::Fifo, 2),
            spec("ssd", PolicyKind::Fifo, 2),
        ]);
        let mut dropped = Vec::new();
        for k in 0..6u64 {
            dropped.extend(chain2.access(k, 1).dropped);
        }
        assert_eq!(dropped, vec![0, 1]);
    }

    #[test]
    fn demotion_landings_are_reported_per_access_with_final_levels_only() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Fifo, 2),
            spec("ssd", PolicyKind::Fifo, 2),
        ]);
        // Filling DRAM causes no demotions yet.
        assert!(chain.access(0, 1).demoted.is_empty());
        assert!(chain.access(1, 1).demoted.is_empty());
        // 2 evicts 0 from DRAM; 0 lands on the SSD tier.
        assert_eq!(chain.access(2, 1).demoted, vec![(0, 1)]);
        assert_eq!(chain.access(3, 1).demoted, vec![(1, 1)]);
        // SSD is now full: 4 demotes 2, whose landing evicts 0 off the end.
        let out = chain.access(4, 1);
        assert_eq!(out.demoted, vec![(2, 1)]);
        assert_eq!(out.dropped, vec![0]);
        // A key dropped within the same cascade never reports a landing:
        // byte-placing wrappers see each key exactly once per access.
        let keys: Vec<u64> = out.demoted.iter().map(|&(k, _)| k).collect();
        assert!(keys.iter().all(|k| !out.dropped.contains(k)));
    }

    #[test]
    fn oversized_items_bypass_every_tier() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Lru, 4),
            spec("ssd", PolicyKind::Lru, 8),
        ]);
        let out = chain.access(1, 100);
        assert_eq!(out.source, ChainSource::Store);
        assert!(!out.admitted);
        assert!(!chain.contains(1));
        assert_eq!(chain.tier_stats(0).misses, 1);
        assert_eq!(chain.tier_stats(1).misses, 1);
    }

    #[test]
    fn variable_sizes_demote_with_their_true_sizes() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Fifo, 10),
            spec("ssd", PolicyKind::Fifo, 10),
        ]);
        chain.access(1, 6);
        chain.access(2, 6); // evicts 1 (size 6) into the SSD tier
        assert_eq!(chain.tier_used_bytes(0), 6);
        assert_eq!(chain.tier_used_bytes(1), 6, "victim kept its 6 bytes");
        chain.access(3, 6); // evicts 2 -> SSD must evict 1 to fit it
        assert_eq!(chain.tier_used_bytes(1), 6);
        assert!(chain.tier_contains(1, 2) && !chain.contains(1));
    }

    #[test]
    fn tier_costs_order_access_seconds() {
        let chain = TierChain::new(vec![
            TierSpec {
                name: "dram",
                policy: PolicyKind::MinIo,
                capacity_bytes: 10,
                cost: TierCost {
                    bandwidth_bps: 20e9,
                    latency_s: 0.0,
                },
            },
            TierSpec {
                name: "ssd",
                policy: PolicyKind::MinIo,
                capacity_bytes: 10,
                cost: TierCost {
                    bandwidth_bps: 530e6,
                    latency_s: 100e-6,
                },
            },
        ]);
        let dram = chain.tier_cost(0).access_seconds(1 << 20);
        let ssd = chain.tier_cost(1).access_seconds(1 << 20);
        assert!(ssd > 10.0 * dram, "ssd {ssd} vs dram {dram}");
    }

    #[test]
    fn access_with_floor_zero_is_plain_access() {
        let drive = |floored: bool| {
            let mut chain = TierChain::new(vec![
                spec("dram", PolicyKind::Lru, 3),
                spec("ssd", PolicyKind::Fifo, 3),
            ]);
            let trace: Vec<u64> = vec![1, 2, 3, 4, 1, 5, 2, 6, 1, 3];
            let outcomes: Vec<ChainAccess> = trace
                .iter()
                .map(|&k| {
                    if floored {
                        chain.access_with_floor(k, 1, 0)
                    } else {
                        chain.access(k, 1)
                    }
                })
                .collect();
            (
                outcomes,
                *chain.tier_stats(0),
                *chain.tier_stats(1),
                chain.used_bytes(),
            )
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn floor_blocks_admission_and_promotion_above_it() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 4),
            spec("ssd", PolicyKind::MinIo, 4),
        ]);
        // Admission with floor 1 lands in the SSD tier, leaving DRAM empty.
        let out = chain.access_with_floor(1, 1, 1);
        assert!(out.admitted);
        assert!(!chain.tier_contains(0, 1) && chain.tier_contains(1, 1));
        // The DRAM tier still records the fetch falling through it.
        assert_eq!(chain.tier_stats(0).misses, 1);
        assert_eq!(chain.tier_stats(0).insertions, 0);
        // A floored hit at the SSD tier is served there without promoting.
        let out = chain.access_with_floor(1, 1, 1);
        assert_eq!(out.source, ChainSource::Tier(1));
        assert!(!out.admitted);
        assert!(!chain.tier_contains(0, 1));
        // An unfloored hit promotes into the empty DRAM tier.
        let out = chain.access(1, 1);
        assert_eq!(out.source, ChainSource::Tier(1));
        assert!(out.admitted);
        assert!(chain.tier_contains(0, 1));
        assert_eq!(chain.locate(1), Some(0));
    }

    #[test]
    fn locate_reports_provenance_without_touching_state() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 2),
            spec("ssd", PolicyKind::MinIo, 2),
        ]);
        for k in 0..4u64 {
            chain.access(k, 1);
        }
        let stats = (*chain.tier_stats(0), *chain.tier_stats(1));
        assert_eq!(chain.locate(0), Some(0));
        assert_eq!(chain.locate(2), Some(1));
        assert_eq!(chain.locate(9), None);
        assert_eq!((*chain.tier_stats(0), *chain.tier_stats(1)), stats);
    }

    #[test]
    fn remove_reclaims_capacity_across_levels() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 2),
            spec("ssd", PolicyKind::MinIo, 2),
        ]);
        for k in 0..4u64 {
            chain.access(k, 1);
        }
        assert_eq!(chain.remove(1), Some(1));
        assert_eq!(chain.remove(1), None, "double remove");
        assert!(!chain.contains(1));
        assert_eq!(chain.resident_items(), 3);
        assert_eq!(chain.tier_used_bytes(0), 1, "DRAM byte reclaimed");
        // The freed DRAM slot is reusable by the next admission.
        let out = chain.access(9, 1);
        assert!(out.admitted);
        assert_eq!(chain.locate(9), Some(0));
    }

    #[test]
    fn remove_frees_both_copies_of_a_promoted_key() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 2),
            spec("ssd", PolicyKind::MinIo, 2),
        ]);
        for k in 0..4u64 {
            chain.access(k, 1);
        }
        // Free a DRAM slot, then hit the SSD-resident 2: MinIO promotes it,
        // leaving copies at both levels.
        chain.remove(0);
        chain.access(2, 1);
        assert!(chain.tier_contains(0, 2) && chain.tier_contains(1, 2));
        assert_eq!(chain.remove(2), Some(2), "both copies freed");
        assert!(!chain.contains(2));
    }

    #[test]
    fn remove_range_clears_exactly_the_window() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::MinIo, 4),
            spec("ssd", PolicyKind::MinIo, 4),
        ]);
        // Two key windows of four 1-byte items each.
        for k in (0..4u64).chain(100..104) {
            chain.access(k, 1);
        }
        assert_eq!(chain.resident_items(), 8);
        assert_eq!(chain.remove_range(100..200), 4);
        assert_eq!(chain.remove_range(100..200), 0, "window already empty");
        for k in 0..4u64 {
            assert!(chain.contains(k), "survivor window intact");
        }
        for k in 100..104u64 {
            assert!(!chain.contains(k));
        }
        assert_eq!(chain.resident_items(), 4);
        assert_eq!(chain.used_bytes(), 4);
    }

    #[test]
    fn reset_stats_preserves_contents_and_demotion_history() {
        let mut chain = TierChain::new(vec![
            spec("dram", PolicyKind::Lru, 2),
            spec("ssd", PolicyKind::Lru, 2),
        ]);
        for k in 0..4u64 {
            chain.access(k, 1);
        }
        chain.reset_stats();
        assert_eq!(chain.tier_stats(0).accesses(), 0);
        assert_eq!(chain.resident_items(), 4);
        assert_eq!(chain.tier_demotions(0).demoted_out, 2);
    }
}
