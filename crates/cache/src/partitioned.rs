//! The partitioned-cache shard directory (§4.2 of the paper).
//!
//! During distributed training, CoorDL shards the dataset across the MinIO
//! caches of all participating servers: in the first epoch each server
//! populates its cache with the shard assigned to it, and from the second
//! epoch on a local miss is first looked up in the *directory* — metadata that
//! says which server caches which item — and served from the remote server's
//! DRAM over commodity TCP rather than from local storage.
//!
//! [`PartitionedIndex`] is that directory.  It is deliberately independent of
//! the cache *contents*: the simulator and the functional loader both register
//! residency here and query it on a local miss.

use std::collections::HashMap;

/// Identifier of a server participating in a distributed training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

/// Where a partitioned-cache lookup found (or did not find) an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Resident in the local server's MinIO cache.
    Local,
    /// Resident in a remote server's MinIO cache.
    Remote(ServerId),
    /// Not resident anywhere; must be read from storage.
    Storage,
}

/// Directory mapping items to the server whose MinIO cache shard owns them.
///
/// Sharding is static per job: item `i` is *assigned* to server
/// `i % num_servers` (round-robin keeps shards balanced irrespective of the
/// item-id distribution).  Whether the item is actually *resident* is
/// registered dynamically as caches fill, because a server's cache may be too
/// small to hold its entire shard.
#[derive(Debug, Clone)]
pub struct PartitionedIndex {
    num_servers: usize,
    resident: HashMap<u64, ServerId>,
}

impl PartitionedIndex {
    /// Create a directory for `num_servers` servers.
    ///
    /// # Panics
    /// Panics if `num_servers` is zero.
    pub fn new(num_servers: usize) -> Self {
        assert!(num_servers > 0, "need at least one server");
        PartitionedIndex {
            num_servers,
            resident: HashMap::new(),
        }
    }

    /// Number of servers in the job.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The server statically assigned to own item `item` (round-robin).
    pub fn owner_of(&self, item: u64) -> ServerId {
        ServerId((item % self.num_servers as u64) as usize)
    }

    /// All items in `0..num_items` assigned to `server`.
    pub fn shard_of(&self, server: ServerId, num_items: u64) -> Vec<u64> {
        (0..num_items)
            .filter(|&i| self.owner_of(i) == server)
            .collect()
    }

    /// Record that `item` is now resident in `server`'s cache.
    pub fn register(&mut self, item: u64, server: ServerId) {
        assert!(
            server.0 < self.num_servers,
            "server {server:?} out of range (num_servers = {})",
            self.num_servers
        );
        self.resident.insert(item, server);
    }

    /// Number of items registered as resident anywhere.
    pub fn resident_items(&self) -> usize {
        self.resident.len()
    }

    /// Forget `item`'s residency (no-op when unregistered), returning the
    /// server it was registered to.
    pub fn unregister(&mut self, item: u64) -> Option<ServerId> {
        self.resident.remove(&item)
    }

    /// Drop every entry registered to `server` — the directory's view of
    /// that node dying — returning the orphaned items in ascending order so
    /// callers can re-home them deterministically.
    pub fn unregister_server(&mut self, server: ServerId) -> Vec<u64> {
        let mut items: Vec<u64> = self
            .resident
            .iter()
            .filter(|&(_, &s)| s == server)
            .map(|(&item, _)| item)
            .collect();
        items.sort_unstable();
        for item in &items {
            self.resident.remove(item);
        }
        items
    }

    /// Look up `item` from the point of view of `local` server.
    pub fn locate(&self, item: u64, local: ServerId) -> Location {
        match self.resident.get(&item) {
            Some(&s) if s == local => Location::Local,
            Some(&s) => Location::Remote(s),
            None => Location::Storage,
        }
    }

    /// Number of items resident at each server.
    pub fn residency_by_server(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_servers];
        for &s in self.resident.values() {
            counts[s.0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_is_balanced() {
        let idx = PartitionedIndex::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000u64 {
            counts[idx.owner_of(i).0] += 1;
        }
        assert_eq!(counts, [250, 250, 250, 250]);
    }

    #[test]
    fn shards_are_disjoint_and_cover_dataset() {
        let idx = PartitionedIndex::new(3);
        let n = 100u64;
        let mut seen = std::collections::HashSet::new();
        for s in 0..3 {
            for item in idx.shard_of(ServerId(s), n) {
                assert!(seen.insert(item), "item {item} appears in two shards");
                assert_eq!(idx.owner_of(item), ServerId(s));
            }
        }
        assert_eq!(seen.len() as u64, n);
    }

    #[test]
    fn locate_distinguishes_local_remote_storage() {
        let mut idx = PartitionedIndex::new(2);
        idx.register(10, ServerId(0));
        idx.register(11, ServerId(1));
        assert_eq!(idx.locate(10, ServerId(0)), Location::Local);
        assert_eq!(idx.locate(10, ServerId(1)), Location::Remote(ServerId(0)));
        assert_eq!(idx.locate(11, ServerId(0)), Location::Remote(ServerId(1)));
        assert_eq!(idx.locate(99, ServerId(0)), Location::Storage);
    }

    #[test]
    fn residency_by_server_counts() {
        let mut idx = PartitionedIndex::new(2);
        for i in 0..10u64 {
            idx.register(i, idx.owner_of(i));
        }
        assert_eq!(idx.residency_by_server(), vec![5, 5]);
        assert_eq!(idx.resident_items(), 10);
    }

    #[test]
    fn unregister_server_returns_orphans_in_order() {
        let mut idx = PartitionedIndex::new(3);
        for i in 0..12u64 {
            idx.register(i, idx.owner_of(i));
        }
        let orphans = idx.unregister_server(ServerId(1));
        assert_eq!(orphans, vec![1, 4, 7, 10]);
        assert_eq!(idx.resident_items(), 8);
        for &i in &orphans {
            assert_eq!(idx.locate(i, ServerId(0)), Location::Storage);
        }
        // Other servers' registrations are untouched.
        assert_eq!(idx.locate(0, ServerId(0)), Location::Local);
        assert_eq!(idx.unregister_server(ServerId(1)), Vec::<u64>::new());
        // Single-item unregister round-trips.
        assert_eq!(idx.unregister(0), Some(ServerId(0)));
        assert_eq!(idx.unregister(0), None);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = PartitionedIndex::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_out_of_range_server_rejected() {
        let mut idx = PartitionedIndex::new(2);
        idx.register(0, ServerId(5));
    }
}
