//! Deterministic fault schedules for partitioned clusters.
//!
//! A schedule is a sorted list of membership events — node kills, graceful
//! leaves and rejoins — positioned on an abstract unit grid (the simulator
//! interprets units as epoch boundaries; the runtime scales them to fetch
//! steps).  Schedules are pure functions of `(nodes, horizon, faults, seed)`
//! so the simulator, the runtime chaos bench and `dstool validate` can
//! replay the *same* failure pattern and compare outcomes, exactly like
//! `churn_schedule` does for elastic tenants.

/// What happens to a node at a scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The node dies abruptly: its cache tier stops serving, peers absorb
    /// whatever the directory can re-home, everything else falls back to the
    /// durable store.
    Kill,
    /// The node leaves gracefully: it migrates its directory-owned items to
    /// surviving peers before going dark.
    Leave,
    /// A previously dead node rejoins with whatever its tier still holds
    /// (a warm restart from its persistent spill tier).
    Join,
}

impl FaultKind {
    /// Stable lowercase name, used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Leave => "leave",
            FaultKind::Join => "join",
        }
    }
}

/// One membership event: at unit `at`, `node` undergoes `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Position on the schedule's unit grid (epoch boundary in the
    /// simulator; scaled to a fetch step by the runtime).  Always in
    /// `[1, horizon)`, so unit 0 — the warm-up prefix — is fault-free.
    pub at: u64,
    /// The node the event applies to.
    pub node: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// SplitMix64, the workspace's standard small mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build a deterministic fault schedule of (at most) `faults` events for a
/// cluster of `nodes` over a `horizon` of schedule units.
///
/// Invariants, relied on by the chaos drivers on both the simulator and the
/// runtime side:
///
/// * node 0 never fails, so at least one node is alive at every instant and
///   rebalancing always has a target,
/// * events are sorted by `at` (ties keep generation order) and every `at`
///   is in `[1, horizon)` — unit 0 is always a healthy warm-up prefix,
/// * kills and leaves only target nodes alive at that point of the
///   schedule; joins only target dead ones,
/// * the result depends only on the arguments (no global state, no clock).
///
/// Fewer than `faults` events are returned when the cluster is too small to
/// host one (a single-node cluster yields an empty schedule).
///
/// # Panics
/// Panics when `nodes == 0` or `horizon == 0`.
pub fn fault_schedule(nodes: usize, horizon: u64, faults: usize, seed: u64) -> Vec<FaultEvent> {
    assert!(nodes > 0, "need at least one node");
    assert!(horizon > 0, "need a non-empty horizon");
    let mut events = Vec::with_capacity(faults);
    if nodes < 2 || horizon < 2 {
        // No failable node, or no post-warm-up unit to fail in.
        return events;
    }
    let mut state = seed ^ 0x00FA_1170_C0DA_u64.wrapping_add(horizon);
    let mut ats: Vec<u64> = (0..faults)
        .map(|_| 1 + splitmix64(&mut state) % (horizon - 1))
        .collect();
    ats.sort_unstable();
    let mut alive = vec![true; nodes];
    for at in ats {
        let dead: Vec<usize> = (1..nodes).filter(|&n| !alive[n]).collect();
        let up: Vec<usize> = (1..nodes).filter(|&n| alive[n]).collect();
        let kind = match (up.is_empty(), dead.is_empty()) {
            (true, true) => continue, // unreachable for nodes >= 2
            (true, false) => FaultKind::Join,
            (false, true) => match splitmix64(&mut state) % 2 {
                0 => FaultKind::Kill,
                _ => FaultKind::Leave,
            },
            (false, false) => match splitmix64(&mut state) % 3 {
                0 => FaultKind::Kill,
                1 => FaultKind::Leave,
                _ => FaultKind::Join,
            },
        };
        let pool = if kind == FaultKind::Join { &dead } else { &up };
        let node = pool[(splitmix64(&mut state) % pool.len() as u64) as usize];
        alive[node] = kind == FaultKind::Join;
        events.push(FaultEvent { at, node, kind });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_valid() {
        let a = fault_schedule(4, 8, 6, 42);
        let b = fault_schedule(4, 8, 6, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let mut alive = [true; 4];
        let mut last_at = 0;
        for e in &a {
            assert!(e.at >= 1 && e.at < 8, "event outside [1, horizon): {e:?}");
            assert!(e.at >= last_at, "events out of order: {e:?}");
            last_at = e.at;
            assert_ne!(e.node, 0, "node 0 must never fail");
            match e.kind {
                FaultKind::Kill | FaultKind::Leave => {
                    assert!(alive[e.node], "fault on a dead node: {e:?}");
                    alive[e.node] = false;
                }
                FaultKind::Join => {
                    assert!(!alive[e.node], "join of a live node: {e:?}");
                    alive[e.node] = true;
                }
            }
            assert!(alive[0], "someone killed node 0");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        // Not guaranteed for arbitrary seeds, but these must differ — a
        // regression guard against the seed being ignored.
        let a = fault_schedule(6, 16, 8, 1);
        let b = fault_schedule(6, 16, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn degenerate_clusters_yield_empty_schedules() {
        assert!(fault_schedule(1, 8, 5, 7).is_empty());
        assert!(fault_schedule(4, 1, 5, 7).is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(FaultKind::Kill.name(), "kill");
        assert_eq!(FaultKind::Leave.name(), "leave");
        assert_eq!(FaultKind::Join.name(), "join");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = fault_schedule(0, 4, 1, 0);
    }
}
