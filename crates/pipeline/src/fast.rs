//! The vectorized MinIO epoch engine: the single-server fast path.
//!
//! DS-Analyzer's what-if sweeps re-simulate the same job across ≥10⁵ grid
//! points, and almost every point is CoorDL's MinIO configuration (§4.1).
//! MinIO never evicts and never demotes, so an all-MinIO [`dcache::TierChain`]
//! collapses to flat arrays: per fetch unit the topmost tier holding it, and
//! per tier the bytes admitted so far.  This module replays exactly the
//! chain's placement rules over those arrays — provenance serves the access,
//! the first tier above provenance with room admits (spill-down on a store
//! miss, promotion on a lower-tier hit), at most one admission per access —
//! without hash maps, policy objects or a [`storage::StorageNode`].
//!
//! The contract is **bit-identity**: for a [`Scenario::SingleServer`] run
//! whose loader uses [`PolicyKind::MinIo`](dcache::PolicyKind), the
//! [`EpochMetrics`] produced here equal the exact engine's
//! ([`crate::engine::single_epoch`]) in every field, warm-up epochs included.
//! `tests/fast_engine_equivalence.rs` cross-checks the two engines over
//! random configurations; [`Experiment`](crate::Experiment) selects this path
//! automatically and falls back to the exact engine everywhere else.

use crate::config::ServerConfig;
use crate::engine::{
    access_pattern, compute_secs_for_batch, local_fetch_secs, prep_secs_for_batch, BatchFetch,
    EngineScratch, IO_BINS,
};
use crate::experiment::CacheSpec;
use crate::job::JobSpec;
use crate::loader::FetchOrder;
use crate::metrics::EpochMetrics;
use dataset::{EpochSampler, ItemId};
use dcache::TierCost;
use prep::PrepCostModel;
use storage::{AccessPattern, DeviceProfile};

/// Sentinel for "resident in no tier".
pub(crate) const NO_TIER: u32 = u32::MAX;

/// Per-item metadata the replay needs, packed so a shuffled epoch loads one
/// cache line per item instead of three.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ItemMeta {
    /// Fetch-unit key (`StorageFormat::unit_of`).
    pub(crate) key: u64,
    /// Fetch-unit size in bytes.
    pub(crate) unit_bytes: u64,
    /// Raw (encoded) item size (`DatasetSpec::item_size`).
    pub(crate) raw_bytes: u64,
}

/// The capacities and hit costs of the cache chain [`crate::engine::build_node`]
/// would build, fastest tier first — everything the flat-array replay needs.
pub(crate) struct TierPlan {
    caps: Vec<u64>,
    costs: Vec<TierCost>,
}

impl TierPlan {
    /// Mirror of [`crate::engine::build_node`]'s tier specs for `cache`.
    pub(crate) fn new(server: &ServerConfig, cache: CacheSpec) -> Self {
        match cache {
            CacheSpec::DramOnly => TierPlan {
                caps: vec![server.dram_cache_bytes],
                costs: vec![storage::dram_tier_cost()],
            },
            CacheSpec::Tiered {
                dram_bytes,
                ssd_bytes,
            } => TierPlan {
                caps: vec![dram_bytes, ssd_bytes],
                costs: vec![
                    storage::dram_tier_cost(),
                    // Same random-read SSD cost the exact chain charges.
                    DeviceProfile::sata_ssd().tier_cost(AccessPattern::Random),
                ],
            },
        }
    }
}

/// Initialise `scratch` for one fast single-server run: per-item fetch-unit
/// keys/sizes and a cold cache state.  Must be called once per run (the cache
/// stays warm across that run's epochs, like the exact engine's node).
pub(crate) fn init_run(job: &JobSpec, plan: &TierPlan, scratch: &mut EngineScratch) {
    let n = job.dataset.num_items as usize;
    // The metadata arrays depend only on the dataset's size distribution and
    // the storage format — both constant across a sweep's grid points — so
    // rebuild them (size-jitter hashing included) only when those change.
    let meta_key = (
        job.dataset.num_items,
        job.dataset.avg_item_bytes,
        job.dataset.size_spread.to_bits(),
        job.loader.format,
    );
    if scratch.meta_key != Some(meta_key) {
        scratch.items_meta.clear();
        scratch.item_sizes.clear();
        for item in 0..job.dataset.num_items {
            let unit = job.loader.format.unit_of(item, &job.dataset);
            let raw_bytes = job.dataset.item_size(item);
            scratch.items_meta.push(ItemMeta {
                key: unit.key,
                unit_bytes: unit.bytes,
                raw_bytes,
            });
            scratch.item_sizes.push(raw_bytes);
        }
        scratch.meta_key = Some(meta_key);
    }
    debug_assert_eq!(scratch.items_meta.len(), n);
    // The cache state, by contrast, is cold at the start of every run.
    let num_units = job.loader.format.num_units(&job.dataset);
    scratch.unit_tier.clear();
    scratch.unit_tier.resize(num_units as usize, NO_TIER);
    scratch.tier_used.clear();
    scratch.tier_used.resize(plan.caps.len(), 0);
}

/// One epoch of the fast engine: identical batch structure and cost formulas
/// to [`crate::engine::single_epoch`], with the cache chain replayed over the
/// flat arrays in `scratch`.
pub(crate) fn single_epoch_fast(
    server: &ServerConfig,
    job: &JobSpec,
    plan: &TierPlan,
    epoch: u64,
    scratch: &mut EngineScratch,
) -> EpochMetrics {
    let num_items_u64 = job.dataset.num_items;
    // Memoize the consume permutation: it depends only on (item count, seed,
    // epoch), all of which a sweep holds constant across grid points, so the
    // Fisher–Yates shuffle runs once per epoch index instead of once per
    // point.  Epochs past the memo cap fall back to shuffling in place.
    const PERM_MEMO_EPOCHS: usize = 64;
    if scratch.perm_items != num_items_u64 || scratch.perm_seed != job.seed {
        scratch.perms.clear();
        scratch.perm_items = num_items_u64;
        scratch.perm_seed = job.seed;
    }
    let sampler = EpochSampler::new(num_items_u64, job.seed);
    let e = epoch as usize;
    let memoized = e < PERM_MEMO_EPOCHS;
    if memoized {
        if scratch.perms.len() <= e {
            scratch.perms.resize_with(e + 1, Vec::new);
        }
        if scratch.perms[e].is_empty() {
            let mut perm = std::mem::take(&mut scratch.perms[e]);
            sampler.permutation_into(epoch, &mut perm);
            scratch.perms[e] = perm;
        }
    } else {
        sampler.permutation_into(epoch, &mut scratch.consume_order);
    }
    let consume: &[ItemId] = if memoized {
        &scratch.perms[e]
    } else {
        &scratch.consume_order
    };
    // The storage read order: a *sorted full permutation* is the identity,
    // so the sequential stream is 0..n with no sort; the shuffled stream is
    // the consume order itself (`fetch_stream_into` produces exactly these).
    let fetch: &[ItemId] = if job.loader.fetch_order == FetchOrder::Sequential {
        scratch.fetch_order.clear();
        scratch.fetch_order.extend(0..num_items_u64);
        &scratch.fetch_order
    } else {
        consume
    };
    let pattern = access_pattern(job);
    let global_batch = job.global_batch();

    let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
    let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);
    let latency = server.device.request_latency_s;
    let bandwidth = server.device.bandwidth(pattern);
    // Every full batch has the same sample count, so its compute time is one
    // number — hoist it out of the loop (the trailing partial batch, if any,
    // is computed on demand with the identical formula).
    let compute_full = compute_secs_for_batch(job, server.gpu, global_batch);

    let EngineScratch {
        items_meta,
        item_sizes,
        unit_tier,
        tier_used,
        acc,
        ..
    } = scratch;
    acc.reset(epoch, job.loader.prefetch_depth);
    let num_tiers = tier_used.len() as u32;
    let num_items = consume.len();
    let fused = job.loader.fetch_order != FetchOrder::Sequential;
    // For file-per-item formats the fetch unit is the item itself (key = id,
    // unit bytes = raw bytes), so the replay can index the dense size array
    // directly and skip the packed metadata entirely.
    let per_item = matches!(job.loader.format, dataset::StorageFormat::FilePerItem);
    for (i, batch) in consume.chunks(global_batch).enumerate() {
        let start = i * global_batch;
        let end = (start + batch.len()).min(num_items);

        let mut bf = BatchFetch::default();
        let mut lower_secs = 0.0;
        let mut raw_bytes = 0u64;
        match (fused, per_item) {
            // Shuffled: the fetch slice *is* the consume batch, so one pass
            // serves both the cache replay and the raw-size sum.
            (true, true) => {
                for &item in batch {
                    let bytes = item_sizes[item as usize];
                    raw_bytes += bytes;
                    replay_access(
                        plan,
                        unit_tier,
                        tier_used,
                        num_tiers,
                        item as usize,
                        bytes,
                        &mut bf,
                        &mut lower_secs,
                    );
                }
            }
            (true, false) => {
                for &item in batch {
                    let m = items_meta[item as usize];
                    raw_bytes += m.raw_bytes;
                    replay_access(
                        plan,
                        unit_tier,
                        tier_used,
                        num_tiers,
                        m.key as usize,
                        m.unit_bytes,
                        &mut bf,
                        &mut lower_secs,
                    );
                }
            }
            (false, true) => {
                for &item in &fetch[start..end] {
                    let bytes = item_sizes[item as usize];
                    replay_access(
                        plan,
                        unit_tier,
                        tier_used,
                        num_tiers,
                        item as usize,
                        bytes,
                        &mut bf,
                        &mut lower_secs,
                    );
                }
                raw_bytes = batch.iter().map(|&it| item_sizes[it as usize]).sum();
            }
            (false, false) => {
                for &item in &fetch[start..end] {
                    let m = items_meta[item as usize];
                    replay_access(
                        plan,
                        unit_tier,
                        tier_used,
                        num_tiers,
                        m.key as usize,
                        m.unit_bytes,
                        &mut bf,
                        &mut lower_secs,
                    );
                }
                raw_bytes = batch
                    .iter()
                    .map(|&it| items_meta[it as usize].raw_bytes)
                    .sum();
            }
        }
        bf.fetch_secs = local_fetch_secs(&bf, lower_secs, latency, bandwidth, 1.0);

        let prep = prep_secs_for_batch(job, raw_bytes, cores);
        let compute = if batch.len() == global_batch {
            compute_full
        } else {
            compute_secs_for_batch(job, server.gpu, batch.len())
        };
        acc.push_batch(&bf, prep, compute, batch.len() as u64);
    }
    acc.finish(IO_BINS)
}

/// Replay one access against the flat cache state: provenance serves it,
/// then the first tier above provenance with room admits (spill-down on a
/// store miss, promotion on a lower-tier hit), exactly like the chain.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn replay_access(
    plan: &TierPlan,
    unit_tier: &mut [u32],
    tier_used: &mut [u64],
    num_tiers: u32,
    key: usize,
    bytes: u64,
    bf: &mut BatchFetch,
    lower_secs: &mut f64,
) {
    let tier = unit_tier[key];
    if num_tiers == 1 {
        // Single-tier (DramOnly) chain, the common sweep shape: `tier` is 0
        // or `NO_TIER`, no lower tiers exist, and the whole access reduces
        // to masked integer updates.  Branchless on the data-dependent
        // hit/miss outcome, which the predictor cannot learn.
        let miss = (tier != 0) as u64;
        let hit = 1 - miss;
        bf.cache_bytes += bytes * hit;
        bf.hits += hit;
        bf.disk_bytes += bytes * miss;
        bf.misses += miss;
        let admit = miss & (tier_used[0] + bytes <= plan.caps[0]) as u64;
        tier_used[0] += bytes * admit;
        unit_tier[key] = if admit == 1 { 0 } else { tier };
        return;
    }
    if tier == 0 {
        // Hit at the top tier: served, nothing to admit.
        bf.cache_bytes += bytes;
        bf.hits += 1;
        return;
    }
    let probe_until = if tier == NO_TIER {
        // Store miss: every tier may admit.
        bf.disk_bytes += bytes;
        bf.misses += 1;
        num_tiers
    } else {
        // Lower-tier hit, charged at that tier's cost; the tiers above it
        // may promote.
        bf.cache_bytes += bytes;
        bf.hits += 1;
        bf.lower_bytes += bytes;
        bf.lower_hits += 1;
        *lower_secs += plan.costs[tier as usize].access_seconds(bytes);
        tier
    };
    // MinIO admission, top down: the first tier with room takes the unit
    // (at most one admission per access, like the chain).
    for (k, used) in tier_used.iter_mut().enumerate().take(probe_until as usize) {
        if *used + bytes <= plan.caps[k] {
            *used += bytes;
            unit_tier[key] = k as u32;
            break;
        }
    }
}
