//! The unified experiment API: one builder, one scenario enum, one report.
//!
//! Every comparison in the paper's evaluation — and every bench, example and
//! test in this workspace — is the same experiment shape: a server, one or
//! more jobs, a scenario and an epoch count.  [`Experiment`] expresses that
//! directly:
//!
//! ```
//! use pipeline::{Experiment, JobSpec, LoaderConfig, Scenario, ServerConfig};
//! use dataset::DatasetSpec;
//! use gpu::ModelKind;
//!
//! let dataset = DatasetSpec::imagenet_1k().scaled(2000);
//! let server = ServerConfig::config_ssd_v100()
//!     .with_cache_fraction(dataset.total_bytes(), 0.35);
//! let job = JobSpec::new(
//!     ModelKind::ResNet18,
//!     dataset,
//!     1,
//!     LoaderConfig::coordl_best(ModelKind::ResNet18),
//! );
//!
//! let report = Experiment::on(&server)
//!     .job(job)
//!     .scenario(Scenario::HpSearch { jobs: 8 })
//!     .epochs(3)
//!     .run();
//! assert_eq!(report.num_units(), 8);
//! assert!(report.steady_per_job_samples_per_sec() > 0.0);
//! ```
//!
//! The same builder covers the single-server (§5.1), HP-search (§5.3) and
//! distributed (§5.2) scenarios the paper evaluates, plus a
//! [`Scenario::MixedCluster`] of *heterogeneous* jobs — different models,
//! datasets and loaders — contending for one server's cache, CPU and disk,
//! which the legacy one-function-per-scenario API could not express.

use crate::churn::churn_schedule;
use crate::config::ServerConfig;
use crate::engine::{
    build_node, shared_coordinated_epoch, shared_uncoordinated_epoch, single_epoch, DistributedSim,
    EngineScratch,
};
use crate::fast;
use crate::job::JobSpec;
use crate::json::{write_f64 as json_f64, write_string as json_string, write_u64_array};
use crate::metrics::{EpochMetrics, RunResult};

/// The cache hierarchy every storage node of the experiment runs
/// (`dcache::TierChain` under the hood).
///
/// The replacement policy at each tier comes from the job's loader
/// ([`crate::LoaderConfig::cache_policy`]), so the baselines keep their
/// page-cache LRU and CoorDL keeps MinIO at every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSpec {
    /// One DRAM tier sized by [`ServerConfig::dram_cache_bytes`] — the
    /// pre-hierarchy behaviour, bit-identical to it by construction.
    DramOnly,
    /// A DRAM tier spilling into a local SATA-SSD tier (§4.2 / Table 2:
    /// the SSD extends MinIO's reach at 530 MB/s instead of DRAM
    /// bandwidth).  Epoch drivers charge SSD hits at the SSD profile's
    /// random-read cost instead of the flat cache-or-disk split.
    Tiered {
        /// DRAM tier capacity in bytes (overrides the server's DRAM cache
        /// size so sweeps can vary it per point).
        dram_bytes: u64,
        /// Local-SSD tier capacity in bytes.
        ssd_bytes: u64,
    },
}

impl CacheSpec {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CacheSpec::DramOnly => "dram",
            CacheSpec::Tiered { .. } => "dram+ssd",
        }
    }
}

/// The shape of a training scenario (which resources are shared and how).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One job alone on one server: all CPU cores, the full device bandwidth
    /// and the entire DRAM cache (§5.1, Figure 9a).
    SingleServer,
    /// `jobs` concurrent hyper-parameter-search jobs training the *same*
    /// dataset on one server (§5.3, Figure 9d).  When the builder holds a
    /// single job it is cloned `jobs` times with derived seeds; an explicit
    /// job list must have exactly `jobs` entries.  The first job's loader
    /// decides whether CoorDL's coordinated prep is used.
    HpSearch {
        /// Number of concurrent jobs in the search ensemble.
        jobs: usize,
    },
    /// One data-parallel job spread over `servers` identical servers (§5.2,
    /// Figure 9b), with CoorDL's partitioned caching when the loader enables
    /// it.
    Distributed {
        /// Number of identical servers, each contributing `job.num_gpus` GPUs.
        servers: usize,
    },
    /// Heterogeneous jobs — different models, datasets and loaders — sharing
    /// one server's cache, CPU cores and disk bandwidth.  Generalises the
    /// symmetric-HP-search assumption: jobs sweep their *own* datasets
    /// uncoordinated, contending in the shared cache (whose policy is taken
    /// from the first job's loader).
    MixedCluster,
    /// `tenants` jobs arriving and departing over the run on one shared
    /// server — the elastic counterpart of the multi-tenant `coordl::Server`
    /// (§5 HP-search lineage with job churn).  A deterministic
    /// [`churn_schedule`] seeded by `seed`
    /// decides each tenant's `[arrival, departure)` window; a departing
    /// tenant's cached keys are reclaimed from the shared chain at the
    /// departure-epoch boundary.  Each tenant gets its own cache-key window
    /// even when datasets coincide, mirroring the runtime server's
    /// per-tenant key namespacing.
    ElasticCluster {
        /// Number of tenants in the churn schedule.
        tenants: usize,
        /// Seed of the churn schedule.
        seed: u64,
    },
    /// A distributed data-parallel job whose servers suffer injected
    /// membership faults — crashes, graceful leaves and rejoins — from the
    /// seeded [`dcache::fault_schedule`] the runtime's `coordl::FaultPlan`
    /// shares.  A failed server keeps training (its consumer never loses a
    /// sample) but its cache shard drops out of the partitioned directory
    /// and is re-homed onto survivors in rendezvous order; a rejoined
    /// server's stale-but-valid cache re-advertises lazily.  The §5.2
    /// partitioned-caching claims under churn.
    PartitionedChaos {
        /// Number of identical servers in the cluster.
        servers: usize,
        /// Number of membership events to schedule.
        faults: usize,
        /// Seed of the fault schedule.
        seed: u64,
    },
}

impl Scenario {
    /// Short scenario name used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SingleServer => "single-server",
            Scenario::HpSearch { .. } => "hp-search",
            Scenario::Distributed { .. } => "distributed",
            Scenario::MixedCluster => "mixed-cluster",
            Scenario::ElasticCluster { .. } => "elastic-cluster",
            Scenario::PartitionedChaos { .. } => "partitioned-chaos",
        }
    }

    /// What one "unit" of the report is for this scenario.
    fn unit_label(&self) -> &'static str {
        match self {
            Scenario::SingleServer => "job",
            Scenario::HpSearch { .. } | Scenario::MixedCluster => "job",
            Scenario::ElasticCluster { .. } => "job",
            Scenario::Distributed { .. } | Scenario::PartitionedChaos { .. } => "server",
        }
    }
}

/// Per-epoch snapshot handed to [`Experiment::observer`] callbacks as the
/// simulation runs: one [`EpochMetrics`] per unit (job or server).
#[derive(Debug)]
pub struct EpochUpdate<'a> {
    /// Epoch index (0 is the cold-cache warm-up epoch).
    pub epoch: u64,
    /// The scenario being simulated.
    pub scenario: Scenario,
    /// This epoch's metrics for each unit, in unit order.
    pub units: &'a [EpochMetrics],
}

/// A per-epoch telemetry callback registered with [`Experiment::observer`].
type Observer<'obs> = Box<dyn FnMut(&EpochUpdate<'_>) + 'obs>;

/// Builder for one simulated experiment.
///
/// Construct with [`Experiment::on`], describe the workload with
/// [`job`](Experiment::job) / [`jobs`](Experiment::jobs) and
/// [`scenario`](Experiment::scenario), then [`run`](Experiment::run).
pub struct Experiment<'obs> {
    server: ServerConfig,
    jobs: Vec<JobSpec>,
    scenario: Scenario,
    cache: CacheSpec,
    epochs: u64,
    observer: Option<Observer<'obs>>,
    scratch: Option<&'obs mut EngineScratch>,
    exact_engine: bool,
}

impl<'obs> Experiment<'obs> {
    /// Start describing an experiment on `server`.  Defaults:
    /// [`Scenario::SingleServer`], 3 epochs (one warm-up plus two measured,
    /// the paper's methodology), no observer.
    pub fn on(server: &ServerConfig) -> Self {
        Experiment {
            server: server.clone(),
            jobs: Vec::new(),
            scenario: Scenario::SingleServer,
            cache: CacheSpec::DramOnly,
            epochs: 3,
            observer: None,
            scratch: None,
            exact_engine: false,
        }
    }

    /// Add one job.  May be called repeatedly; jobs accumulate.
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Replace the job list wholesale (explicit HP-search ensembles with
    /// custom seeds, mixed clusters).
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.jobs = jobs.into_iter().collect();
        self
    }

    /// Select the scenario shape.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Select the cache hierarchy every storage node runs (default:
    /// [`CacheSpec::DramOnly`], the single-tier behaviour).  In distributed
    /// scenarios each server gets its own chain of this shape.
    pub fn cache(mut self, cache: CacheSpec) -> Self {
        self.cache = cache;
        self
    }

    /// Number of epochs to simulate (epoch 0 starts with a cold cache).
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs;
        self
    }

    /// Register a per-epoch callback for live telemetry: it is invoked after
    /// every simulated epoch with that epoch's metrics for every unit.
    pub fn observer(mut self, f: impl FnMut(&EpochUpdate<'_>) + 'obs) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Reuse `scratch` for all per-epoch working memory instead of
    /// allocating fresh buffers; sweeps thread one scratch per worker
    /// through every grid point.  Results are bit-identical either way.
    pub fn scratch(mut self, scratch: &'obs mut EngineScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Force the exact cache-chain engine even where the vectorized MinIO
    /// fast path applies (default `false`).  The two engines produce
    /// bit-identical [`SimReport`]s — this switch exists so tests, the
    /// `mega-sweep` gate and curious users can prove it.
    pub fn exact_engine(mut self, exact: bool) -> Self {
        self.exact_engine = exact;
        self
    }

    /// Run the simulation.
    ///
    /// # Panics
    /// Panics on invalid configurations: no jobs, zero epochs, more GPUs
    /// requested than the server has, HP-search jobs with different datasets,
    /// or a job count that contradicts `Scenario::HpSearch { jobs }`.
    pub fn run(self) -> SimReport {
        assert!(self.epochs > 0, "need at least one epoch");
        assert!(!self.jobs.is_empty(), "need at least one job");

        let scenario = self.scenario;
        let mut report = match scenario {
            Scenario::SingleServer => self.run_single(),
            Scenario::HpSearch { jobs } => self.run_shared(Some(jobs)),
            Scenario::MixedCluster => self.run_shared(None),
            Scenario::ElasticCluster { tenants, seed } => self.run_elastic(tenants, seed),
            Scenario::Distributed { servers } => self.run_distributed(servers),
            Scenario::PartitionedChaos {
                servers,
                faults,
                seed,
            } => self.run_partitioned_chaos(servers, faults, seed),
        };
        report.scenario = scenario;
        report
    }

    fn notify(
        observer: &mut Option<Observer<'obs>>,
        scenario: Scenario,
        epoch: u64,
        units: &[EpochMetrics],
    ) {
        if let Some(f) = observer.as_mut() {
            f(&EpochUpdate {
                epoch,
                scenario,
                units,
            });
        }
    }

    fn run_single(mut self) -> SimReport {
        assert_eq!(
            self.jobs.len(),
            1,
            "Scenario::SingleServer takes exactly one job, got {}",
            self.jobs.len()
        );
        let job = self.jobs.remove(0);
        assert!(
            job.num_gpus <= self.server.num_gpus,
            "job wants {} GPUs but the server has {}",
            job.num_gpus,
            self.server.num_gpus
        );
        let mut local_scratch = EngineScratch::default();
        let scratch = match self.scratch.take() {
            Some(s) => s,
            None => &mut local_scratch,
        };
        let mut report = SimReport::empty(Scenario::SingleServer, 1);
        // MinIO single-server runs take the vectorized flat-array engine
        // (`crate::fast`), bit-identical to the chain but 10–100× cheaper per
        // sweep point; every other configuration runs the exact chain.
        if !self.exact_engine && job.loader.cache_policy == dcache::PolicyKind::MinIo {
            let plan = fast::TierPlan::new(&self.server, self.cache);
            fast::init_run(&job, &plan, scratch);
            for epoch in 0..self.epochs {
                let m = fast::single_epoch_fast(&self.server, &job, &plan, epoch, scratch);
                Self::notify(
                    &mut self.observer,
                    Scenario::SingleServer,
                    epoch,
                    std::slice::from_ref(&m),
                );
                report.push_epoch(vec![m]);
            }
        } else {
            let mut node = build_node(&self.server, job.loader.cache_policy, self.cache);
            for epoch in 0..self.epochs {
                node.reset_epoch_stats();
                let m = single_epoch(&self.server, &job, &mut node, epoch, scratch);
                Self::notify(
                    &mut self.observer,
                    Scenario::SingleServer,
                    epoch,
                    std::slice::from_ref(&m),
                );
                report.push_epoch(vec![m]);
            }
        }
        report
    }

    /// Shared-server scenarios: symmetric HP search (`expected_jobs` given)
    /// or a heterogeneous mixed cluster (`None`).
    fn run_shared(mut self, expected_jobs: Option<usize>) -> SimReport {
        let scenario = self.scenario;
        if let Some(n) = expected_jobs {
            assert!(n > 0, "need at least one HP-search job");
            if self.jobs.len() == 1 && n > 1 {
                // Clone the template job with derived seeds, as the paper's
                // HP-search ensembles differ only in hyper-parameters/seed.
                let template = self.jobs[0].clone();
                self.jobs = (0..n)
                    .map(|j| template.with_seed(template.seed + j as u64))
                    .collect();
            }
            assert_eq!(
                self.jobs.len(),
                n,
                "Scenario::HpSearch {{ jobs: {n} }} got {} jobs",
                self.jobs.len()
            );
            for j in &self.jobs {
                assert_eq!(
                    j.dataset, self.jobs[0].dataset,
                    "HP-search jobs must share a dataset; use Scenario::MixedCluster \
                     for heterogeneous jobs"
                );
            }
        }
        let total_gpus: usize = self.jobs.iter().map(|j| j.num_gpus).sum();
        assert!(
            total_gpus <= self.server.num_gpus,
            "jobs use {total_gpus} GPUs but the server has {}",
            self.server.num_gpus
        );

        // Heterogeneous jobs may train different datasets: namespace each
        // job's cache keys so item ids do not collide in the shared cache.
        // Jobs sharing a dataset *and* on-storage format (HP search) share
        // key space, preserving the cache-sharing behaviour the paper
        // measures; different formats address different fetch units (items
        // vs record chunks), so they must not alias either.
        let mut key_bases = Vec::with_capacity(self.jobs.len());
        let mut next_base = 0u64;
        for job in &self.jobs {
            let prior = self.jobs[..key_bases.len()]
                .iter()
                .position(|j| j.dataset == job.dataset && j.loader.format == job.loader.format);
            match prior {
                Some(i) => key_bases.push(key_bases[i]),
                None => {
                    key_bases.push(next_base);
                    next_base += job.dataset.num_items;
                }
            }
        }

        let coordinated = self.jobs[0].loader.coordinated_prep && expected_jobs.is_some();
        let mut node = build_node(&self.server, self.jobs[0].loader.cache_policy, self.cache);
        let mut report = SimReport::empty(scenario, self.jobs.len());
        for epoch in 0..self.epochs {
            node.reset_epoch_stats();
            let per_epoch = if coordinated {
                shared_coordinated_epoch(&self.server, &self.jobs, &mut node, epoch)
            } else {
                shared_uncoordinated_epoch(&self.server, &self.jobs, &mut node, epoch, &key_bases)
            };
            Self::notify(&mut self.observer, scenario, epoch, &per_epoch);
            report.push_epoch(per_epoch);
        }
        report
    }

    /// Elastic multi-tenant scenario: the shared-server driver over the
    /// subset of tenants active each epoch, with per-tenant cache-key
    /// windows and departure-time reclamation.
    fn run_elastic(mut self, tenants: usize, seed: u64) -> SimReport {
        assert!(tenants > 0, "need at least one tenant");
        if self.jobs.len() == 1 && tenants > 1 {
            let template = self.jobs[0].clone();
            self.jobs = (0..tenants)
                .map(|j| template.with_seed(template.seed + j as u64))
                .collect();
        }
        assert_eq!(
            self.jobs.len(),
            tenants,
            "Scenario::ElasticCluster {{ tenants: {tenants} }} got {} jobs",
            self.jobs.len()
        );
        let total_gpus: usize = self.jobs.iter().map(|j| j.num_gpus).sum();
        assert!(
            total_gpus <= self.server.num_gpus,
            "jobs use {total_gpus} GPUs but the server has {}",
            self.server.num_gpus
        );

        // Unlike HP search, tenants are namespace-isolated even on the same
        // dataset (the runtime server's per-tenant key windows): every job
        // gets a distinct key base.
        let mut key_bases = Vec::with_capacity(self.jobs.len());
        let mut next_base = 0u64;
        for job in &self.jobs {
            key_bases.push(next_base);
            next_base += job.dataset.num_items;
        }

        let schedule = churn_schedule(tenants, self.epochs, seed);
        let scenario = self.scenario;
        let mut node = build_node(&self.server, self.jobs[0].loader.cache_policy, self.cache);
        let mut report = SimReport::empty(scenario, tenants);
        for epoch in 0..self.epochs {
            // Reclaim the key windows of tenants departing at this boundary
            // before anyone trains, mirroring the runtime's
            // `TenantHandle::depart`.
            for (j, t) in schedule.iter().enumerate() {
                if t.departure == epoch {
                    node.evict_keyspace(
                        key_bases[j],
                        key_bases[j] + self.jobs[j].dataset.num_items,
                    );
                }
            }
            node.reset_epoch_stats();
            let active: Vec<usize> = (0..tenants)
                .filter(|&j| schedule[j].is_active(epoch))
                .collect();
            let active_jobs: Vec<JobSpec> = active.iter().map(|&j| self.jobs[j].clone()).collect();
            let active_bases: Vec<u64> = active.iter().map(|&j| key_bases[j]).collect();
            let results = shared_uncoordinated_epoch(
                &self.server,
                &active_jobs,
                &mut node,
                epoch,
                &active_bases,
            );
            let mut per_epoch: Vec<EpochMetrics> =
                (0..tenants).map(|_| idle_epoch(epoch)).collect();
            for (&slot, m) in active.iter().zip(results) {
                per_epoch[slot] = m;
            }
            Self::notify(&mut self.observer, scenario, epoch, &per_epoch);
            report.push_epoch(per_epoch);
        }
        report
    }

    fn run_distributed(mut self, num_servers: usize) -> SimReport {
        assert!(num_servers >= 1, "need at least one server");
        assert_eq!(
            self.jobs.len(),
            1,
            "Scenario::Distributed takes exactly one data-parallel job, got {}",
            self.jobs.len()
        );
        let job = self.jobs.remove(0);
        assert!(
            job.num_gpus <= self.server.num_gpus,
            "job wants {} GPUs per server but servers have {}",
            job.num_gpus,
            self.server.num_gpus
        );
        let scenario = self.scenario;
        let mut sim = DistributedSim::new(&self.server, &job, num_servers, self.cache);
        let mut report = SimReport::empty(scenario, num_servers);
        for epoch in 0..self.epochs {
            let per_epoch = sim.epoch(&self.server, &job, epoch);
            Self::notify(&mut self.observer, scenario, epoch, &per_epoch);
            report.push_epoch(per_epoch);
        }
        report
    }

    /// Distributed scenario under a seeded membership-fault schedule; the
    /// fault-free prefix is bit-identical to [`Scenario::Distributed`] by
    /// construction (same engine, same shards, same directory).
    fn run_partitioned_chaos(mut self, num_servers: usize, faults: usize, seed: u64) -> SimReport {
        assert!(num_servers >= 2, "chaos needs at least two servers");
        assert_eq!(
            self.jobs.len(),
            1,
            "Scenario::PartitionedChaos takes exactly one data-parallel job, got {}",
            self.jobs.len()
        );
        let job = self.jobs.remove(0);
        assert!(
            job.num_gpus <= self.server.num_gpus,
            "job wants {} GPUs per server but servers have {}",
            job.num_gpus,
            self.server.num_gpus
        );
        let scenario = self.scenario;
        let mut sim = DistributedSim::with_faults(
            &self.server,
            &job,
            num_servers,
            self.cache,
            self.epochs,
            faults,
            seed,
        );
        let mut report = SimReport::empty(scenario, num_servers);
        for epoch in 0..self.epochs {
            let per_epoch = sim.epoch(&self.server, &job, epoch);
            Self::notify(&mut self.observer, scenario, epoch, &per_epoch);
            report.push_epoch(per_epoch);
        }
        report
    }
}

/// The unified result of any [`Experiment`]: per-unit epoch metrics plus
/// cross-unit aggregates.  A *unit* is one job (single-server, HP search,
/// mixed cluster) or one server (distributed).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Scenario this report came from.
    pub scenario: Scenario,
    /// Per-unit run results, in unit order.
    pub units: Vec<RunResult>,
    /// Bytes read from storage per epoch, summed over units.
    pub disk_bytes_per_epoch: Vec<u64>,
    /// Bytes fetched over the network per epoch, summed over units
    /// (non-zero only with partitioned caching).
    pub remote_bytes_per_epoch: Vec<u64>,
}

impl SimReport {
    fn empty(scenario: Scenario, num_units: usize) -> Self {
        SimReport {
            scenario,
            units: vec![RunResult::default(); num_units],
            disk_bytes_per_epoch: Vec::new(),
            remote_bytes_per_epoch: Vec::new(),
        }
    }

    fn push_epoch(&mut self, per_unit: Vec<EpochMetrics>) {
        debug_assert_eq!(per_unit.len(), self.units.len());
        self.disk_bytes_per_epoch
            .push(per_unit.iter().map(|m| m.bytes_from_disk).sum());
        self.remote_bytes_per_epoch
            .push(per_unit.iter().map(|m| m.bytes_from_remote).sum());
        for (unit, m) in self.units.iter_mut().zip(per_unit) {
            unit.epochs.push(m);
        }
    }

    /// Number of units (jobs or servers).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of simulated epochs.
    pub fn num_epochs(&self) -> usize {
        self.disk_bytes_per_epoch.len()
    }

    /// Per-job results (single-server, HP-search and mixed-cluster runs).
    pub fn per_job(&self) -> &[RunResult] {
        &self.units
    }

    /// Per-server results (distributed runs).
    pub fn per_server(&self) -> &[RunResult] {
        &self.units
    }

    /// The single unit of a single-server run.
    ///
    /// # Panics
    /// Panics if the report has more than one unit.
    pub fn single(&self) -> &RunResult {
        assert_eq!(
            self.units.len(),
            1,
            "SimReport::single() on a {}-unit {} report",
            self.units.len(),
            self.scenario.name()
        );
        &self.units[0]
    }

    /// Warm-up (first) epoch of the single unit; see [`SimReport::single`].
    pub fn warmup(&self) -> &EpochMetrics {
        self.single().warmup()
    }

    /// Steady-state metrics of the single unit; see [`SimReport::single`].
    pub fn steady_state(&self) -> EpochMetrics {
        self.single().steady_state()
    }

    /// Steady-state epoch time: units synchronise (distributed) or contend
    /// (shared server), so the slowest unit sets the pace.
    pub fn steady_epoch_seconds(&self) -> f64 {
        self.units
            .iter()
            .map(|r| r.steady_state().epoch_seconds())
            .fold(0.0, f64::max)
    }

    /// Steady-state aggregate throughput in samples/second across all units.
    pub fn steady_samples_per_sec(&self) -> f64 {
        let secs = self.steady_epoch_seconds();
        if secs == 0.0 {
            return 0.0;
        }
        let samples: u64 = self.units.iter().map(|r| r.steady_state().samples).sum();
        samples as f64 / secs
    }

    /// Average steady-state per-job throughput in samples/second (the
    /// HP-search headline metric, §5.3).
    pub fn steady_per_job_samples_per_sec(&self) -> f64 {
        let n = self.units.len() as f64;
        self.units
            .iter()
            .map(RunResult::steady_samples_per_sec)
            .sum::<f64>()
            / n
    }

    /// Speedup of this experiment over `baseline`.
    ///
    /// Shared-server scenarios (HP search, mixed cluster) compare mean
    /// per-job throughput, matching the paper's §5.3 metric; single-server
    /// and distributed runs compare aggregate throughput.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        let (a, b) = match self.scenario {
            Scenario::HpSearch { .. }
            | Scenario::MixedCluster
            | Scenario::ElasticCluster { .. } => (
                self.steady_per_job_samples_per_sec(),
                baseline.steady_per_job_samples_per_sec(),
            ),
            Scenario::SingleServer
            | Scenario::Distributed { .. }
            | Scenario::PartitionedChaos { .. } => (
                self.steady_samples_per_sec(),
                baseline.steady_samples_per_sec(),
            ),
        };
        if b == 0.0 {
            f64::INFINITY
        } else {
            a / b
        }
    }

    /// Read amplification relative to one sweep over the dataset in the
    /// given epoch (Table 3 / §3.3.1: 8 uncoordinated jobs read up to 7× the
    /// dataset).
    pub fn read_amplification(&self, dataset_bytes: u64, epoch: usize) -> f64 {
        self.disk_bytes_per_epoch[epoch] as f64 / dataset_bytes as f64
    }

    /// Total disk traffic across all epochs and units.
    pub fn total_disk_bytes(&self) -> u64 {
        self.disk_bytes_per_epoch.iter().sum()
    }

    /// Per-unit disk I/O in the given epoch, in bytes.
    pub fn disk_bytes_per_server(&self, epoch: usize) -> Vec<u64> {
        self.units
            .iter()
            .map(|r| r.epochs[epoch].bytes_from_disk)
            .collect()
    }

    /// Average network receive bandwidth per server in Gbit/s during the
    /// given epoch (paper §5.5 reports CoorDL uses ~5.7 Gbps of the 40 Gbps).
    pub fn avg_network_gbps(&self, epoch: usize) -> f64 {
        let secs = self
            .units
            .iter()
            .map(|r| r.epochs[epoch].epoch_seconds())
            .fold(0.0, f64::max);
        if secs == 0.0 {
            return 0.0;
        }
        let per_server_bytes = self
            .units
            .iter()
            .map(|r| r.epochs[epoch].bytes_from_remote as f64)
            .sum::<f64>()
            / self.units.len() as f64;
        per_server_bytes * 8.0 / secs / 1e9
    }

    /// Extract the sole unit's [`RunResult`] (single-server runs).
    pub fn into_run_result(mut self) -> RunResult {
        assert_eq!(self.units.len(), 1, "report has more than one unit");
        self.units.remove(0)
    }

    /// Serialise the full report — per-unit, per-epoch metrics including the
    /// I/O timeline — as a JSON object, for bench trajectory dumps and
    /// external plotting.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"scenario\":");
        json_string(&mut out, self.scenario.name());
        out.push_str(",\"unit_kind\":");
        json_string(&mut out, self.scenario.unit_label());
        out.push_str(",\"epochs\":");
        out.push_str(&self.num_epochs().to_string());
        out.push_str(",\"disk_bytes_per_epoch\":");
        write_u64_array(&mut out, &self.disk_bytes_per_epoch);
        out.push_str(",\"remote_bytes_per_epoch\":");
        write_u64_array(&mut out, &self.remote_bytes_per_epoch);
        out.push_str(",\"steady_epoch_seconds\":");
        json_f64(&mut out, self.steady_epoch_seconds());
        out.push_str(",\"steady_samples_per_sec\":");
        json_f64(&mut out, self.steady_samples_per_sec());
        out.push_str(",\"units\":[");
        for (i, unit) in self.units.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"epochs\":[");
            for (j, e) in unit.epochs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                epoch_metrics_json(&mut out, e);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// A zeroed [`EpochMetrics`] for an epoch a tenant sat out of an elastic
/// cluster (not yet arrived or already departed).
fn idle_epoch(epoch: u64) -> EpochMetrics {
    EpochMetrics {
        epoch,
        breakdown: Default::default(),
        samples: 0,
        bytes_from_cache: 0,
        bytes_from_disk: 0,
        bytes_from_remote: 0,
        cache_hits: 0,
        cache_misses: 0,
        bytes_from_lower_tiers: 0,
        lower_tier_hits: 0,
        io_timeline: Vec::new(),
    }
}

fn epoch_metrics_json(out: &mut String, e: &EpochMetrics) {
    out.push_str("{\"epoch\":");
    out.push_str(&e.epoch.to_string());
    out.push_str(",\"epoch_seconds\":");
    json_f64(out, e.epoch_seconds());
    out.push_str(",\"compute_seconds\":");
    json_f64(out, e.breakdown.compute_time.as_secs());
    out.push_str(",\"fetch_stall_seconds\":");
    json_f64(out, e.breakdown.fetch_stall.as_secs());
    out.push_str(",\"prep_stall_seconds\":");
    json_f64(out, e.breakdown.prep_stall.as_secs());
    out.push_str(",\"samples\":");
    out.push_str(&e.samples.to_string());
    out.push_str(",\"samples_per_sec\":");
    json_f64(out, e.samples_per_sec());
    out.push_str(",\"bytes_from_cache\":");
    out.push_str(&e.bytes_from_cache.to_string());
    out.push_str(",\"bytes_from_disk\":");
    out.push_str(&e.bytes_from_disk.to_string());
    out.push_str(",\"bytes_from_remote\":");
    out.push_str(&e.bytes_from_remote.to_string());
    out.push_str(",\"cache_hits\":");
    out.push_str(&e.cache_hits.to_string());
    out.push_str(",\"cache_misses\":");
    out.push_str(&e.cache_misses.to_string());
    out.push_str(",\"bytes_from_lower_tiers\":");
    out.push_str(&e.bytes_from_lower_tiers.to_string());
    out.push_str(",\"lower_tier_hits\":");
    out.push_str(&e.lower_tier_hits.to_string());
    out.push_str(",\"io_timeline\":[");
    for (i, (t, v)) in e.io_timeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json_f64(out, *t);
        out.push(',');
        json_f64(out, *v);
        out.push(']');
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;
    use std::cell::RefCell;

    fn small_ds() -> DatasetSpec {
        DatasetSpec::imagenet_1k().scaled(2000)
    }

    fn ssd(ds: &DatasetSpec, frac: f64) -> ServerConfig {
        ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), frac)
    }

    #[test]
    fn single_server_report_has_one_unit_per_job_metrics() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let report = Experiment::on(&server).job(job).epochs(2).run();
        assert_eq!(report.scenario, Scenario::SingleServer);
        assert_eq!(report.num_units(), 1);
        assert_eq!(report.num_epochs(), 2);
        assert_eq!(report.single().epochs.len(), 2);
        assert_eq!(
            report.disk_bytes_per_epoch[0],
            report.single().epochs[0].bytes_from_disk
        );
        assert!(report.steady_samples_per_sec() > 0.0);
    }

    #[test]
    fn hp_search_clones_template_job_with_distinct_seeds() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            1,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        )
        .with_batch(64);
        let report = Experiment::on(&server)
            .job(job)
            .scenario(Scenario::HpSearch { jobs: 4 })
            .epochs(2)
            .run();
        assert_eq!(report.num_units(), 4);
        // All jobs processed the full dataset.
        for unit in report.per_job() {
            assert_eq!(unit.epochs.len(), 2);
            assert!(unit.steady_state().samples > 0);
        }
    }

    #[test]
    fn observer_sees_every_epoch_in_order() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            1,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        )
        .with_batch(64);
        let seen: RefCell<Vec<(u64, usize)>> = RefCell::new(Vec::new());
        let report = Experiment::on(&server)
            .job(job)
            .scenario(Scenario::HpSearch { jobs: 3 })
            .epochs(3)
            .observer(|update| {
                assert_eq!(update.scenario, Scenario::HpSearch { jobs: 3 });
                seen.borrow_mut().push((update.epoch, update.units.len()));
            })
            .run();
        assert_eq!(seen.into_inner(), vec![(0, 3), (1, 3), (2, 3)]);
        assert_eq!(report.num_epochs(), 3);
    }

    #[test]
    fn json_serialisation_is_well_formed() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let report = Experiment::on(&server).job(job).epochs(2).run();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"single-server\""));
        assert!(json.contains("\"epoch\":0"));
        assert!(json.contains("\"io_timeline\":["));
        assert!(!json.contains("inf") && !json.contains("NaN"));
        // Full well-formedness: the document must round-trip through the
        // crate's own JSON parser.
        let doc = crate::json::parse(&json).expect("SimReport::to_json must emit valid JSON");
        assert_eq!(
            doc.get("scenario").and_then(crate::json::Value::as_str),
            Some("single-server")
        );
        assert_eq!(
            doc.get("units")
                .and_then(crate::json::Value::as_array)
                .map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "share a dataset")]
    fn hp_search_rejects_heterogeneous_datasets() {
        let ds = small_ds();
        let other = DatasetSpec::new("other", 100, 1000, 0.0, 6.0);
        let server = ssd(&ds, 0.5);
        let _ = Experiment::on(&server)
            .jobs([
                JobSpec::new(ModelKind::ResNet18, ds, 1, LoaderConfig::pytorch_dl()),
                JobSpec::new(ModelKind::ResNet18, other, 1, LoaderConfig::pytorch_dl()),
            ])
            .scenario(Scenario::HpSearch { jobs: 2 })
            .run();
    }

    #[test]
    fn mixed_cluster_accepts_heterogeneous_datasets() {
        let ds_a = DatasetSpec::imagenet_1k().scaled(4000);
        let ds_b = DatasetSpec::openimages_extended().scaled(4000);
        let cache = ds_a.total_bytes() / 2 + ds_b.total_bytes() / 2;
        let server = ServerConfig::config_ssd_v100().with_cache_bytes(cache);
        let report = Experiment::on(&server)
            .jobs([
                JobSpec::new(
                    ModelKind::ResNet18,
                    ds_a.clone(),
                    4,
                    LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
                ),
                JobSpec::new(
                    ModelKind::AlexNet,
                    ds_b.clone(),
                    4,
                    LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
                ),
            ])
            .scenario(Scenario::MixedCluster)
            .epochs(2)
            .run();
        assert_eq!(report.num_units(), 2);
        // Each job swept its own dataset: per-unit fetched bytes match the
        // respective dataset sizes, not each other's.
        let total_a: u64 = report.per_job()[0]
            .epochs
            .iter()
            .map(|e| e.bytes_from_cache + e.bytes_from_disk)
            .sum();
        let total_b: u64 = report.per_job()[1]
            .epochs
            .iter()
            .map(|e| e.bytes_from_cache + e.bytes_from_disk)
            .sum();
        assert!((total_a as f64 / (2.0 * ds_a.total_bytes() as f64) - 1.0).abs() < 0.05);
        assert!((total_b as f64 / (2.0 * ds_b.total_bytes() as f64) - 1.0).abs() < 0.05);
    }

    #[test]
    fn mixed_cluster_does_not_alias_cache_keys_across_formats() {
        // Same dataset, different on-storage formats: a file-per-item job's
        // item keys must not collide with a TFRecord job's chunk keys in the
        // shared cache.  With aliasing, one job would record warm-up cache
        // hits for fetch units the other job inserted.
        let ds = small_ds();
        let server = ssd(&ds, 0.6);
        let report = Experiment::on(&server)
            .jobs([
                JobSpec::new(
                    ModelKind::ResNet18,
                    ds.clone(),
                    4,
                    LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
                )
                .with_batch(64),
                JobSpec::new(ModelKind::ResNet18, ds, 4, LoaderConfig::tfrecord()).with_batch(64),
            ])
            .scenario(Scenario::MixedCluster)
            .epochs(1)
            .run();
        for (i, unit) in report.per_job().iter().enumerate() {
            assert_eq!(
                unit.epochs[0].bytes_from_cache, 0,
                "job {i} saw phantom warm-up cache hits: formats alias in the shared cache"
            );
        }
    }

    #[test]
    fn tiered_cache_extends_minio_reach_and_charges_ssd_time() {
        // §4.2 / Table 2 through the simulator: a DRAM tier that covers 35 %
        // of the dataset plus an SSD tier covering another 35 % serves ~70 %
        // of steady-state fetches from the chain, cutting disk bytes roughly
        // in half versus DRAM alone — while SSD hits cost more than DRAM
        // hits, so the tiered epoch is slower than a DRAM-only cache of the
        // same aggregate size.
        let ds = small_ds();
        let server = ssd(&ds, 0.35);
        let job = || {
            JobSpec::new(
                ModelKind::ResNet18,
                ds.clone(),
                8,
                LoaderConfig::coordl(PrepBackend::DaliGpu),
            )
        };
        let dram_frac = server.dram_cache_bytes;
        let dram_only = Experiment::on(&server).job(job()).epochs(3).run();
        let tiered = Experiment::on(&server)
            .job(job())
            .cache(CacheSpec::Tiered {
                dram_bytes: dram_frac,
                ssd_bytes: dram_frac,
            })
            .epochs(3)
            .run();
        let ss_dram = dram_only.steady_state();
        let ss_tiered = tiered.steady_state();
        assert_eq!(ss_dram.lower_tier_hits, 0, "single tier has no spill");
        assert!(ss_tiered.lower_tier_hits > 0, "SSD tier serves spill hits");
        assert!(
            ss_tiered.bytes_from_disk < ss_dram.bytes_from_disk * 6 / 10,
            "SSD tier absorbs misses: {} vs {}",
            ss_tiered.bytes_from_disk,
            ss_dram.bytes_from_disk
        );
        assert!(
            (ss_tiered.dram_hit_ratio() - ss_dram.miss_ratio().mul_add(-1.0, 1.0)).abs() < 0.02,
            "DRAM tier behaves like the single tier"
        );
        // The time ordering needs a durable store slower than the SSD tier:
        // on an HDD server, dram+ssd beats dram-only (530 MB/s beats
        // 15 MB/s) but loses to a doubled DRAM tier (DRAM beats the SSD).
        let hdd = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.35);
        let fetch_bound = || {
            JobSpec::new(
                ModelKind::AlexNet,
                ds.clone(),
                8,
                LoaderConfig::coordl(PrepBackend::DaliGpu),
            )
        };
        let on_hdd = |cache: CacheSpec, dram_bytes: u64| {
            Experiment::on(&hdd.with_cache_bytes(dram_bytes))
                .job(fetch_bound())
                .cache(cache)
                .epochs(3)
                .run()
                .steady_epoch_seconds()
        };
        let dram_only_s = on_hdd(CacheSpec::DramOnly, hdd.dram_cache_bytes);
        let tiered_s = on_hdd(
            CacheSpec::Tiered {
                dram_bytes: hdd.dram_cache_bytes,
                ssd_bytes: hdd.dram_cache_bytes,
            },
            hdd.dram_cache_bytes,
        );
        let big_dram_s = on_hdd(CacheSpec::DramOnly, 2 * hdd.dram_cache_bytes);
        assert!(
            tiered_s > big_dram_s,
            "SSD hits are slower than DRAM hits: {tiered_s} vs {big_dram_s}"
        );
        assert!(
            tiered_s < dram_only_s,
            "but much faster than the HDD: {tiered_s} vs {dram_only_s}"
        );
    }

    #[test]
    fn elastic_cluster_is_deterministic_and_respects_the_schedule() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = || {
            JobSpec::new(
                ModelKind::ResNet18,
                ds.clone(),
                1,
                LoaderConfig::coordl(PrepBackend::DaliGpu),
            )
            .with_batch(64)
        };
        let scenario = Scenario::ElasticCluster {
            tenants: 4,
            seed: 7,
        };
        let run = || {
            Experiment::on(&server)
                .job(job())
                .scenario(scenario)
                .epochs(5)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "elastic runs must be deterministic");
        assert_eq!(a.num_units(), 4);
        let schedule = crate::churn::churn_schedule(4, 5, 7);
        for (j, unit) in a.per_job().iter().enumerate() {
            assert_eq!(unit.epochs.len(), 5);
            for (e, m) in unit.epochs.iter().enumerate() {
                let active = schedule[j].is_active(e as u64);
                assert_eq!(
                    m.samples > 0,
                    active,
                    "tenant {j} epoch {e}: samples={} active={active}",
                    m.samples
                );
            }
        }
        // Tenant 0 spans the run; with a warm shared cache its later epochs
        // serve bytes from the cache.
        assert!(a.per_job()[0].epochs[1].bytes_from_cache > 0);
    }

    #[test]
    fn elastic_departure_reclaims_the_tenants_cache_window() {
        // Compare a 2-tenant churn run against a permanent 2-tenant run on a
        // cache big enough for one dataset copy but not two: after the
        // short-lived tenant departs, its reclaimed window lets the survivor
        // cache more than it could while both were resident.
        let ds = small_ds();
        let server = ssd(&ds, 0.6);
        let job = || {
            JobSpec::new(
                ModelKind::ResNet18,
                ds.clone(),
                1,
                LoaderConfig::coordl(PrepBackend::DaliGpu),
            )
            .with_batch(64)
        };
        let epochs = 6u64;
        // Find a seed whose 2-tenant schedule has tenant 1 departing
        // mid-run, so the run has both a contended and a reclaimed phase.
        let seed = (0..64)
            .find(|&s| {
                let t = crate::churn::churn_schedule(2, epochs, s)[1];
                t.arrival == 0 && t.departure >= 2 && t.departure <= epochs - 2
            })
            .expect("some seed departs mid-run");
        let schedule = crate::churn::churn_schedule(2, epochs, seed);
        let report = Experiment::on(&server)
            .job(job())
            .scenario(Scenario::ElasticCluster { tenants: 2, seed })
            .epochs(epochs)
            .run();
        let contended = &report.per_job()[0].epochs[(schedule[1].departure - 1) as usize];
        let reclaimed = report.per_job()[0].epochs.last().unwrap();
        assert!(
            reclaimed.cache_hits > contended.cache_hits,
            "reclaimed window raises the survivor's hits: {} vs {}",
            reclaimed.cache_hits,
            contended.cache_hits
        );
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn gpu_oversubscription_rejected() {
        let ds = small_ds();
        let server = ssd(&ds, 0.5);
        let job = JobSpec::new(ModelKind::ResNet18, ds, 8, LoaderConfig::pytorch_dl());
        let _ = Experiment::on(&server)
            .job(job)
            .scenario(Scenario::HpSearch { jobs: 2 })
            .run();
    }
}
