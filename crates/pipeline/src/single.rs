//! Single-server, single-job training (the paper's §5.1 scenario and most of
//! the §3 analysis).
//!
//! The driver lives in [`crate::Experiment`] with
//! [`crate::Scenario::SingleServer`]; this module holds the scenario's
//! behavioural tests.  (The legacy `simulate_single_server` shim is gone —
//! use the builder.)

#[cfg(test)]
mod tests {
    use crate::config::ServerConfig;
    use crate::experiment::{Experiment, Scenario};
    use crate::job::JobSpec;
    use crate::loader::LoaderConfig;
    use crate::metrics::RunResult;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;

    /// A small dataset whose shape (item size) matches OpenImages but with
    /// few enough items that tests run instantly.
    fn small_openimages() -> DatasetSpec {
        DatasetSpec::openimages_extended().scaled(200) // ~10,750 items
    }

    fn ssd_server(dataset: &DatasetSpec, cache_frac: f64) -> ServerConfig {
        ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), cache_frac)
    }

    fn run_single(server: &ServerConfig, job: &JobSpec, epochs: u64) -> RunResult {
        Experiment::on(server)
            .job(job.clone())
            .epochs(epochs)
            .run()
            .into_run_result()
    }

    #[test]
    fn fully_cached_run_has_no_fetch_stalls_after_warmup() {
        let ds = small_openimages();
        // 1.05 × the nominal dataset size: per-item sizes are randomised
        // around the average, so "fully cached" needs a little slack.
        let server = ssd_server(&ds, 1.05);
        let job = JobSpec::new(
            ModelKind::ResNet50,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        let run = run_single(&server, &job, 3);
        let ss = run.steady_state();
        assert_eq!(ss.bytes_from_disk, 0, "everything should be cached");
        assert!(ss.fetch_stall_fraction() < 0.02);
    }

    #[test]
    fn uncached_hdd_run_is_io_bound() {
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.1);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let run = run_single(&server, &job, 2);
        let ss = run.steady_state();
        assert!(
            ss.fetch_stall_fraction() > 0.5,
            "HDD training should be dominated by fetch stalls, got {}",
            ss.fetch_stall_fraction()
        );
    }

    #[test]
    fn prep_bound_when_cached_with_few_cores() {
        // ResNet18 on V100s with 3 cores/GPU and a fully cached dataset:
        // the paper reports ~50 % prep stalls (Figure 5/6).
        let ds = small_openimages();
        let server = ssd_server(&ds, 1.05);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        let run = run_single(&server, &job, 2);
        let ss = run.steady_state();
        assert!(
            ss.prep_stall_fraction() > 0.3,
            "expected significant prep stalls, got {}",
            ss.prep_stall_fraction()
        );
        assert!(ss.fetch_stall_fraction() < 0.05);
    }

    #[test]
    fn minio_reduces_disk_io_versus_lru_at_partial_cache() {
        let ds = small_openimages();
        let server = ssd_server(&ds, 0.65);
        let dali = JobSpec::new(
            ModelKind::ShuffleNetV2,
            ds.clone(),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let coordl = dali.with_loader(LoaderConfig::coordl(PrepBackend::DaliGpu));
        let dali_run = run_single(&server, &dali, 3);
        let coordl_run = run_single(&server, &coordl, 3);
        let dali_ss = dali_run.steady_state();
        let coordl_ss = coordl_run.steady_state();
        // CoorDL's MinIO cache reaches the capacity-miss minimum (~35 % of
        // items), the LRU page cache thrashes and misses more (§5.1).
        assert!(
            coordl_ss.miss_ratio() < dali_ss.miss_ratio(),
            "MinIO miss {} should be below LRU miss {}",
            coordl_ss.miss_ratio(),
            dali_ss.miss_ratio()
        );
        assert!((coordl_ss.miss_ratio() - 0.35).abs() < 0.05);
        assert!(coordl_ss.bytes_from_disk < dali_ss.bytes_from_disk);
        // And that translates into faster epochs.
        assert!(coordl_run.speedup_over(&dali_run) >= 1.0);
    }

    #[test]
    fn warmup_epoch_reads_whole_dataset_from_disk() {
        let ds = small_openimages();
        let server = ssd_server(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds.clone(),
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let run = run_single(&server, &job, 2);
        let warm = run.warmup();
        // Cold cache: every byte of the first epoch comes from storage.
        assert_eq!(warm.bytes_from_cache, 0);
        let expected: u64 = ds.total_bytes();
        let ratio = warm.bytes_from_disk as f64 / expected as f64;
        assert!((ratio - 1.0).abs() < 0.05, "disk bytes ratio {ratio}");
    }

    #[test]
    fn gpu_bound_language_model_has_negligible_stalls() {
        // BERT-Large is GPU bound: data stalls should be tiny even with a
        // small cache (§3.1 excludes it from the analysis for this reason).
        let ds = DatasetSpec::new("wiki-books", 2000, 8 * 1024, 0.2, 3.0);
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.25);
        let job = JobSpec::new(
            ModelKind::BertLarge,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        let run = run_single(&server, &job, 2);
        assert!(run.steady_state().breakdown.stall_fraction() < 0.05);
    }

    #[test]
    fn io_timeline_is_produced_and_sums_to_disk_bytes() {
        let ds = small_openimages();
        let server = ssd_server(&ds, 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let run = run_single(&server, &job, 2);
        let e = &run.epochs[1];
        assert!(!e.io_timeline.is_empty());
        let sum: f64 = e.io_timeline.iter().map(|&(_, v)| v).sum();
        assert!((sum - e.bytes_from_disk as f64).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn too_many_gpus_rejected() {
        let ds = small_openimages();
        let server = ssd_server(&ds, 1.05);
        let job = JobSpec::new(ModelKind::ResNet18, ds, 16, LoaderConfig::pytorch_dl());
        let _ = run_single(&server, &job, 1);
    }

    #[test]
    fn scenario_takes_exactly_one_job() {
        let ds = small_openimages();
        let server = ssd_server(&ds, 0.5);
        let job = JobSpec::new(ModelKind::ResNet18, ds, 8, LoaderConfig::pytorch_dl());
        let result = std::panic::catch_unwind(|| {
            Experiment::on(&server)
                .job(job.clone())
                .job(job)
                .scenario(Scenario::SingleServer)
                .run()
        });
        assert!(result.is_err(), "two jobs must be rejected");
    }
}
