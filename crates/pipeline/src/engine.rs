//! Shared epoch-simulation machinery used by every scenario.
//!
//! This module owns the per-minibatch cost model (fetch/prep/compute), the
//! epoch accumulator and the three epoch drivers — single-job, shared-server
//! (HP search and mixed clusters) and distributed — that
//! [`crate::Experiment`] composes into whole simulations.  The legacy
//! `simulate_*` entry points delegate to the same drivers, so the two APIs
//! are bit-identical by construction.

use crate::config::ServerConfig;
use crate::experiment::CacheSpec;
use crate::job::JobSpec;
use crate::loader::FetchOrder;
use crate::metrics::EpochMetrics;
use dataset::{minibatches, DatasetSpec, EpochSampler, ItemId, StorageFormat};
use dcache::{Location, PartitionedIndex, PolicyKind, ServerId, TierSpec};
use gpu::{aggregate_samples_per_sec, GpuGeneration};
use netsim::Fabric;
use prep::{PrepBackend, PrepCostModel};
use simkit::{PipelineRecurrence, SimTime, StageSample, TimeSeries};
use storage::{
    AccessPattern, DeviceProfile, FetchSource, StorageNode, DRAM_BANDWIDTH_BYTES_PER_SEC,
};

/// Build one server's storage node from the experiment's cache
/// specification: the classic single DRAM tier, or a DRAM tier spilling into
/// a profiled local-SSD tier, both driven by the loader's replacement
/// policy.
pub(crate) fn build_node(
    server: &ServerConfig,
    policy: PolicyKind,
    cache: CacheSpec,
) -> StorageNode {
    match cache {
        CacheSpec::DramOnly => StorageNode::new(server.device, policy, server.dram_cache_bytes),
        CacheSpec::Tiered {
            dram_bytes,
            ssd_bytes,
        } => StorageNode::with_tiers(
            server.device,
            vec![
                TierSpec {
                    name: "dram",
                    policy,
                    capacity_bytes: dram_bytes,
                    cost: storage::dram_tier_cost(),
                },
                TierSpec {
                    name: "ssd",
                    policy,
                    capacity_bytes: ssd_bytes,
                    // Cache-tier reads are shuffled small-item reads, the
                    // random half of the SATA-SSD profile (Table 2).
                    cost: DeviceProfile::sata_ssd().tier_cost(AccessPattern::Random),
                },
            ],
        ),
    }
}

/// Number of bins used for the per-epoch I/O timeline.
pub(crate) const IO_BINS: usize = 40;

/// Byte and time accounting for fetching one minibatch's raw data.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchFetch {
    pub disk_bytes: u64,
    pub cache_bytes: u64,
    pub remote_bytes: u64,
    pub hits: u64,
    pub misses: u64,
    /// Of `cache_bytes`, the bytes served by cache tiers below DRAM (the
    /// local-SSD spill tier of a `CacheSpec::Tiered` hierarchy).
    pub lower_bytes: u64,
    /// Of `hits`, the hits served by cache tiers below DRAM.
    pub lower_hits: u64,
    pub fetch_secs: f64,
}

/// Fetch `items` through `node`, with `disk_share` of the device bandwidth
/// available to this job (1.0 when it has the device to itself).
///
/// `key_base` namespaces this job's items within the shared cache; it is 0
/// everywhere except mixed-cluster scenarios, where jobs training *different*
/// datasets share one cache and their item ids would otherwise collide.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fetch_batch_local(
    node: &mut StorageNode,
    at: SimTime,
    items: &[ItemId],
    spec: &DatasetSpec,
    format: StorageFormat,
    pattern: AccessPattern,
    disk_share: f64,
    key_base: u64,
) -> BatchFetch {
    assert!(disk_share > 0.0 && disk_share <= 1.0);
    let mut out = BatchFetch::default();
    let latency = node.device().profile().request_latency_s;
    let bandwidth = node.device().profile().bandwidth(pattern);
    // Seconds spent reading from cache tiers below DRAM, charged at each
    // tier's own cost (a lower tier is a local device shared by the node's
    // jobs exactly like the durable store, so `disk_share` applies).
    let mut lower_secs = 0.0;
    for &item in items {
        let unit = format.unit_of(item, spec);
        let (t, source) = node.fetch(at, key_base + unit.key, unit.bytes, pattern);
        match source {
            FetchSource::Cache => {
                out.cache_bytes += unit.bytes;
                out.hits += 1;
            }
            FetchSource::LowerTier(_) => {
                out.cache_bytes += unit.bytes;
                out.hits += 1;
                out.lower_bytes += unit.bytes;
                out.lower_hits += 1;
                lower_secs += t.as_secs();
            }
            FetchSource::Disk => {
                out.disk_bytes += unit.bytes;
                out.misses += 1;
            }
        }
    }
    out.fetch_secs = local_fetch_secs(&out, lower_secs, latency, bandwidth, disk_share);
    out
}

/// The batch-aggregate fetch-time formula shared by the exact engine and the
/// fast MinIO engine (`crate::fast`); keeping one closing expression is what
/// makes the two paths bit-identical.
///
/// The DRAM term keeps the pre-hierarchy batch-aggregate formula so a
/// single-tier chain charges bit-identical fetch times.
pub(crate) fn local_fetch_secs(
    out: &BatchFetch,
    lower_secs: f64,
    latency: f64,
    bandwidth: f64,
    disk_share: f64,
) -> f64 {
    out.disk_bytes as f64 / (bandwidth * disk_share)
        + out.misses as f64 * latency / disk_share
        + (out.cache_bytes - out.lower_bytes) as f64 / storage::DRAM_BANDWIDTH_BYTES_PER_SEC
        + lower_secs / disk_share
}

/// GPU compute seconds for one global minibatch of `samples` samples,
/// including the compute interference of GPU-offloaded prep.
pub(crate) fn compute_secs_for_batch(job: &JobSpec, gpu: GpuGeneration, samples: usize) -> f64 {
    let profile = job.model.profile();
    let rate = aggregate_samples_per_sec(&profile, gpu, job.num_gpus, job.batch_per_gpu);
    let overhead = if job.loader.prep_backend == PrepBackend::DaliGpu {
        let cost = PrepCostModel::for_pipeline(&job.pipeline, PrepBackend::DaliGpu);
        1.0 + cost.gpu_compute_overhead
    } else {
        1.0
    };
    samples as f64 / rate * overhead
}

/// Prep seconds for `raw_bytes` of input given `cores` physical-core
/// equivalents for this job and its GPUs (for GPU-offloaded prep).
pub(crate) fn prep_secs_for_batch(job: &JobSpec, raw_bytes: u64, cores: f64) -> f64 {
    let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
    let gpus = if job.loader.prep_backend == PrepBackend::DaliGpu {
        job.num_gpus as f64
    } else {
        0.0
    };
    cost.prep_seconds(raw_bytes, cores, gpus)
}

/// The storage access pattern implied by the loader's fetch order and format.
pub(crate) fn access_pattern(job: &JobSpec) -> AccessPattern {
    if job.loader.format.is_sequential_within_unit()
        || job.loader.fetch_order == FetchOrder::Sequential
    {
        AccessPattern::Sequential
    } else {
        AccessPattern::Random
    }
}

/// The order in which raw items are read off storage during one epoch, which
/// differs from the (always shuffled) training order for sequential readers.
pub(crate) fn fetch_stream(job: &JobSpec, consume_order: &[ItemId]) -> Vec<ItemId> {
    let mut ids = Vec::new();
    fetch_stream_into(job, consume_order, &mut ids);
    ids
}

/// Allocation-reusing [`fetch_stream`]: writes the storage read order into
/// `out`.
pub(crate) fn fetch_stream_into(job: &JobSpec, consume_order: &[ItemId], out: &mut Vec<ItemId>) {
    out.clear();
    out.extend_from_slice(consume_order);
    if job.loader.fetch_order == FetchOrder::Sequential {
        out.sort_unstable();
    }
}

/// Reusable per-epoch working memory, hoisted out of the epoch drivers so a
/// sweep worker allocates once and simulates hundreds of thousands of grid
/// points (ROADMAP item 3: a what-if sweep point must be cheap).
///
/// [`crate::SweepRunner`] owns one per worker thread and threads it through
/// every grid point; [`Experiment`](crate::Experiment) callers can pass their
/// own via [`Experiment::scratch`](crate::Experiment::scratch).  Every field
/// is (re-)initialised before use, so reuse across arbitrary experiments —
/// including after a panicking grid point — never leaks state between runs:
/// a scratch-reusing run is bit-identical to a fresh-allocation run.
#[derive(Default)]
pub struct EngineScratch {
    /// The epoch's consume-order permutation (`EpochSampler::permutation`).
    pub(crate) consume_order: Vec<ItemId>,
    /// The epoch's storage read order (`fetch_stream`).
    pub(crate) fetch_order: Vec<ItemId>,
    /// Fast engine: per-item fetch-unit key/size and raw size, packed into
    /// one array so the chunked-format replay touches one cache line per
    /// item.
    pub(crate) items_meta: Vec<crate::fast::ItemMeta>,
    /// Fast engine: per-item raw size, dense.  For file-per-item formats the
    /// fetch unit *is* the item (key = id, bytes = raw size), so this single
    /// 8-byte-stride array is all the replay touches per access.
    pub(crate) item_sizes: Vec<u64>,
    /// Fast engine: the inputs `items_meta`/`item_sizes` were derived from
    /// (item count, average size, spread bits, storage format).  Sweeps keep
    /// these constant across grid points, so the size-jitter hashing runs
    /// once per sweep instead of once per point.
    pub(crate) meta_key: Option<(u64, u64, u64, StorageFormat)>,
    /// Fast engine: per-unit topmost resident tier (`fast::NO_TIER` if none).
    pub(crate) unit_tier: Vec<u32>,
    /// Fast engine: per-tier resident bytes.
    pub(crate) tier_used: Vec<u64>,
    /// Fast engine: item count the permutation memo was built for.
    pub(crate) perm_items: u64,
    /// Fast engine: sampler seed the permutation memo was built for.
    pub(crate) perm_seed: u64,
    /// Fast engine: memoized per-epoch consume permutations.  A sweep re-runs
    /// the same `(num_items, seed)` job at every grid point, so the shuffles
    /// are identical across points and are computed once per epoch index.
    pub(crate) perms: Vec<Vec<ItemId>>,
    /// The per-epoch metrics accumulator (recurrence + I/O time series).
    pub(crate) acc: EpochAccumulator,
}

impl EngineScratch {
    /// Fresh, empty scratch.  Buffers grow on first use and are then reused.
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

/// Incrementally builds one epoch's metrics from per-batch stage samples.
pub(crate) struct EpochAccumulator {
    rec: PipelineRecurrence,
    samples: u64,
    disk_bytes: u64,
    cache_bytes: u64,
    remote_bytes: u64,
    hits: u64,
    misses: u64,
    lower_bytes: u64,
    lower_hits: u64,
    io: TimeSeries,
    epoch: u64,
}

impl Default for EpochAccumulator {
    fn default() -> Self {
        EpochAccumulator::new(0, 1)
    }
}

impl EpochAccumulator {
    pub(crate) fn new(epoch: u64, prefetch_depth: usize) -> Self {
        EpochAccumulator {
            rec: PipelineRecurrence::new(prefetch_depth),
            samples: 0,
            disk_bytes: 0,
            cache_bytes: 0,
            remote_bytes: 0,
            hits: 0,
            misses: 0,
            lower_bytes: 0,
            lower_hits: 0,
            io: TimeSeries::new(),
            epoch,
        }
    }

    /// Reset for a fresh epoch, keeping the recurrence and time-series
    /// allocations so one accumulator can serve every epoch of a sweep.
    pub(crate) fn reset(&mut self, epoch: u64, prefetch_depth: usize) {
        self.rec.reset(prefetch_depth);
        self.samples = 0;
        self.disk_bytes = 0;
        self.cache_bytes = 0;
        self.remote_bytes = 0;
        self.hits = 0;
        self.misses = 0;
        self.lower_bytes = 0;
        self.lower_hits = 0;
        self.io.clear();
        self.epoch = epoch;
    }

    /// Current virtual time (completion of the last pushed batch).
    pub(crate) fn now(&self) -> SimTime {
        self.rec
            .gpu_done_times()
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Record one minibatch.
    pub(crate) fn push_batch(
        &mut self,
        fetch: &BatchFetch,
        prep_secs: f64,
        compute_secs: f64,
        batch_samples: u64,
    ) {
        self.rec.push(StageSample::from_secs(
            fetch.fetch_secs,
            prep_secs,
            compute_secs,
        ));
        self.samples += batch_samples;
        self.disk_bytes += fetch.disk_bytes;
        self.cache_bytes += fetch.cache_bytes;
        self.remote_bytes += fetch.remote_bytes;
        self.hits += fetch.hits;
        self.misses += fetch.misses;
        self.lower_bytes += fetch.lower_bytes;
        self.lower_hits += fetch.lower_hits;
        let t = self
            .rec
            .fetch_done_times()
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO);
        self.io.push(t, fetch.disk_bytes as f64);
    }

    /// Finish the epoch, producing metrics with the I/O timeline binned into
    /// `bins` windows.  Takes `&self` so a scratch-resident accumulator can
    /// be reset and reused for the next epoch.
    pub(crate) fn finish(&self, bins: usize) -> EpochMetrics {
        let breakdown = self.rec.breakdown();
        let horizon = breakdown.epoch_time.max(SimTime::from_secs(1e-9));
        let bin = SimTime::from_secs((horizon.as_secs() / bins.max(1) as f64).max(1e-9));
        let io_timeline = self
            .io
            .binned_sum(bin, horizon)
            .into_iter()
            .map(|(t, v)| (t.as_secs(), v))
            .collect();
        EpochMetrics {
            epoch: self.epoch,
            breakdown,
            samples: self.samples,
            bytes_from_cache: self.cache_bytes,
            bytes_from_disk: self.disk_bytes,
            bytes_from_remote: self.remote_bytes,
            cache_hits: self.hits,
            cache_misses: self.misses,
            bytes_from_lower_tiers: self.lower_bytes,
            lower_tier_hits: self.lower_hits,
            io_timeline,
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch drivers
// ---------------------------------------------------------------------------

/// Simulate one epoch of a single job against an existing storage node
/// (shared with other epochs so the cache stays warm).
///
/// All per-epoch working memory lives in `scratch`, so a sweep re-running
/// this driver across epochs and grid points performs no per-epoch
/// allocations beyond buffer growth on the first, largest use.
pub(crate) fn single_epoch(
    server: &ServerConfig,
    job: &JobSpec,
    node: &mut StorageNode,
    epoch: u64,
    scratch: &mut EngineScratch,
) -> EpochMetrics {
    let sampler = EpochSampler::new(job.dataset.num_items, job.seed);
    sampler.permutation_into(epoch, &mut scratch.consume_order);
    fetch_stream_into(job, &scratch.consume_order, &mut scratch.fetch_order);
    let pattern = access_pattern(job);
    let global_batch = job.global_batch();

    let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
    let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);

    scratch.acc.reset(epoch, job.loader.prefetch_depth);
    let acc = &mut scratch.acc;
    let num_items = scratch.consume_order.len();
    for (i, batch) in scratch.consume_order.chunks(global_batch).enumerate() {
        let start = i * global_batch;
        let end = (start + batch.len()).min(num_items);
        let fetch_items = &scratch.fetch_order[start..end];
        let now = acc.now();
        let bf = fetch_batch_local(
            node,
            now,
            fetch_items,
            &job.dataset,
            job.loader.format,
            pattern,
            1.0,
            0,
        );
        let raw_bytes: u64 = batch.iter().map(|&it| job.dataset.item_size(it)).sum();
        let prep = prep_secs_for_batch(job, raw_bytes, cores);
        let compute = compute_secs_for_batch(job, server.gpu, batch.len());
        acc.push_batch(&bf, prep, compute, batch.len() as u64);
    }
    scratch.acc.finish(IO_BINS)
}

/// One epoch of several jobs sharing one server without coordination: every
/// job sweeps its dataset independently (the HP-search baseline and the
/// mixed-cluster scenario).
///
/// Jobs are interleaved minibatch by minibatch so their accesses mix in the
/// shared page cache exactly as concurrent processes' would; each job gets an
/// even share of the CPU cores and of the device bandwidth.  `key_bases`
/// namespaces each job's cache keys (all zeros when jobs share a dataset).
pub(crate) fn shared_uncoordinated_epoch(
    server: &ServerConfig,
    jobs: &[JobSpec],
    node: &mut StorageNode,
    epoch: u64,
    key_bases: &[u64],
) -> Vec<EpochMetrics> {
    let num_jobs = jobs.len();
    let disk_share = 1.0 / num_jobs as f64;

    struct JobState {
        batches: Vec<Vec<u64>>,
        fetch_order: Vec<u64>,
        acc: EpochAccumulator,
        cores: f64,
    }

    let mut states: Vec<JobState> = jobs
        .iter()
        .map(|job| {
            let sampler = EpochSampler::new(job.dataset.num_items, job.seed);
            let consume = sampler.permutation(epoch);
            let fetch_order = fetch_stream(job, &consume);
            let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
            let per_job_cores = server.cpu_cores as f64 / num_jobs as f64;
            JobState {
                batches: minibatches(&consume, job.global_batch()),
                fetch_order,
                acc: EpochAccumulator::new(epoch, job.loader.prefetch_depth),
                cores: cost.effective_cores(per_job_cores, per_job_cores),
            }
        })
        .collect();

    let max_batches = states.iter().map(|s| s.batches.len()).max().unwrap_or(0);
    for b in 0..max_batches {
        for (job_idx, (job, state)) in jobs.iter().zip(states.iter_mut()).enumerate() {
            if b >= state.batches.len() {
                continue;
            }
            // Concurrent jobs are never in lockstep: each starts its sweep at
            // a different position in its own epoch order (TensorFlow shards
            // record files across jobs, PyTorch workers drift apart within a
            // few iterations).  Offsetting each job's batch index models that
            // drift; without it, sequential readers would all touch the same
            // chunk at the same instant and the shared cache would hide the
            // read amplification the paper measures (§3.3.1, Table 3).
            let offset = job_idx * state.batches.len() / num_jobs;
            let b = (b + offset) % state.batches.len();
            let batch = &state.batches[b];
            let global = job.global_batch();
            let start = b * global;
            let end = (start + batch.len()).min(state.fetch_order.len());
            let fetch_items = state.fetch_order[start..end].to_vec();
            let now = state.acc.now();
            let bf = fetch_batch_local(
                node,
                now,
                &fetch_items,
                &job.dataset,
                job.loader.format,
                access_pattern(job),
                disk_share,
                key_bases[job_idx],
            );
            let raw_bytes: u64 = batch.iter().map(|&it| job.dataset.item_size(it)).sum();
            let prep = prep_secs_for_batch(job, raw_bytes, state.cores);
            let compute = compute_secs_for_batch(job, server.gpu, batch.len());
            state.acc.push_batch(&bf, prep, compute, batch.len() as u64);
        }
    }

    states.into_iter().map(|s| s.acc.finish(IO_BINS)).collect()
}

/// One epoch of CoorDL's coordinated prep: one sweep over the shared dataset,
/// fetched and pre-processed once for the whole ensemble, with every prepared
/// minibatch consumed by every job through the staging area.
///
/// The producing side uses *all* CPU cores and the full device bandwidth (the
/// jobs collectively are the producer — each prepares its static shard).  The
/// consuming side is each job's own GPUs, which see every prepared minibatch
/// exactly once.
pub(crate) fn shared_coordinated_epoch(
    server: &ServerConfig,
    jobs: &[JobSpec],
    node: &mut StorageNode,
    epoch: u64,
) -> Vec<EpochMetrics> {
    let lead = &jobs[0];
    let sampler = EpochSampler::new(lead.dataset.num_items, lead.seed);
    let consume = sampler.permutation(epoch);
    let fetch_order = fetch_stream(lead, &consume);
    let batches = minibatches(&consume, lead.global_batch());
    let cost = PrepCostModel::for_pipeline(&lead.pipeline, lead.loader.prep_backend);
    let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);

    let mut accs: Vec<EpochAccumulator> = jobs
        .iter()
        .map(|j| EpochAccumulator::new(epoch, j.loader.prefetch_depth))
        .collect();

    for (b, batch) in batches.iter().enumerate() {
        let global = lead.global_batch();
        let start = b * global;
        let end = (start + batch.len()).min(fetch_order.len());
        let fetch_items = &fetch_order[start..end];
        let now = accs[0].now();
        // Fetch + prep happen once for the whole ensemble.
        let bf = fetch_batch_local(
            node,
            now,
            fetch_items,
            &lead.dataset,
            lead.loader.format,
            access_pattern(lead),
            1.0,
            0,
        );
        let raw_bytes: u64 = batch.iter().map(|&it| lead.dataset.item_size(it)).sum();
        let prep = prep_secs_for_batch(lead, raw_bytes, cores);
        for (job, acc) in jobs.iter().zip(accs.iter_mut()) {
            let compute = compute_secs_for_batch(job, server.gpu, batch.len());
            acc.push_batch(&bf, prep, compute, batch.len() as u64);
        }
    }

    // The fetch/prep work is shared: every accumulator saw the same per-batch
    // fetch (so its stall timing is right), but the bytes must be attributed
    // once to the ensemble, not once per job.  Keep them on the first job and
    // zero the rest so the caller's per-epoch disk totals are not inflated.
    let mut metrics: Vec<EpochMetrics> = accs.into_iter().map(|a| a.finish(IO_BINS)).collect();
    for m in metrics.iter_mut().skip(1) {
        m.bytes_from_disk = 0;
        m.bytes_from_cache = 0;
        m.bytes_from_remote = 0;
        m.cache_hits = 0;
        m.cache_misses = 0;
        m.bytes_from_lower_tiers = 0;
        m.lower_tier_hits = 0;
        m.io_timeline.clear();
    }
    metrics
}

/// Cross-epoch state of a distributed simulation: one storage node per
/// server, the partitioned-cache directory, the network fabric and (under
/// chaos) the membership schedule mirroring the runtime's
/// `coordl::FaultPlan`.
pub(crate) struct DistributedSim {
    nodes: Vec<StorageNode>,
    directory: PartitionedIndex,
    fabric: Fabric,
    num_servers: usize,
    /// Cache membership per server: a dead server keeps *training* (its
    /// consumer is unaffected, exactly as in the runtime cluster) but its
    /// cache drops out of the partitioned directory.
    alive: Vec<bool>,
    /// Seeded membership events, sorted by boundary epoch (`FaultEvent::at`).
    faults: Vec<dcache::FaultEvent>,
    next_fault: usize,
}

impl DistributedSim {
    pub(crate) fn new(
        server: &ServerConfig,
        job: &JobSpec,
        num_servers: usize,
        cache: CacheSpec,
    ) -> Self {
        DistributedSim {
            nodes: (0..num_servers)
                .map(|_| build_node(server, job.loader.cache_policy, cache))
                .collect(),
            directory: PartitionedIndex::new(num_servers),
            fabric: Fabric::new(server.link, num_servers),
            num_servers,
            alive: vec![true; num_servers],
            faults: Vec::new(),
            next_fault: 0,
        }
    }

    /// A distributed simulation under the seeded fault schedule shared with
    /// the runtime ([`dcache::fault_schedule`]): `faults` membership events
    /// over `epochs` epoch boundaries.
    pub(crate) fn with_faults(
        server: &ServerConfig,
        job: &JobSpec,
        num_servers: usize,
        cache: CacheSpec,
        epochs: u64,
        faults: usize,
        seed: u64,
    ) -> Self {
        let mut sim = DistributedSim::new(server, job, num_servers, cache);
        sim.faults = dcache::fault_schedule(num_servers, epochs, faults, seed);
        sim
    }

    /// Whether this simulation runs a fault schedule (relaxes the healthy
    /// engine's directory invariants in the fetch path).
    fn chaos(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Apply every membership event due at the boundary before `epoch`
    /// (an event with `at == k` fires after `k` full epochs, mirroring the
    /// runtime plan's `at_step = k × dataset_len`).
    fn apply_due_faults(&mut self, epoch: u64, spec: &DatasetSpec) {
        while let Some(e) = self.faults.get(self.next_fault).copied() {
            if e.at > epoch {
                break;
            }
            self.next_fault += 1;
            match e.kind {
                dcache::FaultKind::Kill => self.fail_node(e.node, None),
                dcache::FaultKind::Leave => self.fail_node(e.node, Some(spec)),
                // A rejoining server keeps its stale-but-valid cache
                // contents; the directory heals lazily as its local hits
                // re-register (same as the runtime cluster).
                dcache::FaultKind::Join => self.alive[e.node] = true,
            }
        }
    }

    /// Take `server` out of the cache membership and re-home its directory
    /// entries onto survivors in rendezvous order.  A kill (`migrate` is
    /// `None`) only keeps entries some survivor already holds; a graceful
    /// leave ships each orphan's bytes to the first alive candidate that
    /// will retain them.
    fn fail_node(&mut self, server: usize, migrate: Option<&DatasetSpec>) {
        if !self.alive[server] {
            return;
        }
        self.alive[server] = false;
        for item in self.directory.unregister_server(ServerId(server)) {
            let prefs = dcache::rendezvous_order(item, self.num_servers);
            let holder = prefs
                .iter()
                .copied()
                .find(|&n| self.alive[n] && self.nodes[n].is_cached(&item));
            if let Some(n) = holder {
                self.directory.register(item, ServerId(n));
            } else if let Some(spec) = migrate {
                for n in prefs.into_iter().filter(|&n| self.alive[n]) {
                    self.nodes[n].preload(item, spec.item_size(item));
                    if self.nodes[n].is_cached(&item) {
                        self.directory.register(item, ServerId(n));
                        break;
                    }
                }
            }
        }
    }

    /// Simulate one epoch of the data-parallel job: random disjoint
    /// epoch-varying shards per server, partitioned caching when the loader
    /// enables it.  Returns per-server metrics in server order.
    pub(crate) fn epoch(
        &mut self,
        server: &ServerConfig,
        job: &JobSpec,
        epoch: u64,
    ) -> Vec<EpochMetrics> {
        let partitioned = job.loader.partitioned_cache;
        let sampler = EpochSampler::new(job.dataset.num_items, job.seed);
        let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
        let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);
        let pattern = access_pattern(job);
        self.apply_due_faults(epoch, &job.dataset);
        let chaos = self.chaos();

        for node in self.nodes.iter_mut() {
            node.reset_epoch_stats();
        }
        self.fabric.reset();
        let mut epoch_metrics: Vec<EpochMetrics> = Vec::with_capacity(self.num_servers);

        // Per-server shards for this epoch (random, disjoint, epoch-varying).
        let shards: Vec<Vec<ItemId>> = (0..self.num_servers)
            .map(|s| sampler.distributed_shard(epoch, s, self.num_servers))
            .collect();

        for (s, shard) in shards.iter().enumerate() {
            let me = ServerId(s);
            let batches = minibatches(shard, job.global_batch());
            let mut acc = EpochAccumulator::new(epoch, job.loader.prefetch_depth);

            for batch in &batches {
                let now = acc.now();
                let bf = if partitioned {
                    fetch_batch_partitioned(
                        &mut self.nodes,
                        &mut self.directory,
                        &mut self.fabric,
                        me,
                        now,
                        batch,
                        job,
                        self.num_servers,
                        &self.alive,
                        chaos,
                    )
                } else {
                    let node = &mut self.nodes[s];
                    // Uncoordinated: every miss goes to local storage.
                    fetch_batch_local(
                        node,
                        now,
                        batch,
                        &job.dataset,
                        job.loader.format,
                        pattern,
                        1.0,
                        0,
                    )
                };
                let raw_bytes: u64 = batch.iter().map(|&it| job.dataset.item_size(it)).sum();
                let prep = prep_secs_for_batch(job, raw_bytes, cores);
                let compute = compute_secs_for_batch(job, server.gpu, batch.len());
                acc.push_batch(&bf, prep, compute, batch.len() as u64);
            }
            epoch_metrics.push(acc.finish(IO_BINS));
        }
        epoch_metrics
    }
}

/// Fetch one minibatch with CoorDL's partitioned cache: local MinIO cache
/// first, then a peer's cache over the network, then local storage.
///
/// Under chaos (`chaos` set) a dead server (`!alive[me]`) keeps consuming —
/// peers still serve its remote hits — but bypasses its own cache: storage
/// reads are charged without admitting or registering, mirroring the runtime
/// cluster's degraded mode.  A rejoined server's stale-but-warm local hits
/// land in the `Location::Storage` arm (their directory entries were dropped
/// at kill time) and lazily re-register.
#[allow(clippy::too_many_arguments)]
fn fetch_batch_partitioned(
    nodes: &mut [StorageNode],
    directory: &mut PartitionedIndex,
    fabric: &mut Fabric,
    me: ServerId,
    at: SimTime,
    items: &[ItemId],
    job: &JobSpec,
    num_servers: usize,
    alive: &[bool],
    chaos: bool,
) -> BatchFetch {
    let mut out = BatchFetch::default();
    let spec = &job.dataset;
    let device = *nodes[me.0].device().profile();
    let pattern = access_pattern(job);
    let alive_me = alive[me.0];
    let mut remote_requests = 0u64;
    let mut lower_secs = 0.0;

    for &item in items {
        let bytes = spec.item_size(item);
        let node = &mut nodes[me.0];
        match directory.locate(item, me) {
            Location::Local => {
                // Resident in some tier of the local cache chain.
                let (t, src) = node.fetch(at, item, bytes, pattern);
                debug_assert_ne!(src, FetchSource::Disk);
                out.cache_bytes += bytes;
                out.hits += 1;
                if let FetchSource::LowerTier(_) = src {
                    out.lower_bytes += bytes;
                    out.lower_hits += 1;
                    lower_secs += t.as_secs();
                }
            }
            Location::Remote(peer) if alive[peer.0] => {
                fabric.remote_fetch(peer.0, me.0, bytes, num_servers.saturating_sub(1).max(1));
                out.remote_bytes += bytes;
                out.hits += 1;
                remote_requests += 1;
            }
            // Storage, or a directory entry pointing at a dead peer (only
            // reachable transiently; rebalancing drops such entries).
            _ if !alive_me => {
                // A dead server's consumer still trains: the read is charged
                // at device cost, but nothing is admitted or advertised.
                out.disk_bytes += bytes;
                out.misses += 1;
            }
            _ => {
                // Not cached anywhere yet: read from local storage and, if the
                // local MinIO cache admits it, publish it in the directory.
                let (t, src) = node.fetch(at, item, bytes, pattern);
                debug_assert!(chaos || src == FetchSource::Disk);
                match src {
                    FetchSource::Disk => {
                        out.disk_bytes += bytes;
                        out.misses += 1;
                    }
                    // Chaos only: a rejoined server's stale warm entry.
                    src => {
                        out.cache_bytes += bytes;
                        out.hits += 1;
                        if let FetchSource::LowerTier(_) = src {
                            out.lower_bytes += bytes;
                            out.lower_hits += 1;
                            lower_secs += t.as_secs();
                        }
                    }
                }
                if node.is_cached(&item) {
                    directory.register(item, me);
                }
            }
        }
    }

    let link = fabric.link();
    let per_flow = link.per_flow_bandwidth(num_servers.saturating_sub(1).max(1));
    out.fetch_secs = out.disk_bytes as f64 / device.bandwidth(pattern)
        + out.misses as f64 * device.request_latency_s
        + (out.cache_bytes - out.lower_bytes) as f64 / DRAM_BANDWIDTH_BYTES_PER_SEC
        + lower_secs
        + out.remote_bytes as f64 / per_flow
        + if remote_requests > 0 { link.rtt_s } else { 0.0 };
    out
}
