//! Shared epoch-simulation machinery used by the single-server, HP-search and
//! distributed drivers.

use crate::job::JobSpec;
use crate::loader::FetchOrder;
use crate::metrics::EpochMetrics;
use dataset::{DatasetSpec, ItemId, StorageFormat};
use gpu::{aggregate_samples_per_sec, GpuGeneration};
use prep::{PrepBackend, PrepCostModel};
use simkit::{PipelineRecurrence, SimTime, StageSample, TimeSeries};
use storage::{AccessPattern, FetchSource, StorageNode};

/// Byte and time accounting for fetching one minibatch's raw data.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchFetch {
    pub disk_bytes: u64,
    pub cache_bytes: u64,
    pub remote_bytes: u64,
    pub hits: u64,
    pub misses: u64,
    pub fetch_secs: f64,
}

/// Fetch `items` through `node`, with `disk_share` of the device bandwidth
/// available to this job (1.0 when it has the device to itself).
pub(crate) fn fetch_batch_local(
    node: &mut StorageNode,
    at: SimTime,
    items: &[ItemId],
    spec: &DatasetSpec,
    format: StorageFormat,
    pattern: AccessPattern,
    disk_share: f64,
) -> BatchFetch {
    assert!(disk_share > 0.0 && disk_share <= 1.0);
    let mut out = BatchFetch::default();
    let latency = node.device().profile().request_latency_s;
    let bandwidth = node.device().profile().bandwidth(pattern);
    let dram = storage::DRAM_BANDWIDTH_BYTES_PER_SEC;
    for &item in items {
        let unit = format.unit_of(item, spec);
        let (_, source) = node.fetch(at, unit.key, unit.bytes, pattern);
        match source {
            FetchSource::Cache => {
                out.cache_bytes += unit.bytes;
                out.hits += 1;
            }
            FetchSource::Disk => {
                out.disk_bytes += unit.bytes;
                out.misses += 1;
            }
        }
    }
    out.fetch_secs = out.disk_bytes as f64 / (bandwidth * disk_share)
        + out.misses as f64 * latency / disk_share
        + out.cache_bytes as f64 / dram;
    out
}

/// GPU compute seconds for one global minibatch of `samples` samples,
/// including the compute interference of GPU-offloaded prep.
pub(crate) fn compute_secs_for_batch(job: &JobSpec, gpu: GpuGeneration, samples: usize) -> f64 {
    let profile = job.model.profile();
    let rate = aggregate_samples_per_sec(&profile, gpu, job.num_gpus, job.batch_per_gpu);
    let overhead = if job.loader.prep_backend == PrepBackend::DaliGpu {
        let cost = PrepCostModel::for_pipeline(&job.pipeline, PrepBackend::DaliGpu);
        1.0 + cost.gpu_compute_overhead
    } else {
        1.0
    };
    samples as f64 / rate * overhead
}

/// Prep seconds for `raw_bytes` of input given `cores` physical-core
/// equivalents for this job and its GPUs (for GPU-offloaded prep).
pub(crate) fn prep_secs_for_batch(job: &JobSpec, raw_bytes: u64, cores: f64) -> f64 {
    let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
    let gpus = if job.loader.prep_backend == PrepBackend::DaliGpu {
        job.num_gpus as f64
    } else {
        0.0
    };
    cost.prep_seconds(raw_bytes, cores, gpus)
}

/// The storage access pattern implied by the loader's fetch order and format.
pub(crate) fn access_pattern(job: &JobSpec) -> AccessPattern {
    if job.loader.format.is_sequential_within_unit()
        || job.loader.fetch_order == FetchOrder::Sequential
    {
        AccessPattern::Sequential
    } else {
        AccessPattern::Random
    }
}

/// The order in which raw items are read off storage during one epoch, which
/// differs from the (always shuffled) training order for sequential readers.
pub(crate) fn fetch_stream(job: &JobSpec, consume_order: &[ItemId]) -> Vec<ItemId> {
    match job.loader.fetch_order {
        FetchOrder::Shuffled => consume_order.to_vec(),
        FetchOrder::Sequential => {
            let mut ids: Vec<ItemId> = consume_order.to_vec();
            ids.sort_unstable();
            ids
        }
    }
}

/// Incrementally builds one epoch's metrics from per-batch stage samples.
pub(crate) struct EpochAccumulator {
    rec: PipelineRecurrence,
    samples: u64,
    disk_bytes: u64,
    cache_bytes: u64,
    remote_bytes: u64,
    hits: u64,
    misses: u64,
    io: TimeSeries,
    epoch: u64,
}

impl EpochAccumulator {
    pub(crate) fn new(epoch: u64, prefetch_depth: usize) -> Self {
        EpochAccumulator {
            rec: PipelineRecurrence::new(prefetch_depth),
            samples: 0,
            disk_bytes: 0,
            cache_bytes: 0,
            remote_bytes: 0,
            hits: 0,
            misses: 0,
            io: TimeSeries::new(),
            epoch,
        }
    }

    /// Current virtual time (completion of the last pushed batch).
    pub(crate) fn now(&self) -> SimTime {
        self.rec
            .gpu_done_times()
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Record one minibatch.
    pub(crate) fn push_batch(
        &mut self,
        fetch: &BatchFetch,
        prep_secs: f64,
        compute_secs: f64,
        batch_samples: u64,
    ) {
        self.rec.push(StageSample::from_secs(
            fetch.fetch_secs,
            prep_secs,
            compute_secs,
        ));
        self.samples += batch_samples;
        self.disk_bytes += fetch.disk_bytes;
        self.cache_bytes += fetch.cache_bytes;
        self.remote_bytes += fetch.remote_bytes;
        self.hits += fetch.hits;
        self.misses += fetch.misses;
        let t = self
            .rec
            .fetch_done_times()
            .last()
            .copied()
            .unwrap_or(SimTime::ZERO);
        self.io.push(t, fetch.disk_bytes as f64);
    }

    /// Finish the epoch, producing metrics with the I/O timeline binned into
    /// `bins` windows.
    pub(crate) fn finish(self, bins: usize) -> EpochMetrics {
        let breakdown = self.rec.breakdown();
        let horizon = breakdown.epoch_time.max(SimTime::from_secs(1e-9));
        let bin = SimTime::from_secs((horizon.as_secs() / bins.max(1) as f64).max(1e-9));
        let io_timeline = self
            .io
            .binned_sum(bin, horizon)
            .into_iter()
            .map(|(t, v)| (t.as_secs(), v))
            .collect();
        EpochMetrics {
            epoch: self.epoch,
            breakdown,
            samples: self.samples,
            bytes_from_cache: self.cache_bytes,
            bytes_from_disk: self.disk_bytes,
            bytes_from_remote: self.remote_bytes,
            cache_hits: self.hits,
            cache_misses: self.misses,
            io_timeline,
        }
    }
}
