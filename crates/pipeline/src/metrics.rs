//! Per-epoch and per-run metrics reported by the simulator.

use simkit::{SimTime, StallBreakdown};

/// Everything measured for one epoch of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0 = warm-up epoch with a cold cache).
    pub epoch: u64,
    /// Wall-clock / stall breakdown for the epoch.
    pub breakdown: StallBreakdown,
    /// Samples processed.
    pub samples: u64,
    /// Bytes served from the local software cache.
    pub bytes_from_cache: u64,
    /// Bytes read from the local storage device.
    pub bytes_from_disk: u64,
    /// Bytes fetched from remote caches (partitioned caching only).
    pub bytes_from_remote: u64,
    /// Cache hits (fetch units), summed across every tier of the node's
    /// cache chain.
    pub cache_hits: u64,
    /// Cache misses (fetch units): reads that fell through to the device.
    pub cache_misses: u64,
    /// Of `bytes_from_cache`, the bytes served by cache tiers below DRAM
    /// (the local-SSD spill tier of a `CacheSpec::Tiered` run; zero on
    /// single-tier runs).
    pub bytes_from_lower_tiers: u64,
    /// Of `cache_hits`, the hits served by cache tiers below DRAM.
    pub lower_tier_hits: u64,
    /// Disk I/O over time: `(window_start_seconds, bytes_read_in_window)`.
    pub io_timeline: Vec<(f64, f64)>,
}

impl EpochMetrics {
    /// Epoch duration in seconds.
    pub fn epoch_seconds(&self) -> f64 {
        self.breakdown.epoch_time.as_secs()
    }

    /// Training throughput in samples per second.
    pub fn samples_per_sec(&self) -> f64 {
        if self.breakdown.epoch_time.is_zero() {
            0.0
        } else {
            self.samples as f64 / self.epoch_seconds()
        }
    }

    /// Cache miss ratio over fetch units.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// Fraction of epoch time spent stalled on I/O.
    pub fn fetch_stall_fraction(&self) -> f64 {
        self.breakdown.fetch_stall_fraction()
    }

    /// Fraction of epoch time spent stalled on prep.
    pub fn prep_stall_fraction(&self) -> f64 {
        self.breakdown.prep_stall_fraction()
    }

    /// Total bytes that did not come from the local cache.
    pub fn bytes_not_cached(&self) -> u64 {
        self.bytes_from_disk + self.bytes_from_remote
    }

    /// Hit ratio of the DRAM (topmost) cache tier over fetch units.
    pub fn dram_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits - self.lower_tier_hits) as f64 / total as f64
        }
    }

    /// Hit ratio of the cache tiers below DRAM over fetch units (zero on
    /// single-tier runs).
    pub fn lower_tier_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.lower_tier_hits as f64 / total as f64
        }
    }
}

/// The result of simulating several epochs of one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunResult {
    /// Per-epoch metrics, in epoch order.
    pub epochs: Vec<EpochMetrics>,
}

impl RunResult {
    /// Metrics of the warm-up (first) epoch.
    pub fn warmup(&self) -> &EpochMetrics {
        &self.epochs[0]
    }

    /// Average steady-state epoch metrics: the paper reports "the average
    /// epoch time ignoring the first epoch" (§3.1). Falls back to the single
    /// epoch when only one was simulated.
    pub fn steady_state(&self) -> EpochMetrics {
        assert!(!self.epochs.is_empty(), "no epochs simulated");
        let tail: &[EpochMetrics] = if self.epochs.len() > 1 {
            &self.epochs[1..]
        } else {
            &self.epochs[..]
        };
        let n = tail.len() as f64;
        let avg_time = tail.iter().map(|e| e.epoch_seconds()).sum::<f64>() / n;
        let avg = |f: &dyn Fn(&EpochMetrics) -> f64| tail.iter().map(f).sum::<f64>() / n;
        let mut out = tail[tail.len() - 1].clone();
        out.breakdown.epoch_time = SimTime::from_secs(avg_time);
        out.breakdown.compute_time =
            SimTime::from_secs(avg(&|e| e.breakdown.compute_time.as_secs()));
        out.breakdown.fetch_stall = SimTime::from_secs(avg(&|e| e.breakdown.fetch_stall.as_secs()));
        out.breakdown.prep_stall = SimTime::from_secs(avg(&|e| e.breakdown.prep_stall.as_secs()));
        out.samples = (avg(&|e| e.samples as f64)) as u64;
        out.bytes_from_cache = avg(&|e| e.bytes_from_cache as f64) as u64;
        out.bytes_from_disk = avg(&|e| e.bytes_from_disk as f64) as u64;
        out.bytes_from_remote = avg(&|e| e.bytes_from_remote as f64) as u64;
        out.cache_hits = avg(&|e| e.cache_hits as f64) as u64;
        out.cache_misses = avg(&|e| e.cache_misses as f64) as u64;
        out.bytes_from_lower_tiers = avg(&|e| e.bytes_from_lower_tiers as f64) as u64;
        out.lower_tier_hits = avg(&|e| e.lower_tier_hits as f64) as u64;
        out
    }

    /// Steady-state throughput in samples/second.
    pub fn steady_samples_per_sec(&self) -> f64 {
        self.steady_state().samples_per_sec()
    }

    /// Speedup of `self` over `baseline` in steady-state throughput.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let base = baseline.steady_samples_per_sec();
        if base == 0.0 {
            f64::INFINITY
        } else {
            self.steady_samples_per_sec() / base
        }
    }

    /// Total bytes read from disk across all epochs.
    pub fn total_disk_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.bytes_from_disk).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn epoch(epoch: u64, time: f64, samples: u64, disk: u64) -> EpochMetrics {
        EpochMetrics {
            epoch,
            breakdown: StallBreakdown {
                epoch_time: SimTime::from_secs(time),
                compute_time: SimTime::from_secs(time * 0.6),
                fetch_stall: SimTime::from_secs(time * 0.3),
                prep_stall: SimTime::from_secs(time * 0.1),
                iterations: 10,
            },
            samples,
            bytes_from_cache: 100,
            bytes_from_disk: disk,
            bytes_from_remote: 0,
            cache_hits: 50,
            cache_misses: 50,
            bytes_from_lower_tiers: 0,
            lower_tier_hits: 0,
            io_timeline: Vec::new(),
        }
    }

    #[test]
    fn samples_per_sec_and_miss_ratio() {
        let e = epoch(0, 10.0, 1000, 0);
        assert!((e.samples_per_sec() - 100.0).abs() < 1e-9);
        assert!((e.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((e.fetch_stall_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn steady_state_ignores_warmup() {
        let run = RunResult {
            epochs: vec![
                epoch(0, 100.0, 1000, 999),
                epoch(1, 10.0, 1000, 5),
                epoch(2, 12.0, 1000, 7),
            ],
        };
        let ss = run.steady_state();
        assert!((ss.epoch_seconds() - 11.0).abs() < 1e-9);
        assert_eq!(ss.bytes_from_disk, 6);
        assert_eq!(run.total_disk_bytes(), 1011);
    }

    #[test]
    fn speedup_is_relative_throughput() {
        let fast = RunResult {
            epochs: vec![epoch(0, 10.0, 1000, 0), epoch(1, 10.0, 1000, 0)],
        };
        let slow = RunResult {
            epochs: vec![epoch(0, 20.0, 1000, 0), epoch(1, 20.0, 1000, 0)],
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_epoch_run_uses_itself_as_steady_state() {
        let run = RunResult {
            epochs: vec![epoch(0, 10.0, 100, 1)],
        };
        assert!((run.steady_state().epoch_seconds() - 10.0).abs() < 1e-9);
    }
}
