//! Hand-rolled JSON emission and parsing shared by every report exporter.
//!
//! The workspace builds offline (no `serde`), so
//! [`SimReport::to_json`](crate::SimReport::to_json),
//! [`SweepReport::to_json`](crate::sweep::SweepReport::to_json) and the
//! `dstool` CLI all emit JSON by hand.  This module centralises the
//! two things that are easy to get subtly wrong when several emitters each
//! roll their own:
//!
//! * **escaping** — [`escape`] / [`write_string`] guarantee that scenario and
//!   sweep-point labels containing quotes, backslashes or control characters
//!   serialise to *valid* JSON strings, and
//! * **numbers** — [`write_f64`] maps the non-finite values JSON cannot
//!   represent to `null` instead of emitting bare `NaN`/`inf` tokens.
//!
//! A minimal recursive-descent [`parse`] (returning a [`Value`] tree) is also
//! provided so tests and the CI perf gate can *read* these documents back
//! without external dependencies.  It supports the full JSON grammar except
//! `\u` surrogate pairs, which none of our emitters produce.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` for inclusion in a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string literal.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    push_escaped(out, s);
    out.push('"');
}

/// Append `v` to `out` as a JSON number; non-finite values become `null`
/// (JSON has no `NaN`/`Infinity`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting is valid JSON for all finite
        // values.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `values` to `out` as a JSON array of integers.
pub fn write_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Append `value` to `out` in canonical form: object keys sorted (the
/// [`BTreeMap`] guarantees this), no whitespace, numbers in Rust's shortest
/// round-trip formatting.  Re-serialising a [`parse`]d document through this
/// writer normalises it — `dstool smoke --refresh-baseline` relies on that to
/// keep `ci/bench_baseline.json` in one canonical shape regardless of which
/// emitter produced the run.
pub fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_f64(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// A parsed JSON document.
///
/// Object keys are kept in a [`BTreeMap`]: none of our documents rely on key
/// order, and sorted keys make test assertions deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what [`write_f64`] emits for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document.  Returns a human-readable error (with byte offset)
/// on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Collect raw bytes between escapes so multi-byte UTF-8 passes
        // through untouched.
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    out.push_str(self.raw_run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_run(run_start)?);
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or("\\u escape outside the BMP is unsupported")?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape \\{} ", other as char));
                        }
                    }
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn raw_run(&self, start: usize) -> Result<&'a str, String> {
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid UTF-8".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self.raw_run(start)?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "a\"quote\\back\\\\slash\nnew\tline\r\u{1}ctl\u{e9}accent";
        let mut doc = String::new();
        doc.push_str("{\"label\":");
        write_string(&mut doc, nasty);
        doc.push('}');
        let parsed = parse(&doc).expect("escaped output must be valid JSON");
        assert_eq!(parsed.get("label").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn escape_covers_quotes_and_backslashes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("\u{0}"), "\\u0000");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(',');
        write_f64(&mut out, f64::INFINITY);
        out.push(',');
        write_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1}trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn write_value_canonicalises_key_order_and_whitespace() {
        let messy = "  {\"zeta\" : 1 ,\n \"alpha\": [true, null, \"x\\\"y\"],\
                     \"mid\": {\"b\":2,\"a\":-3.5}}  ";
        let parsed = parse(messy).unwrap();
        let mut out = String::new();
        write_value(&mut out, &parsed);
        assert_eq!(
            out,
            r#"{"alpha":[true,null,"x\"y"],"mid":{"a":-3.5,"b":2},"zeta":1}"#
        );
        // Canonical form is a fixed point: parse -> write -> parse -> write
        // is byte-identical.
        let mut again = String::new();
        write_value(&mut again, &parse(&out).unwrap());
        assert_eq!(out, again);
    }

    #[test]
    fn u64_arrays_and_strings_compose() {
        let mut out = String::new();
        out.push_str("{\"xs\":");
        write_u64_array(&mut out, &[1, 2, 30]);
        out.push('}');
        let v = parse(&out).unwrap();
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_f64(), Some(30.0));
    }
}
