//! Data-loader configurations: the baselines and CoorDL.

use dataset::StorageFormat;
use dcache::PolicyKind;
use gpu::ModelKind;
use prep::PrepBackend;

/// The order in which raw items are read off storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOrder {
    /// Items are read in storage (id) order and shuffled in memory
    /// (DALI's default `FileReader`, TFRecord streaming).
    Sequential,
    /// Items are read in the (random) training order (PyTorch DataLoader,
    /// DALI-shuffle, CoorDL).
    Shuffled,
}

/// Named loader presets used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoaderKind {
    /// Native PyTorch DataLoader (Pillow prep, OS page cache).
    PyTorchDl,
    /// DALI reading files sequentially, shuffling in memory (DALI-seq).
    DaliSeq,
    /// DALI performing shuffled random reads (DALI-shuffle) — the stronger
    /// baseline used for most comparisons in §5.
    DaliShuffle,
    /// TensorFlow-style chunked TFRecord input pipeline.
    TfRecord,
    /// CoorDL: MinIO cache + partitioned caching + coordinated prep.
    CoorDl,
}

impl LoaderKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            LoaderKind::PyTorchDl => "PyTorch-DL",
            LoaderKind::DaliSeq => "DALI-seq",
            LoaderKind::DaliShuffle => "DALI-shuffle",
            LoaderKind::TfRecord => "TF-TFRecord",
            LoaderKind::CoorDl => "CoorDL",
        }
    }
}

/// Full description of a data-loading configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoaderConfig {
    /// Which named loader this is.
    pub kind: LoaderKind,
    /// Storage read order.
    pub fetch_order: FetchOrder,
    /// Software cache policy in front of storage (the OS page cache for the
    /// baselines, MinIO for CoorDL).
    pub cache_policy: PolicyKind,
    /// Pre-processing backend.
    pub prep_backend: PrepBackend,
    /// Share fetch + prep across concurrent same-dataset jobs (CoorDL's
    /// coordinated prep).
    pub coordinated_prep: bool,
    /// Coordinate the caches of the servers of a distributed job (CoorDL's
    /// partitioned caching).
    pub partitioned_cache: bool,
    /// On-storage layout.
    pub format: StorageFormat,
    /// Prefetch queue depth in minibatches.
    pub prefetch_depth: usize,
}

impl LoaderConfig {
    /// Native PyTorch DataLoader.
    pub fn pytorch_dl() -> Self {
        LoaderConfig {
            kind: LoaderKind::PyTorchDl,
            fetch_order: FetchOrder::Shuffled,
            cache_policy: PolicyKind::Lru,
            prep_backend: PrepBackend::PytorchCpu,
            coordinated_prep: false,
            partitioned_cache: false,
            format: StorageFormat::FilePerItem,
            prefetch_depth: 2,
        }
    }

    /// DALI reading files in storage order (DALI-seq).
    pub fn dali_seq(prep: PrepBackend) -> Self {
        LoaderConfig {
            kind: LoaderKind::DaliSeq,
            fetch_order: FetchOrder::Sequential,
            cache_policy: PolicyKind::Lru,
            prep_backend: prep,
            coordinated_prep: false,
            partitioned_cache: false,
            format: StorageFormat::FilePerItem,
            prefetch_depth: 2,
        }
    }

    /// DALI with shuffled random reads (DALI-shuffle) — the strongest
    /// baseline (§5.1).
    pub fn dali_shuffle(prep: PrepBackend) -> Self {
        LoaderConfig {
            kind: LoaderKind::DaliShuffle,
            fetch_order: FetchOrder::Shuffled,
            cache_policy: PolicyKind::Lru,
            prep_backend: prep,
            coordinated_prep: false,
            partitioned_cache: false,
            format: StorageFormat::FilePerItem,
            prefetch_depth: 2,
        }
    }

    /// TensorFlow-style TFRecord pipeline: sequential chunked reads through
    /// the OS page cache.
    pub fn tfrecord() -> Self {
        LoaderConfig {
            kind: LoaderKind::TfRecord,
            fetch_order: FetchOrder::Sequential,
            cache_policy: PolicyKind::Lru,
            prep_backend: PrepBackend::DaliCpu,
            coordinated_prep: false,
            partitioned_cache: false,
            format: StorageFormat::tfrecord_default(),
            prefetch_depth: 2,
        }
    }

    /// CoorDL: MinIO cache, partitioned caching and coordinated prep on top
    /// of the DALI prep pipeline.
    pub fn coordl(prep: PrepBackend) -> Self {
        LoaderConfig {
            kind: LoaderKind::CoorDl,
            fetch_order: FetchOrder::Shuffled,
            cache_policy: PolicyKind::MinIo,
            prep_backend: prep,
            coordinated_prep: true,
            partitioned_cache: true,
            format: StorageFormat::FilePerItem,
            prefetch_depth: 2,
        }
    }

    /// The prep backend the paper's baseline would pick for `model`: "best of
    /// CPU or GPU based prep" — GPU offload helps the computationally light
    /// models but hurts GPU-heavy ResNet50 / VGG11 (Appendix B.2).
    pub fn best_prep_for(model: ModelKind) -> PrepBackend {
        match model {
            ModelKind::ResNet50 | ModelKind::Vgg11 | ModelKind::BertLarge | ModelKind::Gnmt => {
                PrepBackend::DaliCpu
            }
            _ => PrepBackend::DaliGpu,
        }
    }

    /// DALI-shuffle with the best prep backend for `model` (the paper's
    /// default baseline).
    pub fn dali_best(model: ModelKind) -> Self {
        Self::dali_shuffle(Self::best_prep_for(model))
    }

    /// CoorDL with the best prep backend for `model`.
    pub fn coordl_best(model: ModelKind) -> Self {
        Self::coordl(Self::best_prep_for(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordl_uses_minio_and_coordination() {
        let c = LoaderConfig::coordl(PrepBackend::DaliGpu);
        assert_eq!(c.cache_policy, PolicyKind::MinIo);
        assert!(c.coordinated_prep);
        assert!(c.partitioned_cache);
        assert_eq!(c.fetch_order, FetchOrder::Shuffled);
    }

    #[test]
    fn baselines_use_the_page_cache() {
        for l in [
            LoaderConfig::pytorch_dl(),
            LoaderConfig::dali_seq(PrepBackend::DaliCpu),
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
            LoaderConfig::tfrecord(),
        ] {
            assert_eq!(l.cache_policy, PolicyKind::Lru, "{:?}", l.kind);
            assert!(!l.coordinated_prep);
            assert!(!l.partitioned_cache);
        }
    }

    #[test]
    fn tfrecord_reads_chunks_sequentially() {
        let t = LoaderConfig::tfrecord();
        assert_eq!(t.fetch_order, FetchOrder::Sequential);
        assert!(matches!(t.format, StorageFormat::ChunkedRecords { .. }));
    }

    #[test]
    fn gpu_heavy_models_prefer_cpu_prep() {
        assert_eq!(
            LoaderConfig::best_prep_for(ModelKind::ResNet50),
            PrepBackend::DaliCpu
        );
        assert_eq!(
            LoaderConfig::best_prep_for(ModelKind::Vgg11),
            PrepBackend::DaliCpu
        );
        assert_eq!(
            LoaderConfig::best_prep_for(ModelKind::ResNet18),
            PrepBackend::DaliGpu
        );
    }

    #[test]
    fn loader_names() {
        assert_eq!(LoaderKind::CoorDl.name(), "CoorDL");
        assert_eq!(LoaderKind::DaliShuffle.name(), "DALI-shuffle");
    }
}
