//! Server configurations (paper Table 2).

use gpu::GpuGeneration;
use netsim::LinkProfile;
use storage::DeviceProfile;

const GIB: u64 = 1024 * 1024 * 1024;

/// Hardware configuration of one training server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Short name, e.g. `"Config-SSD-V100"`.
    pub name: String,
    /// Number of GPUs installed.
    pub num_gpus: usize,
    /// GPU generation.
    pub gpu: GpuGeneration,
    /// Physical CPU cores available for data loading.
    pub cpu_cores: usize,
    /// DRAM available for caching training data, in bytes.
    pub dram_cache_bytes: u64,
    /// Local storage device holding the dataset.
    pub device: DeviceProfile,
    /// Network link to peer servers.
    pub link: LinkProfile,
}

impl ServerConfig {
    /// Config-SSD-V100 (Table 2): 8×V100, 24 cores, 500 GiB DRAM, SATA SSD,
    /// 40 Gbps Ethernet — closest to AWS p3.16xlarge.
    pub fn config_ssd_v100() -> Self {
        ServerConfig {
            name: "Config-SSD-V100".to_string(),
            num_gpus: 8,
            gpu: GpuGeneration::V100,
            cpu_cores: 24,
            dram_cache_bytes: 500 * GIB,
            device: DeviceProfile::sata_ssd(),
            link: LinkProfile::ethernet_40gbps(),
        }
    }

    /// Config-HDD-1080Ti (Table 2): 8×1080Ti, 24 cores, 500 GiB DRAM, HDD,
    /// 40 Gbps Ethernet — closest to AWS p2.8xlarge with st1 storage.
    pub fn config_hdd_1080ti() -> Self {
        ServerConfig {
            name: "Config-HDD-1080Ti".to_string(),
            num_gpus: 8,
            gpu: GpuGeneration::Gtx1080Ti,
            cpu_cores: 24,
            dram_cache_bytes: 500 * GIB,
            device: DeviceProfile::hdd(),
            link: LinkProfile::ethernet_40gbps(),
        }
    }

    /// An AWS p3.16xlarge-like server with 32 physical cores / 64 vCPUs,
    /// used in the appendix's high-CPU-count experiments (Figure 12).
    pub fn config_highcpu_v100() -> Self {
        ServerConfig {
            name: "Config-HighCPU-V100".to_string(),
            cpu_cores: 32,
            ..Self::config_ssd_v100()
        }
    }

    /// Copy of this server with the DRAM cache sized to hold `fraction` of
    /// `dataset_bytes` (how the paper states cache sizes, e.g. "35 % of the
    /// dataset cached").
    pub fn with_cache_fraction(&self, dataset_bytes: u64, fraction: f64) -> Self {
        assert!((0.0..=1.5).contains(&fraction), "fraction out of range");
        ServerConfig {
            dram_cache_bytes: (dataset_bytes as f64 * fraction) as u64,
            ..self.clone()
        }
    }

    /// Copy with a different number of CPU cores (core-count sweeps).
    pub fn with_cpu_cores(&self, cores: usize) -> Self {
        assert!(cores > 0);
        ServerConfig {
            cpu_cores: cores,
            ..self.clone()
        }
    }

    /// Copy with a different cache size in bytes.
    pub fn with_cache_bytes(&self, bytes: u64) -> Self {
        ServerConfig {
            dram_cache_bytes: bytes,
            ..self.clone()
        }
    }

    /// Physical CPU cores per GPU.
    pub fn cores_per_gpu(&self) -> f64 {
        self.cpu_cores as f64 / self.num_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table2() {
        let ssd = ServerConfig::config_ssd_v100();
        assert_eq!(ssd.num_gpus, 8);
        assert_eq!(ssd.cpu_cores, 24);
        assert_eq!(ssd.dram_cache_bytes, 500 * GIB);
        assert_eq!(ssd.gpu, GpuGeneration::V100);
        assert_eq!(ssd.device.name, "sata-ssd");

        let hdd = ServerConfig::config_hdd_1080ti();
        assert_eq!(hdd.gpu, GpuGeneration::Gtx1080Ti);
        assert_eq!(hdd.device.name, "hdd");
        assert!((ssd.cores_per_gpu() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_fraction_helper() {
        let s = ServerConfig::config_ssd_v100().with_cache_fraction(1000, 0.35);
        assert_eq!(s.dram_cache_bytes, 350);
        let full = ServerConfig::config_ssd_v100().with_cache_fraction(1000, 1.0);
        assert_eq!(full.dram_cache_bytes, 1000);
    }

    #[test]
    fn with_cpu_cores_only_changes_cores() {
        let base = ServerConfig::config_ssd_v100();
        let s = base.with_cpu_cores(12);
        assert_eq!(s.cpu_cores, 12);
        assert_eq!(s.num_gpus, base.num_gpus);
        assert_eq!(s.dram_cache_bytes, base.dram_cache_bytes);
    }
}
